"""Regular grid decomposition of the weight hypercube ``[-1, 1]^m``.

Used by the importance sampler (§3.2.1) to approximate the centre of the
convex region of weight vectors that satisfy the current feedback set.  Each
preference ``p1 ≻ p2`` defines the half-space ``w · (p1 - p2) ≥ 0``; a grid
cell is kept only if *some* point of the cell can satisfy every half-space.
That feasibility test is linear in the number of features: the best case for
a half-space over an axis-aligned box is attained at the corner that picks,
per coordinate, whichever bound maximises the inner product.

The grid is deliberately exponential in the number of features (``cells_per_dim
** num_features``) — exactly the limitation the paper reports for importance
sampling in Figure 6(f–j) — so :class:`WeightSpaceGrid` enforces a hard cap on
the number of cells and raises :class:`GridTooLargeError` beyond it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import require_vector


class GridTooLargeError(RuntimeError):
    """Raised when the requested grid would exceed the configured cell cap."""


@dataclass(frozen=True)
class GridCell:
    """An axis-aligned cell of the weight-space grid.

    Attributes
    ----------
    lower, upper:
        Per-dimension lower/upper bounds of the cell (inclusive box).
    """

    lower: Tuple[float, ...]
    upper: Tuple[float, ...]

    @property
    def center(self) -> np.ndarray:
        """Geometric centre of the cell."""
        return (np.asarray(self.lower) + np.asarray(self.upper)) / 2.0

    @property
    def dimension(self) -> int:
        """Number of dimensions of the cell."""
        return len(self.lower)

    def max_dot(self, direction: np.ndarray) -> float:
        """Maximum of ``w · direction`` over all ``w`` in the cell.

        Attained by picking, per coordinate, the upper bound when the
        direction component is positive and the lower bound otherwise.
        """
        lower = np.asarray(self.lower)
        upper = np.asarray(self.upper)
        best = np.where(direction >= 0, upper, lower)
        return float(best @ direction)

    def min_dot(self, direction: np.ndarray) -> float:
        """Minimum of ``w · direction`` over all ``w`` in the cell."""
        return -self.max_dot(-np.asarray(direction, dtype=float))

    def can_satisfy(self, direction: np.ndarray) -> bool:
        """Whether some point of the cell satisfies ``w · direction >= 0``."""
        return self.max_dot(direction) >= 0.0

    def contains(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies inside the (closed) cell."""
        point = np.asarray(point, dtype=float)
        return bool(
            np.all(point >= np.asarray(self.lower))
            and np.all(point <= np.asarray(self.upper))
        )

    def split(self) -> List["GridCell"]:
        """Split the cell into 2^d children of equal size (quad-tree style)."""
        mids = self.center
        children = []
        for corner in itertools.product(*[(0, 1)] * self.dimension):
            lower = tuple(
                self.lower[i] if corner[i] == 0 else float(mids[i])
                for i in range(self.dimension)
            )
            upper = tuple(
                float(mids[i]) if corner[i] == 0 else self.upper[i]
                for i in range(self.dimension)
            )
            children.append(GridCell(lower, upper))
        return children


class WeightSpaceGrid:
    """A regular ``cells_per_dim^m`` grid over the weight hypercube.

    Parameters
    ----------
    num_features:
        Dimensionality of weight space.
    cells_per_dim:
        Number of equal-width cells per dimension (the paper's example uses a
        3×3 grid in two dimensions).
    bounds:
        Per-dimension (low, high) bounds; defaults to ``(-1, 1)`` everywhere,
        matching the paper's weight range.
    max_cells:
        Hard cap on the total number of cells; exceeding it raises
        :class:`GridTooLargeError`.  This mirrors the paper's observation that
        the grid approach is intractable beyond ~5 features.
    """

    def __init__(
        self,
        num_features: int,
        cells_per_dim: int = 3,
        bounds: Optional[Sequence[Tuple[float, float]]] = None,
        max_cells: int = 250_000,
    ) -> None:
        if num_features <= 0:
            raise ValueError(f"num_features must be > 0, got {num_features}")
        if cells_per_dim <= 0:
            raise ValueError(f"cells_per_dim must be > 0, got {cells_per_dim}")
        total = cells_per_dim**num_features
        if total > max_cells:
            raise GridTooLargeError(
                f"grid with {cells_per_dim}^{num_features} = {total} cells exceeds "
                f"the cap of {max_cells}; the grid-based centre approximation is "
                f"exponential in dimensionality (see paper Fig. 6f-j)"
            )
        self.num_features = num_features
        self.cells_per_dim = cells_per_dim
        if bounds is None:
            bounds = [(-1.0, 1.0)] * num_features
        if len(bounds) != num_features:
            raise ValueError(
                f"bounds must have one (low, high) pair per feature "
                f"({num_features}), got {len(bounds)}"
            )
        self.bounds = [(float(lo), float(hi)) for lo, hi in bounds]
        for lo, hi in self.bounds:
            if hi <= lo:
                raise ValueError(f"invalid bounds pair ({lo}, {hi})")
        self._cells: List[GridCell] = list(self._build_cells())
        #: Cells still considered feasible w.r.t. the constraints seen so far.
        self.active_cells: List[GridCell] = list(self._cells)

    def _build_cells(self) -> Iterator[GridCell]:
        edges = []
        for lo, hi in self.bounds:
            edges.append(np.linspace(lo, hi, self.cells_per_dim + 1))
        for index in itertools.product(range(self.cells_per_dim), repeat=self.num_features):
            lower = tuple(float(edges[d][i]) for d, i in enumerate(index))
            upper = tuple(float(edges[d][i + 1]) for d, i in enumerate(index))
            yield GridCell(lower, upper)

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> List[GridCell]:
        """All cells of the grid (feasible or not)."""
        return list(self._cells)

    def prune(self, direction: np.ndarray) -> int:
        """Drop active cells with no point satisfying ``w · direction >= 0``.

        ``direction`` is ``p1 - p2`` for a preference ``p1 ≻ p2``.  Returns the
        number of cells removed.
        """
        direction = require_vector(direction, "direction", length=self.num_features)
        before = len(self.active_cells)
        self.active_cells = [c for c in self.active_cells if c.can_satisfy(direction)]
        return before - len(self.active_cells)

    def prune_all(self, directions: Iterable[np.ndarray]) -> int:
        """Apply :meth:`prune` for every direction; return total cells removed."""
        removed = 0
        for direction in directions:
            removed += self.prune(direction)
        return removed

    def approximate_center(self) -> np.ndarray:
        """Approximate centre of the feasible region: mean of active cell centres.

        Falls back to the centre of the full hypercube when every cell has been
        pruned (which can only happen with inconsistent feedback).
        """
        if not self.active_cells:
            return np.array([(lo + hi) / 2.0 for lo, hi in self.bounds])
        centers = np.stack([cell.center for cell in self.active_cells])
        return centers.mean(axis=0)

    def feasible_fraction(self) -> float:
        """Fraction of cells still active (1.0 before any pruning)."""
        return len(self.active_cells) / len(self._cells)
