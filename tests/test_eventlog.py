"""Tests for the event-sourced session store (repro.service.eventlog).

Covers the log substrate (CRC framing, segment rolling, torn-tail truncation,
sealed-segment corruption, compaction), the store semantics built on it
(checkpoint events, tombstones, touch records, retention sweeps, pool-table
GC from live log references), and the tentpole invariant: a session restored
by replay serves bit-identical rounds — same pools, same top-k, same
stats-visible provenance — to one that never swapped out, including after a
simulated crash with a torn tail record.
"""

from __future__ import annotations

import glob
import os
import shutil

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile
from repro.service import (
    EngineConfig,
    EventLog,
    EventLogCorruptionError,
    EventLogStore,
    RecommendationEngine,
    ReplayDivergenceError,
    SessionExpiredError,
    mine_click_prefixes,
)
from repro.service.eventlog import (
    EVENT_FEEDBACK,
    EVENT_RECOMMEND_SERVED,
    REPLAY_PAYLOAD_KIND,
)


class FakeClock:
    """A manually advanced monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def serving_catalog() -> ItemCatalog:
    rng = np.random.default_rng(11)
    return ItemCatalog(rng.random((30, 3)))


@pytest.fixture
def serving_profile() -> AggregateProfile:
    return AggregateProfile(["sum", "avg", "max"])


def fast_elicitation_config(**overrides) -> ElicitationConfig:
    defaults = dict(
        k=2,
        num_random=2,
        max_package_size=2,
        num_samples=40,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=60,
        search_items_cap=25,
        seed=0,
    )
    defaults.update(overrides)
    return ElicitationConfig(**defaults)


def make_engine(
    catalog, profile, clock=None, store=None, elicitation=None, **config_overrides
):
    config = EngineConfig(
        elicitation=(
            elicitation if elicitation is not None else fast_elicitation_config()
        ),
        seed=1,
        **config_overrides,
    )
    kwargs = {"store": store}
    if clock is not None:
        kwargs["clock"] = clock
    return RecommendationEngine(catalog, profile, config, **kwargs)


def presented_items(round_):
    return [p.items for p in round_.presented]


def log_store(tmp_path, **kwargs) -> EventLogStore:
    return EventLogStore(str(tmp_path / "eventlog"), **kwargs)


# ================================================================== EventLog
class TestEventLogFraming:
    def test_append_replay_round_trip(self, tmp_path):
        log = EventLog(str(tmp_path / "log"))
        events = [{"type": "t", "n": i, "payload": "x" * i} for i in range(20)]
        positions = [log.append(event) for event in events]
        assert [e for e, _ in log.replay()] == events
        assert [p for _, p in log.replay()] == positions
        # Offsets are strictly increasing within a segment.
        offsets = [p.offset for p in positions]
        assert offsets == sorted(offsets) and len(set(offsets)) == len(offsets)
        log.close()

    def test_reopen_replays_everything(self, tmp_path):
        log = EventLog(str(tmp_path / "log"))
        for i in range(5):
            log.append({"n": i})
        log.close()
        reopened = EventLog(str(tmp_path / "log"))
        assert [e["n"] for e, _ in reopened.replay()] == list(range(5))
        assert reopened.truncated_bytes == 0
        reopened.close()

    def test_unflushed_appends_survive_reopen(self, tmp_path):
        # buffering=0 writes reach the OS immediately: a process crash
        # between fsync batches loses nothing that append() accepted.
        log = EventLog(str(tmp_path / "log"), fsync_every=1000)
        for i in range(7):
            log.append({"n": i})
        # no close(), no flush(): simulate the process dying here
        reopened = EventLog(str(tmp_path / "log"))
        assert [e["n"] for e, _ in reopened.replay()] == list(range(7))
        reopened.close()

    @pytest.mark.parametrize(
        "tail",
        [
            b"\x03",  # torn frame header
            b"\xff\x00\x00\x00\x12\x34\x56\x78",  # header promising absent payload
            b"\x02\x00\x00\x00\xde\xad\xbe\xefxy",  # payload failing its CRC
        ],
        ids=["torn-header", "missing-payload", "bad-crc"],
    )
    def test_torn_tail_truncated_on_open(self, tmp_path, tail):
        log = EventLog(str(tmp_path / "log"))
        for i in range(4):
            log.append({"n": i})
        log.close()
        (segment,) = glob.glob(str(tmp_path / "log" / "*.log"))
        intact_size = os.path.getsize(segment)
        with open(segment, "ab") as handle:
            handle.write(tail)
        reopened = EventLog(str(tmp_path / "log"))
        assert reopened.truncated_bytes == len(tail)
        assert os.path.getsize(segment) == intact_size
        assert [e["n"] for e, _ in reopened.replay()] == list(range(4))
        # The repaired log keeps appending from the truncation point.
        reopened.append({"n": 4})
        assert [e["n"] for e, _ in reopened.replay()] == list(range(5))
        reopened.close()

    def test_segments_roll_and_replay_in_order(self, tmp_path):
        log = EventLog(str(tmp_path / "log"), segment_max_bytes=200)
        for i in range(30):
            log.append({"n": i, "pad": "p" * 20})
        assert log.segment_count > 1
        assert [e["n"] for e, _ in log.replay()] == list(range(30))
        log.close()
        reopened = EventLog(str(tmp_path / "log"), segment_max_bytes=200)
        assert [e["n"] for e, _ in reopened.replay()] == list(range(30))
        reopened.close()

    def test_sealed_segment_corruption_raises(self, tmp_path):
        log = EventLog(str(tmp_path / "store" / "events"), segment_max_bytes=200)
        for i in range(30):
            log.append({"n": i, "pad": "p" * 20})
        log.close()
        segments = sorted(glob.glob(str(tmp_path / "store" / "events" / "*.log")))
        assert len(segments) > 2
        # Flip a payload byte in the middle of the first (sealed) segment.
        with open(segments[0], "r+b") as handle:
            handle.seek(12)
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        # Construction repairs only the final segment; sealed-segment damage
        # is not silently truncatable and surfaces as soon as the log is
        # replayed — which EventLogStore does at open, so a store pointed at
        # the damaged directory fails immediately rather than serving a hole.
        reopened = EventLog(str(tmp_path / "store" / "events"), segment_max_bytes=200)
        with pytest.raises(EventLogCorruptionError):
            list(reopened.replay())
        reopened.close()
        with pytest.raises(EventLogCorruptionError):
            EventLogStore(str(tmp_path / "store"), segment_max_bytes=200)

    def test_compaction_rewrites_deletes_and_keeps(self, tmp_path):
        log = EventLog(str(tmp_path / "log"), segment_max_bytes=150)
        for i in range(24):
            log.append({"n": i, "sid": "a" if i % 2 else "b", "pad": "p" * 20})
        before = log.total_bytes()
        stats = log.compact(lambda e: e["sid"] == "a")
        assert stats.events_dropped == 12
        assert stats.segments_rewritten + stats.segments_deleted > 0
        assert stats.bytes_reclaimed > 0
        assert log.total_bytes() < before
        survivors = [e["n"] for e, _ in log.replay()]
        assert survivors == [i for i in range(24) if i % 2]
        # Appends continue normally after compaction.
        log.append({"n": 99, "sid": "a"})
        assert [e["n"] for e, _ in log.replay()][-1] == 99
        log.close()

    def test_compaction_keep_everything_is_a_noop(self, tmp_path):
        log = EventLog(str(tmp_path / "log"), segment_max_bytes=150)
        for i in range(10):
            log.append({"n": i, "pad": "p" * 20})
        stats = log.compact(lambda e: True)
        assert stats.events_dropped == 0
        assert stats.segments_rewritten == 0
        assert stats.segments_deleted == 0
        assert [e["n"] for e, _ in log.replay()] == list(range(10))
        log.close()


# ============================================================= EventLogStore
class TestEventLogStore:
    def test_save_load_delete_list(self, tmp_path):
        store = log_store(tmp_path)
        store.log_session_created("s1", seed=7, created_at=1.0)
        store.save("s1", {"kind": "eventlog-checkpoint", "seed": 7, "pool": None,
                          "_last_access": 3.5})
        payload = store.load("s1")
        assert payload["kind"] == REPLAY_PAYLOAD_KIND
        assert payload["seed"] == 7
        assert payload["_last_access"] == 3.5
        assert "_last_access" not in payload["checkpoint"]
        assert store.list_ids() == ["s1"]
        assert store.delete("s1") is True
        assert store.load("s1") is None
        assert store.list_ids() == []
        assert store.delete("s1") is False  # tombstoned, not an error
        store.close()

    def test_load_unknown_is_none(self, tmp_path):
        store = log_store(tmp_path)
        assert store.load("nope") is None
        store.close()

    def test_events_carry_monotonic_per_session_seq(self, tmp_path):
        store = log_store(tmp_path)
        store.log_session_created("a", seed=1, created_at=0.0)
        store.log_round_served("a", recommended=[[1, 2]], random_packages=[[3]])
        store.log_session_created("b", seed=2, created_at=0.0)
        store.log_feedback("a", clicked=[1, 2])
        store.log_round_served("b", recommended=[[4]], random_packages=[])
        seqs = {}
        for event, _ in store.log.replay():
            seqs.setdefault(event["session_id"], []).append(event["seq"])
        assert seqs == {"a": [1, 2, 3], "b": [1, 2]}
        store.close()

    def test_index_rebuilds_after_reopen(self, tmp_path):
        store = log_store(tmp_path)
        store.log_session_created("s1", seed=7, created_at=1.0)
        store.log_round_served("s1", recommended=[[0, 1]], random_packages=[[2]])
        store.log_feedback("s1", clicked=[0, 1])
        store.log_session_created("s2", seed=8, created_at=2.0)
        store.delete("s2")
        store.close()
        reopened = log_store(tmp_path)
        assert reopened.list_ids() == ["s1"]
        payload = reopened.load("s1")
        assert [e["type"] for e in payload["events"]] == [
            EVENT_RECOMMEND_SERVED,
            EVENT_FEEDBACK,
        ]
        assert reopened.load("s2") is None
        reopened.close()

    def test_touch_updates_last_access(self, tmp_path):
        store = log_store(tmp_path)
        store.log_session_created("s1", seed=7, created_at=1.0)
        store.save("s1", {"kind": "eventlog-checkpoint", "_last_access": 1.0})
        store.log_touch("s1", last_access=9.0)
        assert store.load("s1")["_last_access"] == 9.0
        store.close()

    def test_full_blob_round_trips_as_base(self, tmp_path):
        # A snapshot blob (public restore import) saved through the store
        # comes back as the replay payload's base with only the logged
        # suffix to replay on top.
        store = log_store(tmp_path)
        blob = {"version": 2, "session_id": "ext", "seed": 3, "created_at": 0.5,
                "rng_state": {"state": 123}, "pool": None, "preferences": []}
        store.save("ext", dict(blob, _last_access=2.0))
        store.log_round_served("ext", recommended=[[5]], random_packages=[])
        payload = store.load("ext")
        assert payload["base"]["rng_state"] == {"state": 123}
        assert payload["checkpoint"] is None
        assert [e["type"] for e in payload["events"]] == [EVENT_RECOMMEND_SERVED]
        store.close()

    def test_load_is_idempotent_and_isolated(self, tmp_path):
        store = log_store(tmp_path)
        store.log_session_created("s1", seed=7, created_at=1.0)
        store.log_round_served("s1", recommended=[[0]], random_packages=[[1]])
        first = store.load("s1")
        first["events"].clear()  # mutate the returned copy
        second = store.load("s1")
        assert len(second["events"]) == 1  # the index was not harmed
        assert store.load("s1") == second
        store.close()

    def test_pool_table_and_gc_from_live_refs(self, tmp_path):
        store = log_store(tmp_path)
        store.save_pool("k1#d1", {"samples": [[0.1]], "weights": [1.0]})
        store.save_pool("k2#d2", {"samples": [[0.2]], "weights": [1.0]})
        assert store.has_pool("k1#d1") and store.list_pool_keys() == [
            "k1#d1",
            "k2#d2",
        ]
        store.log_session_created("s1", seed=7, created_at=0.0)
        store.save(
            "s1",
            {"kind": "eventlog-checkpoint", "pool": {"key": "k1", "digest": "d1"}},
        )
        # The default mark set is derived from the log index: s1's checkpoint
        # keeps k1#d1 alive, the unreferenced k2#d2 is swept.
        assert store.gc_pools() == 1
        assert store.list_pool_keys() == ["k1#d1"]
        store.close()

    def test_compact_drops_closed_sessions_and_collects_pools(self, tmp_path):
        clock = FakeClock()
        store = log_store(tmp_path, clock=clock, segment_max_bytes=200)
        for sid, seed in (("dead", 1), ("live", 2)):
            store.log_session_created(sid, seed=seed, created_at=clock.now)
            for i in range(6):
                store.log_round_served(
                    sid, recommended=[[i, i + 1]], random_packages=[[i + 2]]
                )
        store.save(
            "dead",
            {"kind": "eventlog-checkpoint", "pool": {"key": "kd", "digest": "x"}},
        )
        store.save_pool("kd#x", {"samples": [[0.1]], "weights": [1.0]})
        store.delete("dead")
        clock.advance(100.0)
        report = store.compact(retention_seconds=50.0)
        assert report.sessions_dropped == 1
        assert report.events_dropped > 0
        assert report.bytes_reclaimed > 0
        assert report.pools_collected == 1  # the closed session's pool
        assert store.load("dead") is None
        assert store.list_ids() == ["live"]
        # The survivor's history is intact, on disk and in the index.
        assert len(store.load("live")["events"]) == 6
        store.close()
        reopened = log_store(tmp_path, clock=clock)
        assert reopened.list_ids() == ["live"]
        assert len(reopened.load("live")["events"]) == 6
        reopened.close()

    def test_compact_retention_horizon_spares_recent_closures(self, tmp_path):
        clock = FakeClock()
        store = log_store(tmp_path, clock=clock)
        store.log_session_created("s1", seed=1, created_at=clock.now)
        store.delete("s1")
        clock.advance(5.0)
        report = store.compact(retention_seconds=50.0)
        assert report.sessions_dropped == 0
        clock.advance(100.0)
        assert store.compact(retention_seconds=50.0).sessions_dropped == 1
        store.close()

    def test_compact_ttl_drops_idle_open_sessions(self, tmp_path):
        clock = FakeClock()
        store = log_store(tmp_path, clock=clock)
        store.log_session_created("idle", seed=1, created_at=clock.now)
        clock.advance(100.0)
        store.log_session_created("busy", seed=2, created_at=clock.now)
        report = store.compact(ttl_seconds=50.0)
        assert report.sessions_dropped == 1
        assert store.load("idle") is None
        assert store.load("busy") is not None
        store.close()

    def test_requires_pool_sharing(self, serving_catalog, serving_profile, tmp_path):
        store = log_store(tmp_path)
        with pytest.raises(ValueError, match="pool sharing"):
            make_engine(
                serving_catalog,
                serving_profile,
                store=store,
                pool_cache_size=0,
                topk_cache_size=0,
                use_batch_sampler=False,
            )
        store.close()


# ===================================================== replay restore (engine)
def run_workload(engine, session_ids, rounds=3, click=0):
    """Serve ``rounds`` rounds + clicks per session, interleaved."""
    transcripts = {sid: [] for sid in session_ids}
    for _ in range(rounds):
        for sid in session_ids:
            transcripts[sid].append(presented_items(engine.recommend(sid)))
            engine.feedback(sid, click)
    return transcripts


class TestReplayRestore:
    def test_swap_out_replay_serves_bit_identical_rounds(
        self, serving_catalog, serving_profile, tmp_path
    ):
        # max_active=2 with 4 sessions: every serve churns the LRU table, so
        # most rounds are served by sessions restored via replay.  The
        # reference engine (no store, ample capacity) never swaps out.
        store = log_store(tmp_path)
        engine = make_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=2
        )
        reference = make_engine(serving_catalog, serving_profile)
        sids = [engine.create_session(seed=100 + i) for i in range(4)]
        rids = [reference.create_session(seed=100 + i) for i in range(4)]
        for _ in range(3):
            for sid, rid in zip(sids, rids):
                assert presented_items(engine.recommend(sid)) == presented_items(
                    reference.recommend(rid)
                )
                engine.feedback(sid, 0)
                reference.feedback(rid, 0)
        for sid, rid in zip(sids, rids):
            assert presented_items(engine.recommend(sid)) == presented_items(
                reference.recommend(rid)
            )
        assert engine.sessions_replayed > 0
        assert engine.sessions.sessions_swapped_out > 0
        store.close()

    def test_restart_replay_matches_reference(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store = log_store(tmp_path)
        engine = make_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=2
        )
        reference = make_engine(serving_catalog, serving_profile)
        sids = [engine.create_session(seed=100 + i) for i in range(3)]
        rids = [reference.create_session(seed=100 + i) for i in range(3)]
        run_workload(engine, sids)
        run_workload(reference, rids)
        store.close()  # clean shutdown

        restarted_store = log_store(tmp_path)
        restarted = make_engine(
            serving_catalog,
            serving_profile,
            store=restarted_store,
            max_active_sessions=2,
        )
        for sid, rid in zip(sids, rids):
            assert presented_items(restarted.recommend(sid)) == presented_items(
                reference.recommend(rid)
            )
        assert restarted.sessions_replayed == 3
        # Stats-visible provenance: replayed sessions report their pool key.
        stats = restarted.stats()
        assert stats.sessions_replayed == 3
        assert stats.eventlog["sessions_live"] == 3
        restarted_store.close()

    def test_crash_recovery_with_torn_tail(
        self, serving_catalog, serving_profile, tmp_path
    ):
        # Crash recovery replays from the seed with NO checkpoint, so pools
        # are rebuilt by fresh key-deterministic fills: exact equivalence
        # needs maintain_on_miss=False (a maintained pool's content is
        # in-memory state the crash destroyed).
        store = log_store(tmp_path, fsync_every=1000)
        engine = make_engine(
            serving_catalog,
            serving_profile,
            store=store,
            maintain_on_miss=False,
        )
        reference = make_engine(
            serving_catalog, serving_profile, maintain_on_miss=False
        )
        sids = [engine.create_session(seed=200 + i) for i in range(3)]
        rids = [reference.create_session(seed=200 + i) for i in range(3)]
        run_workload(engine, sids, rounds=2, click=1)
        run_workload(reference, rids, rounds=2, click=1)
        # Kill mid-append: no close/flush, and a torn half-record on disk.
        segment = sorted(glob.glob(str(tmp_path / "eventlog" / "events" / "*.log")))[
            -1
        ]
        intact_size = os.path.getsize(segment)
        with open(segment, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00\xde\xad\xbe\xefTORN")
        recovered_store = log_store(tmp_path)
        assert recovered_store.log.truncated_bytes > 0
        assert os.path.getsize(segment) == intact_size
        recovered = make_engine(
            serving_catalog,
            serving_profile,
            store=recovered_store,
            maintain_on_miss=False,
        )
        for sid, rid in zip(sids, rids):
            assert presented_items(recovered.recommend(sid)) == presented_items(
                reference.recommend(rid)
            )
        assert recovered.sessions_replayed == 3
        recovered_store.close()

    def test_replay_is_idempotent(self, serving_catalog, serving_profile, tmp_path):
        # Property: replaying the same log prefix N times yields the same
        # session state — two independent engines over one log serve the
        # identical next round, and a third replay still matches.
        store = log_store(tmp_path)
        engine = make_engine(serving_catalog, serving_profile, store=store)
        sid = engine.create_session(seed=42)
        run_workload(engine, [sid], rounds=2)
        store.close()
        nexts = []
        for i in range(3):
            # Each replica replays a private copy of the log: serving the
            # next round appends to the replica's copy, leaving the shared
            # prefix under test untouched.
            replica_dir = tmp_path / f"replica{i}"
            shutil.copytree(tmp_path / "eventlog", replica_dir)
            replica_store = EventLogStore(str(replica_dir))
            replica = make_engine(
                serving_catalog, serving_profile, store=replica_store
            )
            nexts.append(presented_items(replica.recommend(sid)))
            replica_store.close()
        assert nexts[0] == nexts[1] == nexts[2]

    def test_tampered_log_raises_divergence(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store = log_store(tmp_path)
        engine = make_engine(serving_catalog, serving_profile, store=store)
        sid = engine.create_session(seed=42)
        round_ = engine.recommend(sid)
        engine.feedback(sid, 0)
        store.close()
        # Rewrite the logged click to a package that was never presented.
        reopened = log_store(tmp_path)
        bogus = [max(max(p.items) for p in round_.presented) + 1]
        for record in reopened._records.values():
            for event in record.events:
                if event["type"] == EVENT_FEEDBACK:
                    event["clicked"] = bogus
        restarted = make_engine(serving_catalog, serving_profile, store=reopened)
        with pytest.raises(ReplayDivergenceError):
            restarted.recommend(sid)
        reopened.close()

    def test_closed_sessions_do_not_restore(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store = log_store(tmp_path)
        engine = make_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=2
        )
        sid = engine.create_session(seed=1)
        engine.recommend(sid)
        assert engine.close(sid) is True
        store.close()
        reopened = log_store(tmp_path)
        restarted = make_engine(serving_catalog, serving_profile, store=reopened)
        with pytest.raises(KeyError):
            restarted.recommend(sid)
        reopened.close()

    def test_blob_import_keeps_serving_through_the_log(
        self, serving_catalog, serving_profile, tmp_path
    ):
        # A session imported via the public restore() has pre-log history:
        # it must keep full-blob checkpoints (replayable=False) yet still
        # round-trip through swap-out/restore in an event-log engine.
        donor = make_engine(serving_catalog, serving_profile)
        donor_ref = make_engine(serving_catalog, serving_profile)
        sid = donor.create_session(seed=5)
        rid = donor_ref.create_session(seed=5)
        donor.recommend(sid)
        donor_ref.recommend(rid)
        donor.feedback(sid, 0)
        donor_ref.feedback(rid, 0)
        blob = donor.snapshot(sid)

        store = log_store(tmp_path)
        engine = make_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=1
        )
        engine.restore(blob)
        # Force a swap-out of the imported session, then keep serving.
        other = engine.create_session(seed=6)
        engine.recommend(other)
        assert presented_items(engine.recommend(sid)) == presented_items(
            donor_ref.recommend(rid)
        )
        engine.feedback(sid, 1)
        donor_ref.feedback(rid, 1)
        # Churn it out and back again: blob base + logged suffix replay.
        engine.recommend(other)
        assert presented_items(engine.recommend(sid)) == presented_items(
            donor_ref.recommend(rid)
        )
        store.close()


# ============================================================== TTL regression
class TestTouchRecordTtl:
    def test_clean_touched_session_survives_ttl_after_restart(
        self, serving_catalog, serving_profile, tmp_path
    ):
        # The PR 4 caveat: a clean swap-out skips the snapshot write, so the
        # store kept the *older* _last_access and expiry could fire early.
        # The touch record closes the gap — a session whose last activity
        # was recent survives a restart followed by a TTL check, even though
        # its last full checkpoint is older than the TTL.
        clock = FakeClock()
        store = log_store(tmp_path)
        engine = make_engine(
            serving_catalog,
            serving_profile,
            clock=clock,
            store=store,
            max_active_sessions=1,
            session_ttl_seconds=10.0,
        )
        s1 = engine.create_session(seed=1)
        engine.recommend(s1)
        s2 = engine.create_session(seed=2)  # evicts s1 dirty: checkpoint at t=0
        clock.advance(6.0)
        engine.snapshot(s1)  # restores s1 clean (no round served), access=6
        engine.recommend(s2)  # evicts s1 clean: touch record, no snapshot
        assert engine.sessions.swap_writes_skipped >= 1
        store.close()

        restarted_store = log_store(tmp_path)
        restarted = make_engine(
            serving_catalog,
            serving_profile,
            clock=clock,
            store=restarted_store,
            max_active_sessions=1,
            session_ttl_seconds=10.0,
        )
        clock.advance(6.0)  # t=12: 6s since touch, 12s since checkpoint
        # Without the touch record the stored _last_access would be 0 and
        # this acquire would raise SessionExpiredError.
        restarted.recommend(s1)
        clock.advance(11.0)  # now genuinely idle past the TTL
        with pytest.raises(SessionExpiredError):
            restarted.recommend(s2)
        restarted_store.close()


# ============================================================== prefix mining
class TestPrefixMiningWarmStart:
    def workload_store(self, catalog, profile, tmp_path):
        # Three sessions sharing one seed walk identical presentation
        # streams, so identical click positions produce identical constraint
        # prefixes.  All three click package 0 in round one (a shared
        # depth-1 prefix); two of them click 0 again in round two while the
        # third defects to package 1 — a popular depth-2 prefix (2 sessions)
        # and a rare one (1 session).
        store = log_store(tmp_path)
        engine = make_engine(catalog, profile, store=store)
        for second_click in (0, 0, 1):
            sid = engine.create_session(seed=300)
            engine.recommend(sid)
            engine.feedback(sid, 0)
            engine.recommend(sid)
            engine.feedback(sid, second_click)
        return store, engine

    def test_mined_prefixes_are_frequency_ranked(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store, engine = self.workload_store(
            serving_catalog, serving_profile, tmp_path
        )
        mined = mine_click_prefixes(store, engine.evaluator)
        assert mined, "identical click paths must surface shared prefixes"
        # The shared round-one click tops the ranking; the defector split
        # the depth-2 prefix 2-vs-1.
        assert mined[0].sessions == 3
        assert mined[0].depth == 1
        assert [s.sessions for s in mined] == sorted(
            (s.sessions for s in mined), reverse=True
        )
        by_depth = {}
        for stat in mined:
            by_depth.setdefault(stat.depth, []).append(stat.sessions)
        assert 2 in by_depth, "depth-2 prefixes are what the log observes"
        assert sorted(by_depth[2], reverse=True)[0] == 2
        store.close()

    def test_max_depth_caps_mining(self, serving_catalog, serving_profile, tmp_path):
        store, engine = self.workload_store(
            serving_catalog, serving_profile, tmp_path
        )
        shallow = mine_click_prefixes(store, engine.evaluator, max_depth=1)
        assert {s.depth for s in shallow} == {1}
        store.close()

    def test_warm_start_from_log_pins_observed_pools(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store, engine = self.workload_store(
            serving_catalog, serving_profile, tmp_path
        )
        # Warm a COLD engine from the workload's log: the mined prefixes
        # must pre-fill the pools a session walking the popular path needs.
        cold = make_engine(serving_catalog, serving_profile)
        report = cold.warm_start_from_log(store, top_n=2)
        assert report.pools_filled > 0
        assert report.prefixes_mined >= len(report.warmed_keys)
        assert set(report.warmed_keys) <= set(cold.pool_repository.pinned_keys())
        fills_after_warm = cold.pool_repository.fills
        sid = cold.create_session(seed=300)
        cold.recommend(sid)  # root pool: not mined (fills at most once)
        cold.feedback(sid, 0)
        cold.recommend(sid)  # depth-1 pool: warmed from the log, no fill
        assert cold.pool_repository.fills - fills_after_warm <= 1
        store.close()

    def test_warm_from_log_requires_pool_cache(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store, engine = self.workload_store(
            serving_catalog, serving_profile, tmp_path
        )
        no_cache = make_engine(
            serving_catalog, serving_profile, pool_cache_size=0
        )
        with pytest.raises(ValueError, match="pool cache"):
            no_cache.warm_start_from_log(store)
        store.close()

    def test_warm_start_from_log_without_store_raises(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        with pytest.raises(ValueError, match="EventLogStore"):
            engine.warm_start_from_log()


# ===================================== partial-refill replay (incremental PR)
def refill_engine(catalog, profile, store=None, **overrides):
    """An engine with ESS-deficit partial refill on (refill needs a ψ)."""
    return make_engine(
        catalog,
        profile,
        store=store,
        elicitation=fast_elicitation_config(noise_psi=0.9),
        partial_refill=True,
        **overrides,
    )


class TestPartialRefillReplay:
    """Replay interaction of the ESS-deficit partial-refill fast path.

    A partial-refill pool's content depends on session history (the
    reweighted survivors of the previous build), so it can never be
    re-derived from its fingerprint key alone.  Checkpoints therefore carry
    a deficit-fill audit record; replay must restore the exact build through
    the content-addressed pool table and treat an unresolvable or
    inconsistent record as divergence, not as a cache miss.
    """

    def checkpointed_workload(self, catalog, profile, tmp_path, rounds=2):
        """A refill workload where every swap-out checkpoints a refill pool.

        max_active=1 with two interleaved sessions: each acquire evicts the
        other session right after its click, so the checkpoint materialises
        the post-click pool — built by partial refill from the stale build.
        """
        store = log_store(tmp_path)
        engine = refill_engine(
            catalog, profile, store=store, max_active_sessions=1
        )
        sids = [engine.create_session(seed=300 + i) for i in range(2)]
        run_workload(engine, sids, rounds=rounds)
        assert engine.pools_partial_refilled > 0
        store.close()
        return sids

    def tampered_records(self, reopened, mutate):
        """Apply ``mutate`` to every refill-bearing checkpoint; return sids."""
        tampered = []
        for sid, record in reopened._records.items():
            checkpoint = record.checkpoint
            if checkpoint is None:
                continue
            refill = (checkpoint.get("pool") or {}).get("refill")
            if refill is not None:
                mutate(checkpoint["pool"])
                tampered.append(sid)
        return tampered

    def test_swap_out_replay_serves_bit_identical_refill_rounds(
        self, serving_catalog, serving_profile, tmp_path
    ):
        # Mirror of the plain swap-out replay test with partial refill on:
        # restored-via-replay sessions must serve the same rounds as a
        # never-swapped reference, including rounds whose pools were built
        # by deficit fill rather than a full resample.
        store = log_store(tmp_path)
        engine = refill_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=2
        )
        reference = refill_engine(serving_catalog, serving_profile)
        sids = [engine.create_session(seed=300 + i) for i in range(4)]
        rids = [reference.create_session(seed=300 + i) for i in range(4)]
        for _ in range(3):
            for sid, rid in zip(sids, rids):
                assert presented_items(engine.recommend(sid)) == presented_items(
                    reference.recommend(rid)
                )
                engine.feedback(sid, 0)
                reference.feedback(rid, 0)
        for sid, rid in zip(sids, rids):
            assert presented_items(engine.recommend(sid)) == presented_items(
                reference.recommend(rid)
            )
        assert engine.pools_partial_refilled > 0
        assert engine.sessions_replayed > 0
        assert engine.sessions.sessions_swapped_out > 0
        store.close()

    def test_restart_replay_of_refill_sessions_matches_reference(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store = log_store(tmp_path)
        engine = refill_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=2
        )
        reference = refill_engine(serving_catalog, serving_profile)
        sids = [engine.create_session(seed=300 + i) for i in range(3)]
        rids = [reference.create_session(seed=300 + i) for i in range(3)]
        run_workload(engine, sids)
        run_workload(reference, rids)
        assert engine.pools_partial_refilled > 0
        store.close()  # clean shutdown

        restarted_store = log_store(tmp_path)
        restarted = refill_engine(
            serving_catalog,
            serving_profile,
            store=restarted_store,
            max_active_sessions=2,
        )
        for sid, rid in zip(sids, rids):
            assert presented_items(restarted.recommend(sid)) == presented_items(
                reference.recommend(rid)
            )
        assert restarted.sessions_replayed == 3
        restarted_store.close()

    def test_checkpoints_carry_the_deficit_fill_audit_record(
        self, serving_catalog, serving_profile, tmp_path
    ):
        self.checkpointed_workload(serving_catalog, serving_profile, tmp_path)
        reopened = log_store(tmp_path)
        audits = [
            (record.checkpoint.get("pool") or {}).get("refill")
            for record in reopened._records.values()
            if record.checkpoint is not None
        ]
        audits = [a for a in audits if a is not None]
        assert audits, "no checkpoint carried a deficit-fill audit record"
        for audit in audits:
            assert audit["survivors"] > 0
            assert audit["deficit"] >= 0
            assert audit["size"] > 0
        reopened.close()

    def test_untampered_reopen_restores_refill_sessions(
        self, serving_catalog, serving_profile, tmp_path
    ):
        # Control for the tamper tests: the identical reopen path without
        # any mutation restores every refill session cleanly.
        sids = self.checkpointed_workload(
            serving_catalog, serving_profile, tmp_path
        )
        reopened = log_store(tmp_path)
        restarted = refill_engine(
            serving_catalog, serving_profile, store=reopened
        )
        for sid in sids:
            assert presented_items(restarted.recommend(sid))
        assert restarted.sessions_replayed == len(sids)
        reopened.close()

    def test_tampered_refill_size_raises_divergence(
        self, serving_catalog, serving_profile, tmp_path
    ):
        self.checkpointed_workload(serving_catalog, serving_profile, tmp_path)
        reopened = log_store(tmp_path)

        def grow_size(pool_payload):
            pool_payload["refill"]["size"] += 1

        tampered = self.tampered_records(reopened, grow_size)
        assert tampered
        restarted = refill_engine(
            serving_catalog, serving_profile, store=reopened
        )
        with pytest.raises(ReplayDivergenceError, match="deficit-fill"):
            restarted.recommend(tampered[0])
        reopened.close()

    def test_tampered_refill_digest_raises_divergence(
        self, serving_catalog, serving_profile, tmp_path
    ):
        # A bogus digest makes the checkpointed build unresolvable from the
        # content-addressed pool table.  For an ordinary pool that is a
        # silent lazy re-fill; for a refill pool it must be divergence.
        self.checkpointed_workload(serving_catalog, serving_profile, tmp_path)
        reopened = log_store(tmp_path)

        def scramble_digest(pool_payload):
            pool_payload["digest"] = "0" * len(pool_payload["digest"])

        tampered = self.tampered_records(reopened, scramble_digest)
        assert tampered
        restarted = refill_engine(
            serving_catalog, serving_profile, store=reopened
        )
        with pytest.raises(ReplayDivergenceError, match="cannot be resolved"):
            restarted.recommend(tampered[0])
        reopened.close()
