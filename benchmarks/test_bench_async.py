"""Benchmark: async micro-batching front-end vs serial per-request serving.

Not a paper figure — this measures the PR's tentpole: absorbing concurrent
``recommend`` requests into micro-batches (:class:`AsyncRecommendationServer`
→ :class:`MicroBatchDispatcher` → ``recommend_many``) so heterogeneous
traffic feeds the batched pool fills and the across-session top-k walk
instead of serialising on them.

The asserted comparison, on one engine configuration and one heterogeneous
population of ≥ 32 independent users:

* **serial** — the per-request baseline: one ``engine.recommend`` call at a
  time, session after session, round after round (what a front-end without
  batching would do to the same engine, caches and all);
* **async** — the same rounds driven through the async server by concurrent
  client coroutines; every micro-batch window dispatches through
  ``recommend_many``.

Heterogeneous sessions are the workload that matters here: after the first
click every session has its own constraint fingerprint, so the shared caches
cannot absorb the traffic and per-round cost is genuinely per-session — the
serial path pays it N times per round while the batched path amortises one
shared walk.  The acceptance floor asserts the async front-end at ≥ 3x the
serial throughput (measured ~4-6x); an additional open-loop run with Poisson
arrivals and think times is reported (not asserted) to show latency under a
realistic arrival process.

The regenerated table lands in ``results/bench_async.txt`` and the asserted
headline in ``BENCH_ci.json`` (the CI bench-gate artifact).
"""

from __future__ import annotations

import time
from typing import List, Tuple

import pytest

from repro.core.elicitation import ElicitationConfig
from repro.experiments.harness import build_evaluator
from repro.service import (
    AsyncRecommendationServer,
    EngineConfig,
    RecommendationEngine,
)
from repro.simulation.traffic import (
    AsyncLoadReport,
    AsyncTrafficSimulator,
    AsyncWorkloadSpec,
    build_user_population,
    session_seed_for,
)

#: Acceptance floor: the async front-end must at least triple throughput.
MIN_SPEEDUP = 3.0

NUM_SESSIONS = 48  # ≥ 32 concurrent heterogeneous sessions (acceptance)
NUM_ROUNDS = 3


def _elicitation_config() -> ElicitationConfig:
    # A low-latency serving configuration: a large posterior pool (the part
    # maintenance and batched sampling amortise) queried through a single
    # representative sample per round (the §4 search is the per-session cost
    # the across-session walk batches).
    return ElicitationConfig(
        k=3,
        num_random=2,
        max_package_size=3,
        num_samples=600,
        sampler="mcmc",
        search_sample_budget=1,
        search_beam_width=150,
        search_items_cap=60,
        seed=0,
    )


def _engine(scale) -> RecommendationEngine:
    evaluator = build_evaluator("UNI", scale, num_features=4)
    config = EngineConfig(elicitation=_elicitation_config(), seed=1)
    return RecommendationEngine(evaluator.catalog, evaluator.profile, config)


def _run_serial(scale) -> Tuple[float, List[float]]:
    """Per-request baseline: every round served by one ``recommend`` call."""
    engine = _engine(scale)
    users = build_user_population(
        engine.evaluator, NUM_SESSIONS, identical_prefix=False, user_seed=0
    )
    latencies: List[float] = []
    start = time.perf_counter()
    session_ids = [
        engine.create_session(
            seed=session_seed_for(0, index, identical_prefix=False)
        )
        for index in range(NUM_SESSIONS)
    ]
    for _round in range(NUM_ROUNDS):
        for index, session_id in enumerate(session_ids):
            tick = time.perf_counter()
            round_ = engine.recommend(session_id)
            latencies.append(time.perf_counter() - tick)
            engine.feedback(session_id, users[index].click(round_.presented))
    return time.perf_counter() - start, latencies


def _run_async(scale, max_batch_size, arrival_rate, think_time_mean) -> AsyncLoadReport:
    engine = _engine(scale)
    server = AsyncRecommendationServer(
        engine, max_batch_size=max_batch_size, max_wait=0.002
    )
    spec = AsyncWorkloadSpec(
        num_sessions=NUM_SESSIONS,
        rounds=NUM_ROUNDS,
        identical_prefix=False,
        arrival_rate=arrival_rate,
        think_time_mean=think_time_mean,
    )
    return AsyncTrafficSimulator(server, spec).run_sync()


@pytest.fixture(scope="module")
def async_reports(scale):
    import numpy as np

    from bench_utils import record_ci_metric, write_results

    serial_seconds, serial_latencies = _run_serial(scale)
    total_rounds = NUM_SESSIONS * NUM_ROUNDS
    serial_rounds_per_sec = total_rounds / serial_seconds

    burst = _run_async(
        scale, max_batch_size=NUM_SESSIONS, arrival_rate=None, think_time_mean=0.0
    )
    open_loop = _run_async(
        scale, max_batch_size=16, arrival_rate=1000.0, think_time_mean=0.005
    )

    speedup = burst.rounds_per_sec / serial_rounds_per_sec
    serial_array = np.asarray(serial_latencies)
    header = (
        "Async micro-batching front-end vs serial per-request serving\n"
        f"{NUM_SESSIONS} heterogeneous sessions x {NUM_ROUNDS} rounds; "
        f"async/serial throughput = {speedup:.1f}x "
        f"(floor {MIN_SPEEDUP}x)"
    )
    serial_block = "\n".join(
        [
            "[serial per-request baseline]",
            f"  sessions={NUM_SESSIONS} rounds={NUM_ROUNDS} "
            f"rounds_served={total_rounds}",
            f"  total={serial_seconds:.3f}s "
            f"rounds/sec={serial_rounds_per_sec:.2f}",
            f"  request latency "
            f"p50={float(np.percentile(serial_array, 50)) * 1e3:.2f}ms "
            f"p95={float(np.percentile(serial_array, 95)) * 1e3:.2f}ms",
        ]
    )
    body = "\n\n".join(
        [
            serial_block,
            burst.format("async burst (asserted)"),
            open_loop.format("async open-loop (poisson arrivals, think times)"),
        ]
    )
    print("\n" + header + "\n\n" + body)
    write_results("bench_async.txt", header + "\n\n" + body)
    record_ci_metric(
        "async_vs_serial_throughput_speedup",
        speedup,
        MIN_SPEEDUP,
        source="benchmarks/test_bench_async.py",
        description=(
            f"Async micro-batched rounds/sec over serial per-request "
            f"rounds/sec, {NUM_SESSIONS} heterogeneous sessions x "
            f"{NUM_ROUNDS} rounds"
        ),
    )
    return {
        "serial_seconds": serial_seconds,
        "serial_rounds_per_sec": serial_rounds_per_sec,
        "burst": burst,
        "open_loop": open_loop,
        "speedup": speedup,
    }


def test_async_serves_every_round_with_feedback(async_reports):
    """Both async runs complete the full workload — no dropped requests."""
    for key in ("burst", "open_loop"):
        report = async_reports[key]
        assert report.rounds_served == NUM_SESSIONS * NUM_ROUNDS
        assert report.feedback_events == report.rounds_served
        assert report.dispatcher_stats["requests_failed"] == 0
    assert NUM_SESSIONS >= 32


def test_async_throughput_beats_serial_by_the_floor(async_reports):
    """The acceptance floor: ≥ 3x throughput over serial per-request loops."""
    speedup = async_reports["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"async speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
        f"({async_reports['burst'].rounds_per_sec:.2f} vs "
        f"{async_reports['serial_rounds_per_sec']:.2f} rounds/sec)"
    )


def test_concurrency_was_actually_batched(async_reports):
    """The win must come from multi-request windows, not a degenerate 1:1."""
    stats = async_reports["burst"].dispatcher_stats
    assert stats["mean_batch_size"] > 4.0
    assert stats["largest_batch"] >= 16
    engine_stats = async_reports["burst"].engine_stats
    # Heterogeneous rounds 2+ run the across-session shared walk.
    assert engine_stats["topk_batched_pools"] >= NUM_SESSIONS


def test_latency_percentiles_are_reported(async_reports):
    for key in ("burst", "open_loop"):
        report = async_reports[key]
        assert report.p95_request_latency_ms >= report.p50_request_latency_ms > 0
