"""Gaussian mixture model over weight vectors (the prior ``Pw``).

The paper assumes the prior over the utility weight vector is a mixture of
Gaussians, since a mixture can approximate any density (§2.1, citing Bishop).
This module is a small, self-contained mixture implementation (density,
log-density, sampling, component responsibilities) — the substrate the
samplers in this package build on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.stats import multivariate_normal

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_matrix, require_vector


class GaussianMixture:
    """A mixture of multivariate Gaussians over ``R^m``.

    Parameters
    ----------
    means:
        ``(K, m)`` matrix of component means.
    covariances:
        ``(K, m, m)`` array of component covariance matrices, or ``(K, m)``
        diagonal entries, or a scalar used as isotropic variance for all
        components.
    weights:
        ``(K,)`` mixture weights; default uniform.  Normalised automatically.
    """

    def __init__(
        self,
        means: np.ndarray,
        covariances,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        means = require_matrix(means, "means")
        self.means = means
        num_components, dimension = means.shape
        self.covariances = self._normalise_covariances(covariances, num_components, dimension)
        if weights is None:
            weights = np.full(num_components, 1.0 / num_components)
        weights = require_vector(weights, "weights", length=num_components)
        if (weights < 0).any():
            raise ValueError("mixture weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("mixture weights must not all be zero")
        self.weights = weights / total
        self._components = [
            multivariate_normal(mean=self.means[k], cov=self.covariances[k], allow_singular=False)
            for k in range(num_components)
        ]

    @staticmethod
    def _normalise_covariances(covariances, num_components: int, dimension: int) -> np.ndarray:
        if np.isscalar(covariances):
            value = float(covariances)
            if value <= 0:
                raise ValueError(f"isotropic variance must be > 0, got {value}")
            return np.stack([np.eye(dimension) * value for _ in range(num_components)])
        array = np.asarray(covariances, dtype=float)
        if array.ndim == 2 and array.shape == (num_components, dimension):
            if (array <= 0).any():
                raise ValueError("diagonal variances must be > 0")
            return np.stack([np.diag(array[k]) for k in range(num_components)])
        if array.ndim == 3 and array.shape == (num_components, dimension, dimension):
            return array
        raise ValueError(
            f"covariances must be a scalar, a ({num_components}, {dimension}) diagonal "
            f"array, or a ({num_components}, {dimension}, {dimension}) array; "
            f"got shape {np.shape(covariances)}"
        )

    # ------------------------------------------------------------------ basics
    @property
    def num_components(self) -> int:
        """Number of mixture components ``K``."""
        return self.means.shape[0]

    @property
    def dimension(self) -> int:
        """Dimensionality ``m`` of the weight space."""
        return self.means.shape[1]

    # ----------------------------------------------------------------- density
    def pdf(self, points: np.ndarray) -> np.ndarray:
        """Mixture density at one point (scalar) or a stack of points (vector)."""
        points = np.asarray(points, dtype=float)
        single = points.ndim == 1
        matrix = points[None, :] if single else points
        density = np.zeros(matrix.shape[0])
        for weight, component in zip(self.weights, self._components):
            density += weight * component.pdf(matrix)
        density = np.atleast_1d(density)
        return float(density[0]) if single else density

    def logpdf(self, points: np.ndarray) -> np.ndarray:
        """Log of the mixture density (numerically via log-sum-exp)."""
        points = np.asarray(points, dtype=float)
        single = points.ndim == 1
        matrix = points[None, :] if single else points
        log_terms = np.stack(
            [
                np.log(weight) + np.atleast_1d(component.logpdf(matrix))
                for weight, component in zip(self.weights, self._components)
                if weight > 0
            ]
        )
        max_term = log_terms.max(axis=0)
        log_density = max_term + np.log(np.exp(log_terms - max_term).sum(axis=0))
        return float(log_density[0]) if single else log_density

    def responsibilities(self, points: np.ndarray) -> np.ndarray:
        """Posterior component probabilities for each point (``(n, K)``)."""
        matrix = require_matrix(points, "points", columns=self.dimension)
        terms = np.stack(
            [
                weight * np.atleast_1d(component.pdf(matrix))
                for weight, component in zip(self.weights, self._components)
            ],
            axis=1,
        )
        totals = terms.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return terms / totals

    # ---------------------------------------------------------------- sampling
    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``count`` points from the mixture."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        generator = ensure_rng(rng)
        if count == 0:
            return np.zeros((0, self.dimension))
        assignments = generator.choice(self.num_components, size=count, p=self.weights)
        samples = np.zeros((count, self.dimension))
        for k in range(self.num_components):
            mask = assignments == k
            how_many = int(mask.sum())
            if how_many == 0:
                continue
            samples[mask] = generator.multivariate_normal(
                self.means[k], self.covariances[k], size=how_many
            )
        return samples

    # ------------------------------------------------------------ constructors
    @classmethod
    def default_prior(
        cls,
        num_features: int,
        num_components: int = 1,
        spread: float = 0.5,
        rng: RngLike = None,
    ) -> "GaussianMixture":
        """The system-default prior over weight vectors.

        A single-component prior is centred at the origin of ``[-1, 1]^m``
        (no initial bias toward any feature); multi-component priors place the
        extra components at random offsets, modelling a population of user
        "types" as in the paper's experiments that vary the number of
        Gaussians (Figure 5c).
        """
        if num_features <= 0:
            raise ValueError(f"num_features must be > 0, got {num_features}")
        if num_components <= 0:
            raise ValueError(f"num_components must be > 0, got {num_components}")
        if spread <= 0:
            raise ValueError(f"spread must be > 0, got {spread}")
        generator = ensure_rng(rng)
        means = np.zeros((num_components, num_features))
        if num_components > 1:
            means[1:] = generator.uniform(-0.5, 0.5, size=(num_components - 1, num_features))
        covariances = np.stack(
            [np.eye(num_features) * spread**2 for _ in range(num_components)]
        )
        return cls(means, covariances)

    @classmethod
    def isotropic(
        cls, mean: np.ndarray, variance: float
    ) -> "GaussianMixture":
        """A single isotropic Gaussian as a (degenerate) mixture."""
        mean = require_vector(mean, "mean")
        return cls(mean[None, :], variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GaussianMixture(num_components={self.num_components}, "
            f"dimension={self.dimension})"
        )
