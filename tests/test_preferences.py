"""Tests for pairwise preferences, the preference DAG and transitive reduction."""

import numpy as np
import pytest

from repro.core.packages import Package
from repro.core.preferences import (
    Preference,
    PreferenceCycleError,
    PreferenceStore,
)


def make_preference(evaluator, preferred_items, other_items):
    return Preference.from_packages(
        evaluator, Package.of(preferred_items), Package.of(other_items)
    )


class TestPreference:
    def test_direction_is_vector_difference(self, paper_example_evaluator):
        preference = make_preference(paper_example_evaluator, [0, 1], [2])
        expected = (
            paper_example_evaluator.vector(Package.of([0, 1]))
            - paper_example_evaluator.vector(Package.of([2]))
        )
        assert np.allclose(preference.direction, expected)

    def test_is_satisfied_by(self, paper_example_evaluator):
        preference = make_preference(paper_example_evaluator, [0, 1], [2])
        # w = (0.5, 0.1) ranks p4 above p3 in the paper's example.
        assert preference.is_satisfied_by(np.array([0.5, 0.1]))
        # Strongly cost-averse weights prefer the cheap singleton {t3}.
        assert not preference.is_satisfied_by(np.array([-1.0, 0.0]))

    def test_identical_packages_rejected(self, paper_example_evaluator):
        with pytest.raises(ValueError):
            make_preference(paper_example_evaluator, [0], [0])

    def test_from_vectors_uses_placeholders(self):
        preference = Preference.from_vectors(np.array([0.5, 0.5]), np.array([0.2, 0.1]))
        assert np.allclose(preference.direction, [0.3, 0.4])
        assert preference.preferred != preference.other

    def test_from_vectors_length_mismatch(self):
        with pytest.raises(ValueError):
            Preference.from_vectors(np.array([0.5]), np.array([0.2, 0.1]))


class TestPreferenceStoreBasics:
    def test_add_and_count(self, paper_example_evaluator):
        store = PreferenceStore(2)
        assert store.add(make_preference(paper_example_evaluator, [0, 1], [2]))
        assert len(store) == 1
        assert store.num_packages == 2

    def test_dimension_mismatch_rejected(self, paper_example_evaluator):
        store = PreferenceStore(3)
        with pytest.raises(ValueError):
            store.add(make_preference(paper_example_evaluator, [0], [1]))

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            PreferenceStore(0)
        with pytest.raises(ValueError):
            PreferenceStore(2, on_cycle="ignore")

    def test_click_feedback_generates_pairwise_preferences(self, paper_example_evaluator):
        store = PreferenceStore(2)
        presented = [Package.of([0]), Package.of([1]), Package.of([2])]
        added = store.add_click_feedback(paper_example_evaluator, presented[0], presented)
        assert len(added) == 2
        assert len(store) == 2

    def test_satisfies_and_violations(self, paper_example_evaluator):
        store = PreferenceStore(2)
        store.add(make_preference(paper_example_evaluator, [0, 1], [2]))
        store.add(make_preference(paper_example_evaluator, [0, 1], [1]))
        assert store.satisfies(np.array([0.5, 0.1]))
        assert store.count_violations(np.array([0.5, 0.1])) == 0
        assert store.count_violations(np.array([-1.0, -1.0])) > 0

    def test_empty_store_satisfied_by_anything(self):
        store = PreferenceStore(3)
        assert store.satisfies(np.array([0.1, -0.2, 0.9]))
        assert store.directions().shape == (0, 3)


class TestCycles:
    def test_cycle_raises_by_default(self, paper_example_evaluator):
        store = PreferenceStore(2)
        store.add(make_preference(paper_example_evaluator, [0], [1]))
        store.add(make_preference(paper_example_evaluator, [1], [2]))
        with pytest.raises(PreferenceCycleError):
            store.add(make_preference(paper_example_evaluator, [2], [0]))

    def test_cycle_dropped_when_configured(self, paper_example_evaluator):
        store = PreferenceStore(2, on_cycle="drop")
        store.add(make_preference(paper_example_evaluator, [0], [1]))
        assert not store.add(make_preference(paper_example_evaluator, [1], [0]))
        assert store.num_dropped == 1
        assert len(store) == 1

    def test_self_preference_rejected(self, paper_example_evaluator):
        store = PreferenceStore(2)
        preference = make_preference(paper_example_evaluator, [0], [1])
        bad = Preference(
            preferred=preference.preferred,
            other=preference.preferred,
            preferred_vector=preference.preferred_vector,
            other_vector=preference.preferred_vector,
        )
        with pytest.raises(ValueError):
            store.add(bad)


class TestTransitiveReduction:
    def test_redundant_edge_removed(self, paper_example_evaluator):
        store = PreferenceStore(2)
        store.add(make_preference(paper_example_evaluator, [0], [1]))       # a > b
        store.add(make_preference(paper_example_evaluator, [1], [2]))       # b > c
        store.add(make_preference(paper_example_evaluator, [0], [2]))       # a > c (redundant)
        reduced = store.reduced_preferences()
        assert len(store) == 3
        assert len(reduced) == 2
        edges = {(p.preferred.items, p.other.items) for p in reduced}
        assert ((0,), (2,)) not in edges

    def test_reduction_preserves_validity_semantics(self, paper_example_evaluator):
        rng = np.random.default_rng(0)
        store = PreferenceStore(2)
        store.add(make_preference(paper_example_evaluator, [0], [1]))
        store.add(make_preference(paper_example_evaluator, [1], [2]))
        store.add(make_preference(paper_example_evaluator, [0], [2]))
        for _ in range(200):
            w = rng.uniform(-1, 1, 2)
            assert store.satisfies(w, reduced=True) == store.satisfies(w, reduced=False)

    def test_non_redundant_edges_kept(self, paper_example_evaluator):
        store = PreferenceStore(2)
        store.add(make_preference(paper_example_evaluator, [0], [1]))
        store.add(make_preference(paper_example_evaluator, [0], [2]))
        assert len(store.reduced_preferences()) == 2

    def test_directions_reduced_flag(self, paper_example_evaluator):
        store = PreferenceStore(2)
        store.add(make_preference(paper_example_evaluator, [0], [1]))
        store.add(make_preference(paper_example_evaluator, [1], [2]))
        store.add(make_preference(paper_example_evaluator, [0], [2]))
        assert store.directions(reduced=False).shape[0] == 3
        assert store.directions(reduced=True).shape[0] == 2

    def test_duplicate_edges_collapsed_in_reduction(self, paper_example_evaluator):
        store = PreferenceStore(2)
        preference = make_preference(paper_example_evaluator, [0], [1])
        store.add(preference)
        store.add(make_preference(paper_example_evaluator, [0], [1]))
        assert len(store) == 2
        assert len(store.reduced_preferences()) == 1
