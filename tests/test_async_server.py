"""Tests for the async front-end: micro-batch dispatcher + server facade.

Covers the dispatch-window contract called out for this subsystem: flush on
max batch size vs max wait, the single-request fast path, per-request error
isolation (one failing session must not poison its batch), and graceful
shutdown draining every admitted request.  The dispatcher tests observe
batching through a stub engine; the server tests run the real engine.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile
from repro.service import (
    AsyncRecommendationServer,
    DispatcherClosedError,
    DispatcherOverloadedError,
    EngineConfig,
    MicroBatchDispatcher,
    RecommendationEngine,
    SessionNotFoundError,
)
from repro.simulation.traffic import AsyncTrafficSimulator, AsyncWorkloadSpec


class StubEngine:
    """Engine stand-in that records how requests were grouped."""

    def __init__(self, fail_ids=()):
        self.fail_ids = set(fail_ids)
        self.single_calls = []
        self.batch_calls = []

    def recommend(self, session_id):
        self.single_calls.append(session_id)
        if session_id in self.fail_ids:
            raise SessionNotFoundError(session_id)
        return f"round:{session_id}"

    def recommend_many(self, session_ids):
        self.batch_calls.append(list(session_ids))
        for session_id in session_ids:
            if session_id in self.fail_ids:
                raise SessionNotFoundError(session_id)
        return [f"round:{session_id}" for session_id in session_ids]


class ShardAwareStubEngine(StubEngine):
    """Stub with the sharded-engine planning surface (``fill_shard_plan``)."""

    def __init__(self, plan=None, **kwargs):
        super().__init__(**kwargs)
        self.plan = dict(plan or {})
        self.plan_calls = []

    def fill_shard_plan(self, session_ids):
        self.plan_calls.append(list(session_ids))
        return {
            session_id: self.plan[session_id]
            for session_id in session_ids
            if session_id in self.plan
        }


@pytest.fixture
def serving_catalog() -> ItemCatalog:
    rng = np.random.default_rng(11)
    return ItemCatalog(rng.random((30, 3)))


@pytest.fixture
def serving_profile() -> AggregateProfile:
    return AggregateProfile(["sum", "avg", "max"])


def make_engine(catalog, profile, **config_overrides):
    elicitation = ElicitationConfig(
        k=2,
        num_random=2,
        max_package_size=2,
        num_samples=40,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=60,
        search_items_cap=25,
        seed=0,
    )
    config = EngineConfig(elicitation=elicitation, seed=1, **config_overrides)
    return RecommendationEngine(catalog, profile, config)


# ================================================================ dispatcher
class TestDispatchWindow:
    def test_flush_on_max_batch_size(self):
        """A full window dispatches immediately — no timer wait."""

        async def main():
            engine = StubEngine()
            dispatcher = MicroBatchDispatcher(engine, max_batch_size=4, max_wait=60.0)
            results = await asyncio.gather(
                *(dispatcher.submit(f"s{i}") for i in range(4))
            )
            return engine, dispatcher, results

        engine, dispatcher, results = asyncio.run(main())
        assert results == [f"round:s{i}" for i in range(4)]
        assert engine.batch_calls == [["s0", "s1", "s2", "s3"]]
        assert engine.single_calls == []
        assert dispatcher.stats.size_flushes == 1
        assert dispatcher.stats.timer_flushes == 0

    def test_flush_on_max_wait(self):
        """A part-filled window dispatches once max_wait elapses."""

        async def main():
            engine = StubEngine()
            dispatcher = MicroBatchDispatcher(
                engine, max_batch_size=100, max_wait=0.005
            )
            results = await asyncio.gather(
                *(dispatcher.submit(f"s{i}") for i in range(3))
            )
            return engine, dispatcher, results

        engine, dispatcher, results = asyncio.run(main())
        assert results == ["round:s0", "round:s1", "round:s2"]
        assert engine.batch_calls == [["s0", "s1", "s2"]]
        assert dispatcher.stats.timer_flushes == 1
        assert dispatcher.stats.size_flushes == 0

    def test_oversized_burst_splits_into_full_windows(self):
        async def main():
            engine = StubEngine()
            dispatcher = MicroBatchDispatcher(engine, max_batch_size=4, max_wait=0.005)
            await asyncio.gather(*(dispatcher.submit(f"s{i}") for i in range(10)))
            return engine, dispatcher

        engine, dispatcher = asyncio.run(main())
        assert [len(batch) for batch in engine.batch_calls] == [4, 4, 2]
        assert dispatcher.stats.size_flushes == 2
        assert dispatcher.stats.timer_flushes == 1

    def test_single_request_takes_the_fast_path(self):
        """One lone request skips recommend_many entirely."""

        async def main():
            engine = StubEngine()
            dispatcher = MicroBatchDispatcher(engine, max_batch_size=16, max_wait=0.002)
            result = await dispatcher.submit("solo")
            return engine, dispatcher, result

        engine, dispatcher, result = asyncio.run(main())
        assert result == "round:solo"
        assert engine.single_calls == ["solo"]
        assert engine.batch_calls == []
        assert dispatcher.stats.fast_path_serves == 1

    def test_error_isolation_within_a_batch(self):
        """One failing session gets its exception; the rest get rounds."""

        async def main():
            engine = StubEngine(fail_ids={"bad"})
            dispatcher = MicroBatchDispatcher(engine, max_batch_size=3, max_wait=60.0)
            results = await asyncio.gather(
                dispatcher.submit("a"),
                dispatcher.submit("bad"),
                dispatcher.submit("b"),
                return_exceptions=True,
            )
            return engine, dispatcher, results

        engine, dispatcher, results = asyncio.run(main())
        assert results[0] == "round:a"
        assert isinstance(results[1], SessionNotFoundError)
        assert results[2] == "round:b"
        assert dispatcher.stats.batch_fallbacks == 1
        assert dispatcher.stats.requests_failed == 1
        assert dispatcher.stats.requests_completed == 2

    def test_graceful_shutdown_drains_admitted_requests(self):
        """aclose dispatches the pending window before refusing new work."""

        async def main():
            engine = StubEngine()
            dispatcher = MicroBatchDispatcher(engine, max_batch_size=100, max_wait=60.0)
            tasks = [
                asyncio.ensure_future(dispatcher.submit(f"s{i}")) for i in range(3)
            ]
            await asyncio.sleep(0)  # let the submissions enter the window
            assert dispatcher.pending_requests == 3
            await dispatcher.aclose()
            results = await asyncio.gather(*tasks)
            with pytest.raises(DispatcherClosedError):
                await dispatcher.submit("late")
            return engine, dispatcher, results

        engine, dispatcher, results = asyncio.run(main())
        assert results == ["round:s0", "round:s1", "round:s2"]
        assert dispatcher.stats.drain_flushes == 1
        assert dispatcher.closed

    def test_cancelled_requests_are_dropped_before_dispatch(self):
        """A submitter that timed out in the window never reaches the engine."""

        async def main():
            engine = StubEngine()
            dispatcher = MicroBatchDispatcher(engine, max_batch_size=100, max_wait=60.0)
            kept = asyncio.ensure_future(dispatcher.submit("kept"))
            doomed = asyncio.ensure_future(dispatcher.submit("doomed"))
            await asyncio.sleep(0)  # both enter the window
            doomed.cancel()
            await dispatcher.drain()
            result = await kept
            with pytest.raises(asyncio.CancelledError):
                await doomed
            return engine, dispatcher, result

        engine, dispatcher, result = asyncio.run(main())
        assert result == "round:kept"
        # The cancelled session was never served — fast path, "kept" only.
        assert engine.single_calls == ["kept"]
        assert engine.batch_calls == []
        assert dispatcher.stats.requests_cancelled == 1
        assert dispatcher.stats.requests_completed == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatchDispatcher(StubEngine(), max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatchDispatcher(StubEngine(), max_wait=-1.0)
        with pytest.raises(ValueError):
            MicroBatchDispatcher(StubEngine(), max_pending=0)


# ====================================================== shard-aware dispatch
class TestShardAwareDispatch:
    def _dispatch(self, engine, ids):
        async def main():
            dispatcher = MicroBatchDispatcher(
                engine, max_batch_size=len(ids), max_wait=60.0
            )
            results = await asyncio.gather(
                *(dispatcher.submit(session_id) for session_id in ids)
            )
            return dispatcher, results

        return asyncio.run(main())

    def test_window_groups_pool_missing_sessions_by_shard(self):
        """Interleaved arrivals reach recommend_many contiguous per shard."""
        engine = ShardAwareStubEngine(
            plan={"a": 1, "b": 0, "c": 1, "d": 0}
        )
        dispatcher, results = self._dispatch(engine, ["a", "b", "c", "d"])
        assert results == ["round:a", "round:b", "round:c", "round:d"]
        # shard 0 first, shard 1 second; arrival order stable within a shard
        assert engine.batch_calls == [["b", "d", "a", "c"]]
        assert dispatcher.stats.shard_grouped_batches == 1

    def test_sessions_with_live_pools_keep_arrival_order_after_groups(self):
        engine = ShardAwareStubEngine(plan={"c": 2, "a": 0})
        dispatcher, _results = self._dispatch(engine, ["a", "b", "c", "d"])
        # planned sessions grouped first; pool-hit sessions (b, d) trail in
        # arrival order
        assert engine.batch_calls == [["a", "c", "b", "d"]]

    def test_single_shard_windows_are_left_untouched(self):
        engine = ShardAwareStubEngine(plan={"a": 3, "c": 3})
        dispatcher, _results = self._dispatch(engine, ["a", "b", "c"])
        assert engine.batch_calls == [["a", "b", "c"]]
        assert dispatcher.stats.shard_grouped_batches == 0

    def test_engines_without_the_surface_are_left_untouched(self):
        engine = StubEngine()
        dispatcher, _results = self._dispatch(engine, ["x", "y", "z"])
        assert engine.batch_calls == [["x", "y", "z"]]
        assert dispatcher.stats.shard_grouped_batches == 0


# ============================================================= backpressure
class TestBackpressure:
    def test_requests_beyond_max_pending_are_shed(self):
        """The cap rejects at admission; admitted requests still serve."""

        async def main():
            engine = StubEngine()
            dispatcher = MicroBatchDispatcher(
                engine, max_batch_size=16, max_wait=0.01, max_pending=3
            )
            results = await asyncio.gather(
                *(dispatcher.submit(f"s{i}") for i in range(5)),
                return_exceptions=True,
            )
            await dispatcher.drain()
            return engine, dispatcher, results

        engine, dispatcher, results = asyncio.run(main())
        shed = [r for r in results if isinstance(r, DispatcherOverloadedError)]
        served = [r for r in results if isinstance(r, str)]
        assert len(shed) == 2 and len(served) == 3
        assert dispatcher.stats.requests_shed == 2
        # Shed requests never touched the engine.
        assert engine.batch_calls == [["s0", "s1", "s2"]]
        assert dispatcher.stats.requests_submitted == 3

    def test_window_reopens_after_a_flush(self):
        """Shedding is transient: capacity returns once the window flushes."""

        async def main():
            engine = StubEngine()
            dispatcher = MicroBatchDispatcher(
                engine, max_batch_size=16, max_wait=0.005, max_pending=2
            )
            first = await asyncio.gather(
                *(dispatcher.submit(f"a{i}") for i in range(3)),
                return_exceptions=True,
            )
            second = await dispatcher.submit("b0")  # fresh window: admitted
            return first, second

        first, second = asyncio.run(main())
        assert sum(isinstance(r, DispatcherOverloadedError) for r in first) == 1
        assert second == "round:b0"

    def test_no_cap_never_sheds(self):
        async def main():
            dispatcher = MicroBatchDispatcher(
                StubEngine(), max_batch_size=64, max_wait=0.005
            )
            return await asyncio.gather(
                *(dispatcher.submit(f"s{i}") for i in range(32))
            )

        results = asyncio.run(main())
        assert len(results) == 32

    def test_server_forwards_max_pending(self, serving_catalog, serving_profile):
        async def main():
            engine = make_engine(serving_catalog, serving_profile)
            async with AsyncRecommendationServer(
                engine, max_batch_size=16, max_wait=0.01, max_pending=2
            ) as server:
                ids = [await server.create_session(seed=i) for i in range(4)]
                results = await asyncio.gather(
                    *(server.recommend(sid) for sid in ids),
                    return_exceptions=True,
                )
            return server, results

        server, results = asyncio.run(main())
        shed = [
            r for r in results if isinstance(r, DispatcherOverloadedError)
        ]
        assert len(shed) == 2
        assert server.dispatcher.stats.requests_shed == 2
        assert server.stats()["dispatcher"]["requests_shed"] == 2


# ============================================================== async server
class TestAsyncRecommendationServer:
    def test_full_session_loop_over_the_real_engine(
        self, serving_catalog, serving_profile
    ):
        async def main():
            engine = make_engine(serving_catalog, serving_profile)
            async with AsyncRecommendationServer(
                engine, max_batch_size=4, max_wait=0.002
            ) as server:
                ids = [await server.create_session(seed=50 + i) for i in range(6)]

                async def drive(session_id, click):
                    for _ in range(2):
                        round_ = await server.recommend(session_id)
                        assert round_.presented
                        await server.feedback(session_id, click % len(round_.presented))

                await asyncio.gather(
                    *(drive(session_id, i) for i, session_id in enumerate(ids))
                )
                return engine, server.stats()

        engine, stats = asyncio.run(main())
        assert stats["engine"]["rounds_served"] == 12
        assert stats["engine"]["feedback_events"] == 12
        assert stats["dispatcher"]["requests_completed"] == 12
        # Concurrency was actually absorbed into multi-request batches.
        assert stats["dispatcher"]["batches_dispatched"] < 12
        assert stats["dispatcher"]["largest_batch"] >= 2

    def test_recommend_after_shutdown_raises(
        self, serving_catalog, serving_profile
    ):
        async def main():
            engine = make_engine(serving_catalog, serving_profile)
            server = AsyncRecommendationServer(engine)
            session_id = await server.create_session(seed=1)
            await server.shutdown()
            with pytest.raises(DispatcherClosedError):
                await server.recommend(session_id)

        asyncio.run(main())

    def test_unknown_session_error_reaches_only_its_caller(
        self, serving_catalog, serving_profile
    ):
        async def main():
            engine = make_engine(serving_catalog, serving_profile)
            async with AsyncRecommendationServer(
                engine, max_batch_size=3, max_wait=60.0
            ) as server:
                good = [await server.create_session(seed=3) for _ in range(2)]
                results = await asyncio.gather(
                    server.recommend(good[0]),
                    server.recommend("no-such-session"),
                    server.recommend(good[1]),
                    return_exceptions=True,
                )
                return results

        results = asyncio.run(main())
        assert results[0].presented and results[2].presented
        assert isinstance(results[1], SessionNotFoundError)


# ==================================================== async traffic simulator
class TestAsyncTrafficSimulator:
    def test_open_loop_run_with_arrivals_and_think_times(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        server = AsyncRecommendationServer(engine, max_batch_size=8, max_wait=0.002)
        spec = AsyncWorkloadSpec(
            num_sessions=10,
            rounds=2,
            identical_prefix=False,
            arrival_rate=5_000.0,
            think_time_mean=0.001,
        )
        report = AsyncTrafficSimulator(server, spec).run_sync()
        assert report.rounds_served == 20
        assert report.feedback_events == 20
        assert report.p95_request_latency_ms >= report.p50_request_latency_ms > 0
        assert report.dispatcher_stats["requests_completed"] == 20
        assert report.engine_stats["rounds_served"] == 20
        assert "sessions=10" in report.format()
        assert "request latency" in report.format()

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AsyncWorkloadSpec(num_sessions=0)
        with pytest.raises(ValueError):
            AsyncWorkloadSpec(arrival_rate=0.0)
        with pytest.raises(ValueError):
            AsyncWorkloadSpec(think_time_mean=-0.1)

# ========================================================== degraded shedding
class DegradableStubEngine(StubEngine):
    """Stub with the engine's degraded serving surface (``recommend_cached``)."""

    def __init__(self, cached_ids=(), fail_ids=()):
        super().__init__(fail_ids=fail_ids)
        self.cached_ids = set(cached_ids)
        self.cached_calls = []

    def recommend_cached(self, session_id):
        from repro.service import PoolUnavailableError

        self.cached_calls.append(session_id)
        if session_id not in self.cached_ids:
            raise PoolUnavailableError(session_id)
        return f"degraded:{session_id}"


class TestDegradedShedding:
    def test_overload_requests_with_hot_state_get_a_degraded_round(self):
        async def main():
            engine = DegradableStubEngine(cached_ids={"s3", "s4"})
            dispatcher = MicroBatchDispatcher(
                engine,
                max_batch_size=16,
                max_wait=0.01,
                max_pending=3,
                shed_mode="degrade",
            )
            results = await asyncio.gather(
                *(dispatcher.submit(f"s{i}") for i in range(5)),
                return_exceptions=True,
            )
            await dispatcher.drain()
            return engine, dispatcher, results

        engine, dispatcher, results = asyncio.run(main())
        # s0..s2 fill the window; s3 and s4 overflow but are cached: degraded.
        assert results[3] == "degraded:s3" and results[4] == "degraded:s4"
        assert dispatcher.stats.requests_degraded == 2
        assert dispatcher.stats.requests_shed == 0
        # The window itself was served normally.
        assert engine.batch_calls == [["s0", "s1", "s2"]]

    def test_cache_missing_overload_requests_are_still_shed(self):
        async def main():
            engine = DegradableStubEngine(cached_ids={"s3"})
            dispatcher = MicroBatchDispatcher(
                engine,
                max_batch_size=16,
                max_wait=0.01,
                max_pending=3,
                shed_mode="degrade",
            )
            results = await asyncio.gather(
                *(dispatcher.submit(f"s{i}") for i in range(5)),
                return_exceptions=True,
            )
            await dispatcher.drain()
            return dispatcher, results

        dispatcher, results = asyncio.run(main())
        assert results[3] == "degraded:s3"
        assert isinstance(results[4], DispatcherOverloadedError)
        assert dispatcher.stats.requests_degraded == 1
        assert dispatcher.stats.requests_shed == 1

    def test_reject_mode_never_calls_the_degraded_surface(self):
        async def main():
            engine = DegradableStubEngine(cached_ids={"s3", "s4"})
            dispatcher = MicroBatchDispatcher(
                engine, max_batch_size=16, max_wait=0.01, max_pending=3
            )
            results = await asyncio.gather(
                *(dispatcher.submit(f"s{i}") for i in range(5)),
                return_exceptions=True,
            )
            await dispatcher.drain()
            return engine, results

        engine, results = asyncio.run(main())
        assert engine.cached_calls == []
        assert sum(isinstance(r, DispatcherOverloadedError) for r in results) == 2

    def test_engines_without_the_surface_fall_back_to_shedding(self):
        async def main():
            dispatcher = MicroBatchDispatcher(
                StubEngine(),
                max_batch_size=16,
                max_wait=0.01,
                max_pending=2,
                shed_mode="degrade",
            )
            results = await asyncio.gather(
                *(dispatcher.submit(f"s{i}") for i in range(3)),
                return_exceptions=True,
            )
            await dispatcher.drain()
            return dispatcher, results

        dispatcher, results = asyncio.run(main())
        assert sum(isinstance(r, DispatcherOverloadedError) for r in results) == 1
        assert dispatcher.stats.requests_shed == 1
        assert dispatcher.stats.requests_degraded == 0

    def test_invalid_shed_mode_rejected(self):
        with pytest.raises(ValueError):
            MicroBatchDispatcher(StubEngine(), shed_mode="drop")

    def test_real_engine_degraded_serve_uses_cached_pools(
        self, serving_catalog, serving_profile
    ):
        """End to end: an overloaded window serves a warm session a real
        degraded round from the exact-match caches, with zero new fills."""

        async def main():
            engine = make_engine(serving_catalog, serving_profile)
            async with AsyncRecommendationServer(
                engine,
                max_batch_size=16,
                max_wait=0.01,
                max_pending=2,
                shed_mode="degrade",
            ) as server:
                ids = [await server.create_session(seed=i) for i in range(4)]
                # Warm every session once (and therefore the shared pool).
                for sid in ids:
                    engine.recommend(sid)
                sampled_before = engine.stats().pools_sampled
                results = await asyncio.gather(
                    *(server.recommend(sid) for sid in ids),
                    return_exceptions=True,
                )
            return engine, server, results, sampled_before

        engine, server, results, sampled_before = asyncio.run(main())
        rounds = [r for r in results if not isinstance(r, Exception)]
        assert len(rounds) == 4  # overflow requests were degraded, not shed
        assert server.dispatcher.stats.requests_degraded == 2
        assert server.dispatcher.stats.requests_shed == 0
        assert engine.stats().pools_sampled == sampled_before  # no fills
