"""Figure 5: effect of the constraint-checking pruning optimisations (§3.3).

The paper checks a pool of weight samples against a large set of feedback
preferences and compares the overall checking time before and after the
pruning optimisation, sweeping (a) the number of features, (b) the number of
samples, and (c) the number of Gaussians in the prior mixture while the other
parameters stay at their defaults (10,000 preferences, 5,000 packages, 1
Gaussian, 5 features, 1,000 samples).  The reported observation is a robust
improvement of at least ~10%.

Here "before pruning" is a full scan of every (sample, constraint) pair and
"after pruning" combines transitive-style constraint reduction with
early-terminating, adaptively ordered checking (see
:class:`repro.sampling.constraints.ConstraintChecker`).  Both wall-clock time
and the number of constraint evaluations are reported; the latter is
hardware-independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.harness import (
    ExperimentScale,
    build_evaluator,
    random_package_vectors,
    random_preference_directions,
)
from repro.sampling.constraints import ConstraintChecker
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.utils.rng import ensure_rng


@dataclass
class CheckingComparison:
    """One point of the Figure 5 sweep.

    Attributes
    ----------
    varied:
        Name of the swept parameter ("features", "samples", "gaussians").
    value:
        Value of the swept parameter at this point.
    naive_seconds / pruned_seconds:
        Wall-clock time of the baseline and optimised checkers.
    naive_evaluations / pruned_evaluations:
        Number of (sample, constraint) evaluations performed by each.
    speedup:
        ``naive_seconds / pruned_seconds``.
    """

    varied: str
    value: int
    naive_seconds: float
    pruned_seconds: float
    naive_evaluations: int
    pruned_evaluations: int

    @property
    def speedup(self) -> float:
        if self.pruned_seconds <= 0:
            return float("inf")
        return self.naive_seconds / self.pruned_seconds

    @property
    def evaluation_reduction(self) -> float:
        """Fraction of constraint evaluations avoided by the pruned checker."""
        if self.naive_evaluations == 0:
            return 0.0
        return 1.0 - self.pruned_evaluations / self.naive_evaluations


def _run_single_point(
    varied: str,
    value: int,
    num_features: int,
    num_samples: int,
    num_gaussians: int,
    num_preferences: int,
    num_packages: int,
    scale: ExperimentScale,
    seed: int,
) -> CheckingComparison:
    rng = ensure_rng(seed)
    evaluator = build_evaluator("UNI", scale, num_features=num_features)
    _, vectors = random_package_vectors(evaluator, num_packages, rng=rng)
    hidden = rng.uniform(-1.0, 1.0, num_features)
    directions = random_preference_directions(
        vectors, num_preferences, rng=rng, consistent_with=hidden
    )
    prior = GaussianMixture.default_prior(num_features, num_gaussians, rng=rng)
    samples = prior.sample(num_samples, rng=rng)

    checker = ConstraintChecker(directions)
    start = time.perf_counter()
    naive = checker.check_naive(samples)
    naive_seconds = time.perf_counter() - start

    checker.reset_order()
    start = time.perf_counter()
    pruned = checker.check_pruned(samples)
    pruned_seconds = time.perf_counter() - start

    if not np.array_equal(naive.valid_mask, pruned.valid_mask):
        raise AssertionError(
            "pruned constraint checking changed the validity mask; this is a bug"
        )
    return CheckingComparison(
        varied=varied,
        value=value,
        naive_seconds=naive_seconds,
        pruned_seconds=pruned_seconds,
        naive_evaluations=naive.constraint_evaluations,
        pruned_evaluations=pruned.constraint_evaluations,
    )


def run_constraint_checking_experiment(
    feature_values: Sequence[int] = (3, 4, 5, 6, 7),
    sample_values: Sequence[int] = (200, 400, 600, 800, 1000),
    gaussian_values: Sequence[int] = (1, 2, 3, 4, 5),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, List[CheckingComparison]]:
    """Run the three sweeps of Figure 5 (a)–(c).

    Defaults use the scaled-down preference/sample counts from
    ``ExperimentScale``; pass ``scale=ExperimentScale.paper()`` together with
    the paper's sweep values (samples 1000–5000) for full-scale runs.
    """
    scale = scale if scale is not None else ExperimentScale(seed=seed)
    defaults = {
        "num_features": scale.num_features,
        "num_samples": scale.num_samples,
        "num_gaussians": scale.num_gaussians,
        "num_preferences": scale.num_preferences,
        "num_packages": scale.num_packages,
    }
    results: Dict[str, List[CheckingComparison]] = {
        "features": [],
        "samples": [],
        "gaussians": [],
    }
    for value in feature_values:
        results["features"].append(
            _run_single_point(
                "features", value,
                num_features=value,
                num_samples=defaults["num_samples"],
                num_gaussians=defaults["num_gaussians"],
                num_preferences=defaults["num_preferences"],
                num_packages=defaults["num_packages"],
                scale=scale, seed=seed,
            )
        )
    for value in sample_values:
        results["samples"].append(
            _run_single_point(
                "samples", value,
                num_features=defaults["num_features"],
                num_samples=value,
                num_gaussians=defaults["num_gaussians"],
                num_preferences=defaults["num_preferences"],
                num_packages=defaults["num_packages"],
                scale=scale, seed=seed,
            )
        )
    for value in gaussian_values:
        results["gaussians"].append(
            _run_single_point(
                "gaussians", value,
                num_features=defaults["num_features"],
                num_samples=defaults["num_samples"],
                num_gaussians=value,
                num_preferences=defaults["num_preferences"],
                num_packages=defaults["num_packages"],
                scale=scale, seed=seed,
            )
        )
    return results


def summarise(results: Dict[str, List[CheckingComparison]]) -> List[List]:
    """Rows (sweep, value, naive s, pruned s, speedup, eval reduction)."""
    rows: List[List] = []
    for sweep, points in results.items():
        for point in points:
            rows.append(
                [
                    sweep,
                    point.value,
                    point.naive_seconds,
                    point.pruned_seconds,
                    point.speedup,
                    point.evaluation_reduction,
                ]
            )
    return rows
