"""Synthetic substitute for the NBA career-statistics dataset.

The paper's real dataset is scraped from databasebasketball.com and contains
career statistics for 3705 NBA players with 17 features, of which 10 are used
in the experiments.  The website's data dump is not redistributable, so this
module synthesises a statistically similar table:

* counting statistics (games, points, rebounds, ...) are right-skewed and
  strongly positively correlated through a latent "career length × talent"
  factor, exactly as real career totals are;
* percentage statistics (FG%, FT%, 3P%) are bounded and weakly correlated
  with the counting statistics;
* the per-feature marginals are normalised into ``[0, 1]`` as the paper does
  before running any algorithm.

The elicitation/sampling/top-k algorithms only consume a numeric item–feature
matrix, so the substitution exercises the same code paths with the same data
shape (skewed, positively correlated features).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

#: Number of players in the paper's NBA dataset.
NBA_NUM_PLAYERS = 3705

#: The 17 career-statistics features the paper's raw dataset carries.
NBA_FEATURES: Tuple[str, ...] = (
    "games_played",
    "minutes",
    "points",
    "total_rebounds",
    "offensive_rebounds",
    "defensive_rebounds",
    "assists",
    "steals",
    "blocks",
    "turnovers",
    "personal_fouls",
    "field_goals_made",
    "field_goal_pct",
    "free_throws_made",
    "free_throw_pct",
    "three_pointers_made",
    "three_point_pct",
)

#: Indices of counting (volume) statistics, driven by career length and talent.
_COUNTING_FEATURES = tuple(
    i for i, name in enumerate(NBA_FEATURES) if not name.endswith("_pct")
)

#: Indices of bounded percentage statistics.
_PCT_FEATURES = tuple(
    i for i, name in enumerate(NBA_FEATURES) if name.endswith("_pct")
)

#: Per-counting-feature scale relative to a full career's minutes, roughly
#: matching the relative magnitudes of real NBA career totals.
_COUNTING_SCALES = {
    "games_played": 1.0,
    "minutes": 25.0,
    "points": 12.0,
    "total_rebounds": 5.0,
    "offensive_rebounds": 1.6,
    "defensive_rebounds": 3.4,
    "assists": 2.8,
    "steals": 0.9,
    "blocks": 0.6,
    "turnovers": 1.7,
    "personal_fouls": 2.4,
    "field_goals_made": 4.6,
    "free_throws_made": 2.4,
    "three_pointers_made": 0.8,
}


def generate_nba_dataset(
    num_players: int = NBA_NUM_PLAYERS,
    num_features: int = 10,
    rng: RngLike = None,
    return_feature_names: bool = False,
):
    """Generate a synthetic NBA-like career-statistics matrix.

    Parameters
    ----------
    num_players:
        Number of rows (players); the paper's dataset has 3705.
    num_features:
        Number of feature columns to select.  The paper randomly selects 10 of
        the 17 available features; we do the same, deterministically from
        ``rng`` so experiments are reproducible.
    rng:
        Seed or generator.
    return_feature_names:
        When ``True``, also return the names of the selected features.

    Returns
    -------
    numpy.ndarray or (numpy.ndarray, list[str])
        ``(num_players, num_features)`` matrix with values in ``[0, 1]``;
        optionally the selected feature names.
    """
    if num_players <= 0:
        raise ValueError(f"num_players must be > 0, got {num_players}")
    if not 1 <= num_features <= len(NBA_FEATURES):
        raise ValueError(
            f"num_features must be between 1 and {len(NBA_FEATURES)}, got {num_features}"
        )
    generator = ensure_rng(rng)

    full = _generate_full_table(num_players, generator)
    selected = sorted(
        generator.choice(len(NBA_FEATURES), size=num_features, replace=False).tolist()
    )
    matrix = full[:, selected]
    matrix = _normalise_columns(matrix)
    if return_feature_names:
        names: List[str] = [NBA_FEATURES[i] for i in selected]
        return matrix, names
    return matrix


def _generate_full_table(num_players: int, generator: np.random.Generator) -> np.ndarray:
    """Generate the full 17-feature table before normalisation."""
    # Latent career volume: product of career length (heavy-tailed: most
    # players have short careers) and talent (log-normal).
    career_games = generator.gamma(shape=1.6, scale=260.0, size=num_players)
    career_games = np.clip(career_games, 3.0, 1611.0)  # NBA record ~1611 games
    talent = generator.lognormal(mean=0.0, sigma=0.35, size=num_players)

    table = np.zeros((num_players, len(NBA_FEATURES)))
    # Real rosters mix guards, wings and bigs whose per-game statistical
    # profiles differ substantially (a centre's rebounds vs a point guard's
    # assists), so each counting stat gets a per-player archetype multiplier in
    # addition to shared career volume.  This keeps the strong positive
    # correlation of career totals without making every column a near-copy of
    # the others.
    per_game_noise_sigma = 0.6

    for idx in _COUNTING_FEATURES:
        name = NBA_FEATURES[idx]
        scale = _COUNTING_SCALES[name]
        per_game = scale * talent * np.exp(
            generator.normal(0.0, per_game_noise_sigma, size=num_players)
        )
        if name == "games_played":
            table[:, idx] = career_games
        else:
            table[:, idx] = per_game * career_games

    # Percentages: mildly talent-correlated, bounded, with position-like
    # heterogeneity (e.g. some players rarely attempt three pointers).
    pct_centres = {"field_goal_pct": 0.44, "free_throw_pct": 0.74, "three_point_pct": 0.30}
    for idx in _PCT_FEATURES:
        name = NBA_FEATURES[idx]
        centre = pct_centres[name]
        values = centre + 0.05 * (talent - 1.0) + generator.normal(0.0, 0.06, num_players)
        if name == "three_point_pct":
            # Roughly a third of historical players essentially never shot threes.
            non_shooters = generator.random(num_players) < 0.35
            values[non_shooters] = generator.uniform(0.0, 0.15, non_shooters.sum())
        table[:, idx] = np.clip(values, 0.0, 1.0)

    return table


def _normalise_columns(matrix: np.ndarray) -> np.ndarray:
    """Min-max normalise each column into [0, 1] (constant columns map to 0)."""
    mins = matrix.min(axis=0)
    maxs = matrix.max(axis=0)
    span = np.where(maxs > mins, maxs - mins, 1.0)
    return (matrix - mins) / span
