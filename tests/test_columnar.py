"""Columnar catalog store: round-trip fidelity, pushdown, and equivalence.

The bar for the mmap backing is *bit-identity*: everything observable about a
catalog — features, null masks, sort orders, summaries, and every search
result computed over it — must be exactly equal whether the catalog is the
in-memory matrix it was built from or a columnar store reopened through
``np.memmap``.  The property suites here exercise the hard cases: ties (the
stable argsort must break them identically), all-null columns, negative
weights (ascending orders), and null-aware boundary vectors.
"""

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig, PackageRecommender
from repro.core.items import ItemCatalog, SortedOrderCache
from repro.core.packages import PackageEvaluator
from repro.core.profiles import AggregateProfile
from repro.data.columnar import (
    CatalogPredicateSet,
    CategoryPredicate,
    NumericRangePredicate,
    open_catalog_by_digest,
    open_catalog_store,
    register_catalog_location,
    write_catalog_store,
)
from repro.service.engine import EngineConfig, RecommendationEngine
from repro.topk.batch_search import BatchTopKPackageSearcher
from repro.topk.bruteforce import brute_force_top_k_packages
from repro.topk.package_search import TopKPackageSearcher, null_aware_boundary
from repro.topk.sorted_lists import SortedItemLists


def _nullable_catalog(seed: int, n: int = 120, m: int = 4) -> ItemCatalog:
    """A catalog with nulls, exact ties, and one all-null column."""
    rng = np.random.default_rng(seed)
    features = rng.integers(0, 8, size=(n, m)).astype(float)  # many ties
    features[rng.random((n, m)) < 0.2] = np.nan
    features[:, m - 1] = np.nan  # an entirely null column
    return ItemCatalog(features)


@pytest.fixture()
def store_pair(tmp_path):
    """(materialized catalog, mmap reopening of its store)."""
    catalog = _nullable_catalog(seed=3)
    write_catalog_store(catalog, str(tmp_path / "store"))
    return catalog, open_catalog_store(str(tmp_path / "store"))


# ------------------------------------------------------------------ round trip
class TestStoreRoundTrip:
    def test_features_and_null_mask_byte_identical(self, store_pair):
        catalog, reopened = store_pair
        original = np.asarray(catalog.features)
        mapped = np.asarray(reopened.features)
        assert np.array_equal(np.isnan(original), np.isnan(mapped))
        assert np.array_equal(
            np.nan_to_num(original).tobytes(), np.nan_to_num(mapped).tobytes()
        )
        assert np.array_equal(catalog.null_mask, np.asarray(reopened.null_mask))

    def test_stored_orders_match_live_argsort_both_directions(self, store_pair):
        catalog, reopened = store_pair
        for j in range(catalog.num_features):
            for descending in (True, False):
                assert np.array_equal(
                    catalog.argsort_feature(j, descending=descending),
                    reopened.argsort_feature(j, descending=descending),
                ), (j, descending)

    def test_summaries_and_stats_match(self, store_pair):
        catalog, reopened = store_pair
        assert np.array_equal(catalog.feature_max(), reopened.feature_max())
        assert np.array_equal(catalog.feature_min(), reopened.feature_min())
        assert catalog.has_nulls() == reopened.has_nulls()
        for j in range(catalog.num_features):
            assert np.array_equal(
                catalog.feature_top_values(j, 5), reopened.feature_top_values(j, 5)
            )
            assert np.array_equal(
                catalog.feature_column(j), reopened.feature_column(j)
            )

    def test_content_digests_equal_across_backings(self, store_pair):
        catalog, reopened = store_pair
        assert catalog.content_digest() == reopened.content_digest()
        assert reopened.backing_kind == "mmap"
        assert catalog.backing_kind == "materialized"
        assert reopened.store_path is not None
        assert reopened.backing.verify_digest()

    def test_names_and_ids_round_trip(self, tmp_path):
        features = np.array([[1.0, 2.0], [3.0, np.nan]])
        catalog = ItemCatalog(
            features, feature_names=["price", "stars"], item_ids=["a", "b"]
        )
        write_catalog_store(catalog, str(tmp_path / "s"))
        reopened = open_catalog_store(str(tmp_path / "s"))
        assert reopened.feature_names == ["price", "stars"]
        assert reopened.item_ids == ["a", "b"]

    def test_truncated_store_is_rejected(self, tmp_path):
        catalog = _nullable_catalog(seed=4, n=30)
        write_catalog_store(catalog, str(tmp_path / "s"))
        columns = tmp_path / "s" / "columns.f64"
        columns.write_bytes(columns.read_bytes()[:-8])
        with pytest.raises(ValueError, match="expected .* bytes"):
            open_catalog_store(str(tmp_path / "s"))


# ---------------------------------------------------------------- order cache
class TestSortedOrderCache:
    def test_argsort_feature_is_cached_per_instance(self):
        catalog = _nullable_catalog(seed=5, n=40)
        first = catalog.argsort_feature(0, descending=True)
        assert catalog.argsort_feature(0, descending=True) is first
        # Direction is part of the key, not a reuse of the same array.
        assert catalog.argsort_feature(0, descending=False) is not first

    def test_cache_compute_runs_once(self):
        cache = SortedOrderCache()
        calls = []

        def compute():
            calls.append(1)
            return np.arange(3)

        a = cache.get((0, True), compute)
        b = cache.get((0, True), compute)
        assert a is b and len(calls) == 1 and len(cache) == 1


# --------------------------------------------------- null handling / boundaries
class TestNullHandlingEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_boundary_vectors_match_under_negative_weights(self, tmp_path, seed):
        catalog = _nullable_catalog(seed=seed)
        write_catalog_store(catalog, str(tmp_path / f"s{seed}"))
        reopened = open_catalog_store(str(tmp_path / f"s{seed}"))
        profile = AggregateProfile(["sum", "min", "max", "avg"])
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=4)  # mixed signs: both sort directions
        null_columns = catalog.null_mask.any(axis=0)
        cursors = [SortedItemLists(c, weights) for c in (catalog, reopened)]
        for _ in range(25):
            produced = {lists.next_item() for lists in cursors}
            assert len(produced) == 1  # same item (or same None) from both
            taus = [
                null_aware_boundary(
                    lists.boundary_vector(), weights, profile, null_columns
                )
                for lists in cursors
            ]
            assert np.array_equal(taus[0], taus[1], equal_nan=True)
        assert np.array_equal(
            cursors[0].exhausted_boundary_vector(),
            cursors[1].exhausted_boundary_vector(),
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_search_results_bit_identical_across_backings(self, tmp_path, seed):
        catalog = _nullable_catalog(seed=10 + seed)
        write_catalog_store(catalog, str(tmp_path / "s"))
        reopened = open_catalog_store(str(tmp_path / "s"))
        profile = AggregateProfile(["sum", "avg", "min", "max"])
        rng = np.random.default_rng(seed)
        W = rng.normal(size=(6, 4))
        W[0] = 0.0  # the deterministic zero-weight path too

        reference = None
        for backing in (catalog, reopened):
            evaluator = PackageEvaluator(backing, profile, max_package_size=2)
            sequential = TopKPackageSearcher(evaluator).search_many(W, 3)
            batched = BatchTopKPackageSearcher(evaluator).search_many(W, 3)
            observed = [
                (
                    [tuple(p.items) for p in r.packages],
                    r.utilities,
                    [tuple(p.items) for p in b.packages],
                    b.utilities,
                )
                for r, b in zip(sequential, batched)
            ]
            if reference is None:
                reference = observed
            else:
                assert observed == reference


# ------------------------------------------------------------------- predicates
class TestPredicatePushdown:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_range_mask_matches_scan_oracle(self, seed):
        catalog = _nullable_catalog(seed=20 + seed)
        rng = np.random.default_rng(seed)
        low, high = sorted(rng.uniform(0, 8, size=2))
        for predicate in (
            NumericRangePredicate(0, low=low, high=high),
            NumericRangePredicate(1, low=low),
            NumericRangePredicate(2, high=high),
            NumericRangePredicate(3, low=low, high=high),  # all-null column
        ):
            j = predicate.feature
            oracle = predicate.matches_column(np.asarray(catalog.features)[:, j])
            assert np.array_equal(predicate.eligible_mask(catalog), oracle)

    def test_category_mask_matches_scan_oracle(self):
        catalog = _nullable_catalog(seed=30)
        predicate = CategoryPredicate(1, values=[2, 5, 7])
        oracle = predicate.matches_column(np.asarray(catalog.features)[:, 1])
        assert np.array_equal(predicate.eligible_mask(catalog), oracle)

    def test_predicate_set_is_conjunction(self):
        catalog = _nullable_catalog(seed=31)
        a = NumericRangePredicate(0, low=2.0)
        b = CategoryPredicate(1, values=[1, 3])
        conjunction = CatalogPredicateSet([a, b]).eligible_mask(catalog)
        assert np.array_equal(
            conjunction, a.eligible_mask(catalog) & b.eligible_mask(catalog)
        )

    def test_mask_is_memoized_per_catalog(self):
        catalog = _nullable_catalog(seed=32)
        predicate = NumericRangePredicate(0, low=1.0)
        assert predicate.eligible_mask(catalog) is predicate.eligible_mask(catalog)

    def test_feature_resolvable_by_name(self):
        catalog = ItemCatalog(
            np.array([[1.0, 9.0], [5.0, 2.0]]), feature_names=["price", "stars"]
        )
        by_name = NumericRangePredicate("price", low=2.0).eligible_mask(catalog)
        by_index = NumericRangePredicate(0, low=2.0).eligible_mask(catalog)
        assert np.array_equal(by_name, by_index)
        with pytest.raises(KeyError):
            NumericRangePredicate("nope", low=0.0).eligible_mask(catalog)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pushdown_equals_bruteforce_over_eligible_items(self, tmp_path, seed):
        catalog = _nullable_catalog(seed=40 + seed, n=60)
        write_catalog_store(catalog, str(tmp_path / "s"))
        reopened = open_catalog_store(str(tmp_path / "s"))
        profile = AggregateProfile(["sum", "avg", "max", "min"])
        predicate = NumericRangePredicate(0, low=2.0, high=6.0)
        eligible = np.flatnonzero(predicate.eligible_mask(catalog))
        assert 0 < eligible.size < catalog.num_items
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=4)

        for backing in (catalog, reopened):
            evaluator = PackageEvaluator(backing, profile, max_package_size=2)
            expected = brute_force_top_k_packages(
                evaluator, weights, k=3, item_indices=[int(i) for i in eligible]
            )
            for searcher in (
                TopKPackageSearcher(evaluator, catalog_predicate=predicate),
                BatchTopKPackageSearcher(evaluator, catalog_predicate=predicate),
            ):
                result = searcher.search(weights, 3)
                assert [tuple(p.items) for p in result.packages] == [
                    tuple(p.items) for p, _ in expected
                ]
                assert result.utilities == pytest.approx(
                    [u for _, u in expected], abs=0
                )

    def test_pushdown_touches_only_eligible_frontier(self):
        catalog = _nullable_catalog(seed=50, n=400)
        predicate = NumericRangePredicate(0, low=6.0, high=7.0)
        eligible = int(predicate.eligible_mask(catalog).sum())
        evaluator = PackageEvaluator(
            catalog, AggregateProfile(["sum", "avg", "max", "min"]), 2
        )
        searcher = TopKPackageSearcher(evaluator, catalog_predicate=predicate)
        result = searcher.search(np.array([1.0, 0.5, 0.0, 0.0]), 2)
        assert result.items_accessed <= eligible

    def test_zero_weight_path_respects_predicate(self):
        catalog = _nullable_catalog(seed=51, n=40)
        predicate = NumericRangePredicate(0, low=4.0)
        mask = predicate.eligible_mask(catalog)
        evaluator = PackageEvaluator(
            catalog, AggregateProfile(["sum", "avg", "max", "min"]), 2
        )
        for searcher in (
            TopKPackageSearcher(evaluator, catalog_predicate=predicate),
            BatchTopKPackageSearcher(evaluator, catalog_predicate=predicate),
        ):
            result = searcher.search(np.zeros(4), 3)
            assert result.packages  # eligible items exist
            for package in result.packages:
                assert mask[list(package.items)].all()

    def test_empty_eligibility_yields_empty_result(self):
        catalog = _nullable_catalog(seed=52, n=30)
        predicate = NumericRangePredicate(0, low=100.0)
        assert not predicate.eligible_mask(catalog).any()
        evaluator = PackageEvaluator(
            catalog, AggregateProfile(["sum", "avg", "max", "min"]), 2
        )
        searcher = TopKPackageSearcher(evaluator, catalog_predicate=predicate)
        assert searcher.search(np.array([1.0, 0, 0, 0]), 3).packages == []
        with pytest.raises(ValueError, match="eliminates every item"):
            PackageRecommender(
                catalog,
                AggregateProfile(["sum", "avg", "max", "min"]),
                config=ElicitationConfig(num_samples=8),
                catalog_predicate=predicate,
            )


# ----------------------------------------------------------------- service tier
class TestEngineBackings:
    def _rounds(self, engine, sessions=3):
        session_ids = [engine.create_session() for _ in range(sessions)]
        observed = []
        for session_id in session_ids:
            round_ = engine.recommend(session_id)
            observed.append([tuple(p.items) for p in round_.presented])
            engine.feedback(session_id, 0)
        for round_ in engine.recommend_many(session_ids):
            observed.append([tuple(p.items) for p in round_.presented])
        return observed

    def test_engine_rounds_identical_across_backings(self):
        catalog = _nullable_catalog(seed=60, n=150)
        profile = AggregateProfile(["sum", "avg", "max", "min"])
        config = dict(
            elicitation=ElicitationConfig(
                num_samples=16, k=2, max_package_size=2, num_random=1
            ),
            seed=9,
        )
        materialized = RecommendationEngine(
            catalog, profile, EngineConfig(**config)
        )
        mapped = RecommendationEngine(
            catalog, profile, EngineConfig(catalog_backing="mmap", **config)
        )
        try:
            assert mapped.catalog.backing_kind == "mmap"
            assert self._rounds(materialized) == self._rounds(mapped)
        finally:
            materialized.close_repository()
            mapped.close_repository()

    def test_mmap_engine_fill_context_references_catalog(self):
        catalog = _nullable_catalog(seed=61, n=80)
        profile = AggregateProfile(["sum", "avg", "max", "min"])
        engine = RecommendationEngine(
            catalog,
            profile,
            EngineConfig(
                elicitation=ElicitationConfig(num_samples=8, max_package_size=2),
                catalog_backing="mmap",
                seed=1,
            ),
        )
        try:
            context = engine._fill_context
            assert context.catalog_digest == catalog.content_digest()
            assert context.catalog_path == engine.catalog.store_path
            # The registry resolves the digest to the (cached) opened catalog.
            opened = open_catalog_by_digest(context.catalog_digest)
            assert opened.num_items == catalog.num_items
            # Served pools are stamped with the catalog they were filled under.
            session_id = engine.create_session()
            engine.recommend(session_id)
            pools = [
                engine.pool_repository.get(key)
                for key in engine.pool_repository.keys()
            ]
            stamped = [p for p in pools if p is not None and "catalog_digest" in p.stats]
            assert stamped, "no pool carried a catalog_digest stamp"
            for pool in stamped:
                assert pool.stats["catalog_digest"] == context.catalog_digest
                assert pool.stats["catalog_items"] == catalog.num_items
        finally:
            engine.close_repository()

    def test_digest_registry_round_trip(self, tmp_path):
        catalog = _nullable_catalog(seed=62, n=25)
        digest = write_catalog_store(catalog, str(tmp_path / "s"))
        register_catalog_location(digest, str(tmp_path / "s"))
        opened = open_catalog_by_digest(digest)
        assert opened.content_digest() == digest
        assert open_catalog_by_digest(digest) is opened  # cached per process

    def test_invalid_backing_rejected(self):
        with pytest.raises(ValueError, match="catalog_backing"):
            EngineConfig(catalog_backing="sqlite")
