"""Traffic generation against the serving layer, closed- and open-loop.

Where :class:`~repro.simulation.session.ElicitationSession` drives one
recommender with one simulated user, the simulators here drive the *serving
layer* with a whole population:

* :class:`TrafficSimulator` — closed-loop rounds against a synchronous
  :class:`~repro.service.engine.RecommendationEngine`: every session advances
  in lockstep, one round per tick, serially or via ``recommend_many``.
* :class:`AsyncTrafficSimulator` — open-loop load against an
  :class:`~repro.service.async_server.AsyncRecommendationServer`: sessions
  arrive by a Poisson process, each runs its own request → click → think-time
  loop concurrently, and per-request latency is measured end to end —
  including the time spent queued in the micro-batch window.

Two canonical populations matter for the serving layer:

* **identical-prefix** — every user shares the same hidden utility and every
  session the same private seed, so all feedback prefixes coincide; this is
  the best case for the shared sample-pool and top-k caches (think: a burst
  of anonymous cold-start users being onboarded with the same script);
* **heterogeneous** — independent utilities and seeds per user, the worst
  case where caches only help on the empty-feedback first round and
  throughput comes from *batching* the per-session work instead.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.noise import NoiseModel
from repro.core.packages import PackageEvaluator
from repro.core.utility import sample_random_utility
from repro.service.async_server import AsyncRecommendationServer
from repro.service.engine import RecommendationEngine
from repro.simulation.user import SimulatedUser
from repro.utils.rng import ensure_rng


def build_user_population(
    evaluator: PackageEvaluator,
    num_sessions: int,
    identical_prefix: bool,
    user_seed: int,
    noise_psi: Optional[float] = None,
) -> List[SimulatedUser]:
    """The simulated users of one workload (shared by both simulators).

    ``noise_psi`` attaches a §7 :class:`~repro.core.noise.NoiseModel` to every
    user: each click goes to the truly best presented package only with
    probability ψ.  On the identical-prefix population this is the *noisy-user
    workload*: sessions start on the shared prefix but a wrong click forks a
    session onto a one-click-apart constraint set — a pool-repository miss
    whose nearest donor is the popular sibling pool, exactly the traffic the
    approximate pool-reuse subsystem exists for.
    """
    noise = NoiseModel(noise_psi) if noise_psi is not None else None
    rng = ensure_rng(user_seed)
    if identical_prefix:
        utility = sample_random_utility(evaluator.num_features, rng)
        return [
            SimulatedUser(utility, evaluator, noise=noise, rng=user_seed + index)
            for index in range(num_sessions)
        ]
    return [
        SimulatedUser.random(evaluator, rng=child, noise=noise)
        for child in np.random.default_rng(user_seed).spawn(num_sessions)
    ]


def session_seed_for(session_seed: int, index: int, identical_prefix: bool) -> int:
    """The private seed of session ``index`` in a simulated workload.

    One definition shared by every simulator *and* the benchmark baselines:
    comparisons between serving modes are only fair while they drive
    identically-seeded sessions, so the stride lives here, not at call sites.
    """
    if identical_prefix:
        return session_seed
    return session_seed + 7919 * (index + 1)


@dataclass
class WorkloadSpec:
    """Shape of a simulated traffic run.

    Attributes
    ----------
    num_sessions:
        Number of concurrent sessions opened.
    rounds:
        Recommendation/feedback rounds every session goes through.
    identical_prefix:
        Same hidden utility and session seed for everyone (cache best case)
        versus fully independent users (cache worst case).
    user_seed:
        Seed for the population's hidden utilities.
    session_seed:
        Private seed shared by every session in identical-prefix mode;
        ignored (per-session derived seeds) otherwise.
    batched:
        Serve rounds via :meth:`RecommendationEngine.recommend_many` (pool
        filling batched across sessions) instead of per-session calls.
    noise_psi:
        Optional §7 click-noise parameter ψ for the simulated users: each
        click lands on the truly best presented package only with
        probability ψ.  With ``identical_prefix=True`` this turns the
        cache-best-case population into the *noisy-user workload* — most
        sessions ride the shared prefix, while noisy clicks fork sessions
        onto near-miss constraint sets (the approximate-pool-reuse traffic).
        ``None`` (default) keeps clicks noise-free.
    """

    num_sessions: int = 50
    rounds: int = 3
    identical_prefix: bool = True
    user_seed: int = 0
    session_seed: int = 0
    batched: bool = True
    noise_psi: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_sessions <= 0:
            raise ValueError(f"num_sessions must be > 0, got {self.num_sessions}")
        if self.rounds <= 0:
            raise ValueError(f"rounds must be > 0, got {self.rounds}")
        if self.noise_psi is not None:
            NoiseModel(self.noise_psi)  # validates ψ ∈ [0, 1]


@dataclass
class LoadReport:
    """Measured outcome of one traffic run."""

    num_sessions: int
    rounds: int
    rounds_served: int
    feedback_events: int
    total_seconds: float
    sessions_per_sec: float
    rounds_per_sec: float
    p50_round_latency_ms: float
    p95_round_latency_ms: float
    engine_stats: dict = field(default_factory=dict)
    traces: list = field(default_factory=list)

    def format(self, label: str = "workload") -> str:
        """A compact human-readable summary block."""
        pool = self.engine_stats.get("pool_cache", {})
        topk = self.engine_stats.get("topk_cache", {})
        lines = [
            f"[{label}]",
            f"  sessions={self.num_sessions} rounds={self.rounds} "
            f"rounds_served={self.rounds_served} feedback={self.feedback_events}",
            f"  total={self.total_seconds:.3f}s "
            f"sessions/sec={self.sessions_per_sec:.2f} "
            f"rounds/sec={self.rounds_per_sec:.2f}",
            f"  round latency p50={self.p50_round_latency_ms:.2f}ms "
            f"p95={self.p95_round_latency_ms:.2f}ms",
            f"  pool cache: hits={pool.get('hits', 0)} misses={pool.get('misses', 0)} "
            f"hit_rate={pool.get('hit_rate', 0.0):.2f} "
            f"samples_saved={pool.get('samples_saved', 0)}",
            f"  topk cache: hits={topk.get('hits', 0)} misses={topk.get('misses', 0)} "
            f"hit_rate={topk.get('hit_rate', 0.0):.2f}",
            f"  pools sampled={self.engine_stats.get('pools_sampled', 0)} "
            f"maintained={self.engine_stats.get('pools_maintained', 0)} "
            f"adapted={self.engine_stats.get('pools_adapted', 0)} "
            f"warmed={self.engine_stats.get('pools_warmed', 0)}",
        ]
        repository = self.engine_stats.get("pool_repository") or {}
        if repository:
            lines.append(
                f"  pool repository: shards={repository.get('num_shards', 1)} "
                f"({repository.get('backend', 'inline')}) "
                f"fills={repository.get('fills', 0)} "
                f"multi_shard_fill_batches="
                f"{repository.get('multi_shard_fill_batches', 0)} "
                f"pinned={repository.get('pinned', 0)}"
            )
        return "\n".join(lines)


class TrafficSimulator:
    """Drive an engine with a population of simulated users.

    Parameters
    ----------
    engine:
        The serving engine under load.
    spec:
        Workload shape (sessions, rounds, homogeneity, batching).
    """

    def __init__(self, engine: RecommendationEngine, spec: WorkloadSpec) -> None:
        self.engine = engine
        self.spec = spec
        self.evaluator = engine.evaluator

    def _build_users(self) -> List[SimulatedUser]:
        spec = self.spec
        return build_user_population(
            self.evaluator,
            spec.num_sessions,
            spec.identical_prefix,
            spec.user_seed,
            noise_psi=spec.noise_psi,
        )

    def run(self) -> LoadReport:
        """Execute the workload and measure throughput and latency."""
        spec = self.spec
        engine = self.engine
        users = self._build_users()
        start = time.perf_counter()
        session_ids = [
            engine.create_session(
                seed=session_seed_for(
                    spec.session_seed, index, spec.identical_prefix
                )
            )
            for index in range(spec.num_sessions)
        ]

        latencies: List[float] = []
        feedback_events = 0
        rounds_served = 0
        for _round_index in range(spec.rounds):
            if spec.batched:
                tick = time.perf_counter()
                rounds = engine.recommend_many(session_ids)
                elapsed = time.perf_counter() - tick
                # recommend_many amortises pool filling across sessions; the
                # honest per-session figure is the amortised share.
                latencies.extend([elapsed / len(session_ids)] * len(session_ids))
            else:
                rounds = []
                for session_id in session_ids:
                    tick = time.perf_counter()
                    rounds.append(engine.recommend(session_id))
                    latencies.append(time.perf_counter() - tick)
            rounds_served += len(rounds)
            for session_id, user, round_ in zip(session_ids, users, rounds):
                clicked = user.click(round_.presented)
                engine.feedback(session_id, clicked)
                feedback_events += 1
        total_seconds = time.perf_counter() - start

        latency_array = np.asarray(latencies)
        return LoadReport(
            num_sessions=spec.num_sessions,
            rounds=spec.rounds,
            rounds_served=rounds_served,
            feedback_events=feedback_events,
            total_seconds=total_seconds,
            sessions_per_sec=spec.num_sessions / total_seconds,
            rounds_per_sec=rounds_served / total_seconds if total_seconds else 0.0,
            p50_round_latency_ms=float(np.percentile(latency_array, 50) * 1e3),
            p95_round_latency_ms=float(np.percentile(latency_array, 95) * 1e3),
            engine_stats=engine.stats().as_dict(),
            traces=(
                engine.telemetry.drain_traces()
                if engine.telemetry.enabled
                else []
            ),
        )


@dataclass
class AsyncWorkloadSpec:
    """Shape of an open-loop async traffic run.

    Attributes
    ----------
    num_sessions:
        Number of concurrent client coroutines (one session each).
    rounds:
        Recommendation/feedback rounds every session goes through.
    identical_prefix:
        Same hidden utility and session seed for everyone (cache best case)
        versus fully independent users (cache worst case; the default here —
        the async layer exists for the workload caches cannot absorb).
    arrival_rate:
        Mean session arrivals per second of the Poisson arrival process;
        ``None`` starts every session at t = 0 (a closed burst).
    think_time_mean:
        Mean of the exponential think time a user spends between receiving a
        round and clicking; ``0`` clicks immediately.
    user_seed / session_seed:
        Population seeds, matching :class:`WorkloadSpec` conventions.
    traffic_seed:
        Seed for the arrival offsets and think times, drawn up front so the
        workload is identical regardless of scheduling interleave.
    noise_psi:
        Optional §7 click-noise parameter ψ for the simulated users (see
        :class:`WorkloadSpec`); ``None`` keeps clicks noise-free.
    """

    num_sessions: int = 32
    rounds: int = 3
    identical_prefix: bool = False
    arrival_rate: Optional[float] = None
    think_time_mean: float = 0.0
    user_seed: int = 0
    session_seed: int = 0
    traffic_seed: int = 0
    noise_psi: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_sessions <= 0:
            raise ValueError(f"num_sessions must be > 0, got {self.num_sessions}")
        if self.rounds <= 0:
            raise ValueError(f"rounds must be > 0, got {self.rounds}")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ValueError(
                f"arrival_rate must be > 0 or None, got {self.arrival_rate}"
            )
        if self.think_time_mean < 0:
            raise ValueError(
                f"think_time_mean must be >= 0, got {self.think_time_mean}"
            )
        if self.noise_psi is not None:
            NoiseModel(self.noise_psi)  # validates ψ ∈ [0, 1]


@dataclass
class AsyncLoadReport:
    """Measured outcome of one open-loop async run."""

    num_sessions: int
    rounds: int
    rounds_served: int
    feedback_events: int
    total_seconds: float
    rounds_per_sec: float
    sessions_per_sec: float
    p50_request_latency_ms: float
    p95_request_latency_ms: float
    engine_stats: dict = field(default_factory=dict)
    dispatcher_stats: dict = field(default_factory=dict)
    traces: list = field(default_factory=list)

    def format(self, label: str = "async workload") -> str:
        """A compact human-readable summary block."""
        d = self.dispatcher_stats
        lines = [
            f"[{label}]",
            f"  sessions={self.num_sessions} rounds={self.rounds} "
            f"rounds_served={self.rounds_served} feedback={self.feedback_events}",
            f"  total={self.total_seconds:.3f}s "
            f"rounds/sec={self.rounds_per_sec:.2f} "
            f"sessions/sec={self.sessions_per_sec:.2f}",
            f"  request latency p50={self.p50_request_latency_ms:.2f}ms "
            f"p95={self.p95_request_latency_ms:.2f}ms",
            f"  dispatcher: batches={d.get('batches_dispatched', 0)} "
            f"mean_batch={d.get('mean_batch_size', 0.0):.1f} "
            f"largest={d.get('largest_batch', 0)} "
            f"size_flushes={d.get('size_flushes', 0)} "
            f"timer_flushes={d.get('timer_flushes', 0)}",
            f"  engine: topk_batched_pools="
            f"{self.engine_stats.get('topk_batched_pools', 0)} "
            f"pools sampled={self.engine_stats.get('pools_sampled', 0)} "
            f"maintained={self.engine_stats.get('pools_maintained', 0)}",
        ]
        repository = self.engine_stats.get("pool_repository") or {}
        if repository.get("num_shards", 1) > 1:
            lines.append(
                f"  pool repository: shards={repository.get('num_shards')} "
                f"({repository.get('backend', 'inline')}) "
                f"fills={repository.get('fills', 0)}"
            )
        return "\n".join(lines)


class AsyncTrafficSimulator:
    """Open-loop population against an :class:`AsyncRecommendationServer`.

    Every session is its own coroutine: arrive (Poisson offset), create a
    session, then ``rounds`` times — request a recommendation, click after an
    exponential think time, send feedback.  Requests from different sessions
    overlap freely, which is exactly what feeds the server's micro-batch
    window; latency is measured per request, *including* the time spent
    waiting in that window.

    Parameters
    ----------
    server:
        The async front-end under load.
    spec:
        Workload shape (sessions, rounds, arrivals, think times).
    """

    def __init__(
        self, server: AsyncRecommendationServer, spec: AsyncWorkloadSpec
    ) -> None:
        self.server = server
        self.spec = spec
        self.evaluator = server.engine.evaluator

    async def run(self) -> AsyncLoadReport:
        """Execute the workload; resolves to the measured report."""
        spec = self.spec
        users = build_user_population(
            self.evaluator,
            spec.num_sessions,
            spec.identical_prefix,
            spec.user_seed,
            noise_psi=spec.noise_psi,
        )
        rng = ensure_rng(spec.traffic_seed)
        if spec.arrival_rate is not None:
            offsets = np.cumsum(
                rng.exponential(1.0 / spec.arrival_rate, spec.num_sessions)
            )
        else:
            offsets = np.zeros(spec.num_sessions)
        thinks = (
            rng.exponential(spec.think_time_mean, (spec.num_sessions, spec.rounds))
            if spec.think_time_mean > 0
            else np.zeros((spec.num_sessions, spec.rounds))
        )

        latencies: List[float] = []
        rounds_served = 0
        feedback_events = 0

        async def drive(index: int, user: SimulatedUser) -> None:
            nonlocal rounds_served, feedback_events
            if offsets[index] > 0:
                await asyncio.sleep(float(offsets[index]))
            session_id = await self.server.create_session(
                seed=session_seed_for(
                    spec.session_seed, index, spec.identical_prefix
                )
            )
            for round_index in range(spec.rounds):
                tick = time.perf_counter()
                round_ = await self.server.recommend(session_id)
                latencies.append(time.perf_counter() - tick)
                rounds_served += 1
                if thinks[index, round_index] > 0:
                    await asyncio.sleep(float(thinks[index, round_index]))
                clicked = user.click(round_.presented)
                await self.server.feedback(session_id, clicked)
                feedback_events += 1

        start = time.perf_counter()
        await asyncio.gather(
            *(drive(index, user) for index, user in enumerate(users))
        )
        await self.server.dispatcher.drain()
        total_seconds = time.perf_counter() - start

        latency_array = np.asarray(latencies)
        return AsyncLoadReport(
            num_sessions=spec.num_sessions,
            rounds=spec.rounds,
            rounds_served=rounds_served,
            feedback_events=feedback_events,
            total_seconds=total_seconds,
            rounds_per_sec=rounds_served / total_seconds if total_seconds else 0.0,
            sessions_per_sec=(
                spec.num_sessions / total_seconds if total_seconds else 0.0
            ),
            p50_request_latency_ms=float(np.percentile(latency_array, 50) * 1e3),
            p95_request_latency_ms=float(np.percentile(latency_array, 95) * 1e3),
            engine_stats=self.server.engine.stats().as_dict(),
            dispatcher_stats=self.server.dispatcher.stats.as_dict(),
            traces=(
                self.server.engine.telemetry.drain_traces()
                if self.server.engine.telemetry.enabled
                else []
            ),
        )

    def run_sync(self) -> AsyncLoadReport:
        """Convenience wrapper: run the workload on a fresh event loop."""
        return asyncio.run(self.run())
