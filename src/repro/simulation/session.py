"""Closed-loop elicitation sessions between a recommender and a simulated user.

Reproduces the protocol of §5.6: per round the system presents its current
best packages plus random exploration packages; the user clicks the presented
package maximising their hidden utility; the click feeds back into the system;
the loop stops once the system's top-k list stops changing (it has converged)
or a round cap is reached.  The number of clicks needed before convergence is
the statistic plotted in Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.elicitation import PackageRecommender
from repro.core.packages import Package
from repro.simulation.user import SimulatedUser


@dataclass
class SessionResult:
    """Outcome of one simulated elicitation session.

    Attributes
    ----------
    clicks_to_convergence:
        Number of clicks after which the system's top-k list stopped changing
        (``max_rounds`` if it never stabilised within the round budget).
    converged:
        Whether the stability criterion was met within the round budget.
    rounds_run:
        Total number of presentation rounds executed.
    top_k_history:
        The system's top-k list (as package-id tuples) after every round.
    final_regret:
        True-utility regret of the final top-k list against the best packages
        the user could have been shown from the same candidate pool (``None``
        when not computed).
    """

    clicks_to_convergence: int
    converged: bool
    rounds_run: int
    top_k_history: List[Tuple[Tuple[int, ...], ...]] = field(default_factory=list)
    final_regret: Optional[float] = None


class ElicitationSession:
    """Run a recommender against a simulated user until the top-k list stabilises.

    Parameters
    ----------
    recommender:
        A fresh :class:`~repro.core.elicitation.PackageRecommender`.
    user:
        The simulated user providing clicks.
    stability_rounds:
        The top-k list must stay identical for this many consecutive rounds to
        count as converged (the paper reports convergence to a "stable top-k
        package ranking list").
    max_rounds:
        Hard cap on the number of presentation rounds.
    """

    def __init__(
        self,
        recommender: PackageRecommender,
        user: SimulatedUser,
        stability_rounds: int = 2,
        max_rounds: int = 25,
    ) -> None:
        if stability_rounds <= 0:
            raise ValueError(
                f"stability_rounds must be > 0, got {stability_rounds}"
            )
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be > 0, got {max_rounds}")
        self.recommender = recommender
        self.user = user
        self.stability_rounds = stability_rounds
        self.max_rounds = max_rounds

    def run(self, compute_regret: bool = False) -> SessionResult:
        """Execute the closed loop and report convergence statistics."""
        history: List[Tuple[Tuple[int, ...], ...]] = []
        clicks = 0
        stable_streak = 0
        converged = False
        rounds = 0
        previous_key: Optional[Tuple[Tuple[int, ...], ...]] = None

        for rounds in range(1, self.max_rounds + 1):
            round_ = self.recommender.recommend()
            key = tuple(p.items for p in round_.recommended)
            history.append(key)
            if previous_key is not None and key == previous_key:
                stable_streak += 1
                if stable_streak >= self.stability_rounds:
                    converged = True
                    break
            else:
                stable_streak = 0
            previous_key = key

            clicked = self.user.click(round_.presented)
            self.recommender.feedback(clicked, round_.presented)
            clicks += 1

        final_regret = None
        if compute_regret and history:
            final_packages = [Package(items) for items in history[-1]]
            # Compare against the best the user could pick from everything the
            # system ever presented, which is the information both sides share.
            seen: List[Package] = []
            seen_ids = set()
            for key in history:
                for items in key:
                    if items not in seen_ids:
                        seen_ids.add(items)
                        seen.append(Package(items))
            ideal = self.user.true_top_k(seen, len(final_packages))
            final_regret = self.user.regret(final_packages, ideal)

        return SessionResult(
            clicks_to_convergence=clicks,
            converged=converged,
            rounds_run=rounds,
            top_k_history=history,
            final_regret=final_regret,
        )
