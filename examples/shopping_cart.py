"""Shopping-cart composition: utility elicitation vs the two baselines.

The paper's introduction motivates package recommendation with a shopping
scenario (e.g. assembling a cart of books/CDs where total cost should be low
and average quality high) and argues that the two existing approaches fall
short:

* **skyline packages** — too many to present to a user;
* **hard budget constraints** — brittle: a low budget forces sub-optimal carts,
  a high budget leaves an overwhelming number of candidates.

This example quantifies both drawbacks on a concrete catalog and then runs the
paper's elicitation approach, showing it converges to carts the user actually
prefers without asking them to state a budget or exact weights.

Run with::

    python examples/shopping_cart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregateProfile,
    ElicitationConfig,
    ItemCatalog,
    LinearUtility,
    PackageRecommender,
    SimulatedUser,
)
from repro.baselines.hard_constraint import BudgetConstraint, HardConstraintRecommender
from repro.baselines.skyline import skyline_packages
from repro.core.packages import PackageEvaluator


def main() -> None:
    rng = np.random.default_rng(3)

    # --- A catalog of 60 products with (price, quality) features. -----------
    prices = rng.gamma(2.5, 12.0, 60)            # dollars
    quality = np.clip(rng.normal(3.8, 0.6, 60), 1.0, 5.0)  # star rating
    catalog = ItemCatalog(
        np.column_stack([prices, quality]), feature_names=["price", "rating"]
    )
    profile = AggregateProfile(["sum", "avg"], feature_names=["price", "rating"])
    evaluator = PackageEvaluator(catalog, profile, max_package_size=3)

    # --- Baseline 1: skyline packages (cheaper and better are incomparable). -
    skyline = skyline_packages(evaluator, package_size=3, directions=[-1.0, 1.0])
    print(f"Skyline baseline: {len(skyline)} incomparable size-3 carts "
          f"— far too many to show a shopper.")

    # --- Baseline 2: hard budget constraint. ----------------------------------
    # Budgets are expressed on the normalised total price (0..1 of the most
    # expensive possible cart).
    objective = np.array([0.0, 1.0])  # maximise average rating
    for budget in (0.15, 0.6):
        recommender = HardConstraintRecommender(
            evaluator, objective, [BudgetConstraint(feature_index=0, upper_bound=budget)]
        )
        feasible = recommender.feasible_count()
        best = recommender.best_package_exhaustive()
        rating = best[1] if best else float("nan")
        print(f"Hard-constraint baseline with budget {budget:.2f}: "
              f"{feasible} feasible carts, best average rating {rating:.3f}")
    print("  -> a tight budget forfeits quality, a loose one leaves thousands of carts.\n")

    # --- The paper's approach: elicit the trade-off through clicks. ----------
    config = ElicitationConfig(
        k=4, num_random=4, max_package_size=3, num_samples=120,
        sampler="mcmc", semantics="exp", seed=0,
    )
    recommender = PackageRecommender(catalog, profile, config)
    # The shopper dislikes spending but cares a lot about quality.
    shopper = SimulatedUser(LinearUtility(np.array([-0.6, 0.9])), recommender.evaluator, rng=rng)

    for round_number in range(1, 5):
        round_ = recommender.recommend()
        clicked = shopper.click(round_.presented)
        recommender.feedback(clicked, round_.presented)
        best = round_.recommended[0]
        vector = recommender.evaluator.vector(best)
        print(f"Round {round_number}: best cart {best.items} — "
              f"normalised cost {vector[0]:.2f}, rating {vector[1]:.2f}, "
              f"true utility {shopper.true_package_utility(best):.3f}")

    final = recommender.current_top_k(k=4)
    print("\nFinal recommended carts (item indices, price total, average rating):")
    for package in final:
        items = np.asarray(package.items)
        total_price = float(prices[items].sum())
        average_rating = float(quality[items].mean())
        print(f"  {package.items}  ${total_price:7.2f}  {average_rating:.2f} stars  "
              f"true utility {shopper.true_package_utility(package):.3f}")


if __name__ == "__main__":
    main()
