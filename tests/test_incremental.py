"""Randomized equivalence suite for the incremental serving fast path.

The fused fast path has two halves, each with its own exactness contract:

* **Cross-round candidate carryover** (``EngineConfig.search_carryover``)
  must be *invisible*: carried candidates are hints that get re-scored and
  re-bounded, so an engine with the carryover cache serves rounds
  bit-identical to one without it, on every trajectory.
* **ESS-deficit partial refill** (``EngineConfig.partial_refill``) changes
  pool *content* (reweighted survivors + a deficit fill instead of a
  maintained/fresh build), so its contract is *determinism*, pinned on every
  axis the repo already guarantees for fresh builds: re-running the same
  trajectory, changing the shard count, swapping sessions out through the
  event log, and replaying a restart all serve the same bytes.

Each trial draws a full scenario — catalog, ψ, session seeds, ``k`` and a
click path — from one trial seed, runs multi-round trajectories across
heterogeneous sessions, and compares served rounds package-by-package.  On a
mismatch the trial is **shrunk**: the comparison re-runs with ascending
(sessions × rounds) budgets and the report names the minimal failing prefix
plus the full scenario needed to reproduce it.
"""

import os
import shutil

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile
from repro.service.engine import EngineConfig, RecommendationEngine
from repro.service.eventlog import EventLogStore

PROFILE = AggregateProfile(["sum", "avg", "max"])


# --------------------------------------------------------------- scenario gen
class Scenario:
    """Everything one trial needs, derived deterministically from its seed."""

    def __init__(self, trial_seed, num_sessions=2, num_rounds=3):
        rng = np.random.default_rng(trial_seed)
        self.trial_seed = trial_seed
        self.num_sessions = num_sessions
        self.num_rounds = num_rounds
        num_items = int(rng.integers(18, 30))
        features = rng.random((num_items, 3))
        # A sprinkle of nulls so the null-aware bound path stays exercised.
        null_mask = rng.random((num_items, 3)) < 0.05
        features[null_mask] = np.nan
        self.catalog = ItemCatalog(features)
        self.psi = float(rng.choice([0.7, 0.85, 0.95]))
        self.k = int(rng.choice([2, 3]))
        self.engine_seed = int(rng.integers(0, 2**31 - 1))
        self.session_seeds = [
            int(rng.integers(0, 2**31 - 1)) for _ in range(num_sessions)
        ]
        # Click path: for each (round, session), an index into the presented
        # list (taken modulo its length at serve time).
        self.clicks = rng.integers(
            0, 10_000, size=(num_rounds, num_sessions)
        ).tolist()

    def elicitation(self):
        # Exact search settings (no beam or items-cap truncation): carryover's
        # bit-identity contract holds for exact searches; under bounded-work
        # truncation a carried search may legitimately return *better*
        # packages than the truncated cold walk (see test_topk_batch.py's
        # anytime-improvement test).
        return ElicitationConfig(
            k=self.k,
            num_random=2,
            max_package_size=2,
            num_samples=24,
            sampler="mcmc",
            search_sample_budget=3,
            search_beam_width=None,
            search_items_cap=None,
            noise_psi=self.psi,
            seed=0,
        )

    def engine(self, store=None, **overrides):
        config = EngineConfig(
            elicitation=self.elicitation(), seed=self.engine_seed, **overrides
        )
        return RecommendationEngine(self.catalog, PROFILE, config, store=store)

    def describe(self):
        return (
            f"trial_seed={self.trial_seed} items={self.catalog.num_items} "
            f"psi={self.psi} k={self.k} engine_seed={self.engine_seed} "
            f"session_seeds={self.session_seeds} clicks={self.clicks}"
        )


def run_trajectory(scenario, engine, num_sessions, num_rounds, batched=False):
    """Serve a click trajectory; returns presented rounds as nested lists."""
    sids = [
        engine.create_session(seed=scenario.session_seeds[i])
        for i in range(num_sessions)
    ]
    served = []
    for round_index in range(num_rounds):
        if batched:
            rounds = engine.recommend_many(sids)
        else:
            rounds = [engine.recommend(sid) for sid in sids]
        for session_index, (sid, round_) in enumerate(zip(sids, rounds)):
            served.append(
                (round_index, sid, [list(p.items) for p in round_.presented])
            )
            presented = round_.presented
            click = scenario.clicks[round_index][session_index] % len(presented)
            try:
                engine.feedback(sid, click)
            except ValueError:
                pass  # a no-information click must no-op on both sides
    return served


def first_divergence(served_a, served_b):
    for a, b in zip(served_a, served_b):
        if a != b:
            return a, b
    return None


def assert_equivalent_trajectories(scenario, build_a, build_b, label_a, label_b):
    """Compare two engines over the scenario; shrink + report on mismatch.

    ``build_a`` / ``build_b`` are zero-argument engine factories (so the
    shrink loop can rebuild fresh engines per attempt).
    """

    def compare(num_sessions, num_rounds):
        a = run_trajectory(scenario, build_a(), num_sessions, num_rounds)
        b = run_trajectory(scenario, build_b(), num_sessions, num_rounds)
        return first_divergence(a, b)

    divergence = compare(scenario.num_sessions, scenario.num_rounds)
    if divergence is None:
        return
    # Shrink: the smallest (rounds, sessions) budget that still diverges is
    # found by ascending scan — everything is deterministic, so the first
    # failing budget is the minimal reproduction.
    for num_rounds in range(1, scenario.num_rounds + 1):
        for num_sessions in range(1, scenario.num_sessions + 1):
            shrunk = compare(num_sessions, num_rounds)
            if shrunk is not None:
                got_a, got_b = shrunk
                pytest.fail(
                    f"{label_a} != {label_b}: minimal failing prefix is "
                    f"{num_sessions} session(s) x {num_rounds} round(s); "
                    f"first divergence at (round, session, presented): "
                    f"{label_a}={got_a} vs {label_b}={got_b}; scenario: "
                    f"{scenario.describe()}"
                )
    got_a, got_b = divergence  # pragma: no cover - shrink always refires
    pytest.fail(
        f"{label_a} != {label_b} at full budget but not under shrink "
        f"(nondeterminism?): {got_a} vs {got_b}; {scenario.describe()}"
    )


# ------------------------------------------------- carryover must be invisible
@pytest.mark.parametrize("trial_seed", range(0, 60))
def test_carryover_equivalence(trial_seed):
    """Carryover on == carryover off, bit-identical, across random trajectories.

    Both sides share the pool policy (refill off on even trials, on for odd
    ones) so the *only* difference is the candidate cache — the half of the
    fused path whose contract is exactness.
    """
    scenario = Scenario(trial_seed)
    refill = dict(partial_refill=bool(trial_seed % 2))
    assert_equivalent_trajectories(
        scenario,
        lambda: scenario.engine(search_carryover=True, **refill),
        lambda: scenario.engine(search_carryover=False, **refill),
        "carryover-on",
        "carryover-off",
    )


@pytest.mark.parametrize("trial_seed", range(60, 90))
def test_carryover_equivalence_batched(trial_seed):
    """recommend_many's across-session walk with carryover == serial without."""
    scenario = Scenario(trial_seed)
    with_carry = run_trajectory(
        scenario,
        scenario.engine(search_carryover=True),
        scenario.num_sessions,
        scenario.num_rounds,
        batched=True,
    )
    without = run_trajectory(
        scenario,
        scenario.engine(search_carryover=False),
        scenario.num_sessions,
        scenario.num_rounds,
    )
    assert first_divergence(with_carry, without) is None, scenario.describe()


# ------------------------------------------------ partial refill is determined
@pytest.mark.parametrize("trial_seed", range(90, 130))
def test_partial_refill_rerun_determinism(trial_seed):
    """The fused engine re-serves the same bytes from a fresh instance."""
    scenario = Scenario(trial_seed)
    assert_equivalent_trajectories(
        scenario,
        lambda: scenario.engine(partial_refill=True),
        lambda: scenario.engine(partial_refill=True),
        "fused-run-1",
        "fused-run-2",
    )


@pytest.mark.parametrize("trial_seed", range(130, 160))
def test_partial_refill_shard_invariance(trial_seed):
    """1-shard and 3-shard fused engines serve bit-identical rounds."""
    scenario = Scenario(trial_seed)
    assert_equivalent_trajectories(
        scenario,
        lambda: scenario.engine(partial_refill=True, pool_shards=1),
        lambda: scenario.engine(partial_refill=True, pool_shards=3),
        "1-shard",
        "3-shard",
    )


# --------------------------------------------- swap-out / replay / restart axes
@pytest.mark.parametrize("trial_seed", range(160, 185))
def test_fused_swap_out_replay_equivalence(trial_seed, tmp_path):
    """Fused engine under forced swap-out == never-swapped fused engine.

    ``max_active_sessions=1`` evicts every session on each acquire, so every
    round is served through an event-log checkpoint + replay restore — the
    partial-refill pools must round-trip through their content-addressed
    checkpoint references.
    """
    scenario = Scenario(trial_seed)
    store = EventLogStore(os.fspath(tmp_path / "log"))
    swapped = run_trajectory(
        scenario,
        scenario.engine(partial_refill=True, max_active_sessions=1, store=store),
        scenario.num_sessions,
        scenario.num_rounds,
    )
    reference = run_trajectory(
        scenario,
        scenario.engine(partial_refill=True),
        scenario.num_sessions,
        scenario.num_rounds,
    )
    assert first_divergence(swapped, reference) is None, scenario.describe()


@pytest.mark.parametrize("trial_seed", range(185, 200))
def test_fused_restart_replay_serves_identical_next_round(trial_seed, tmp_path):
    """A restarted engine replaying the log serves the same next round.

    The live engine runs with ``max_active_sessions=1`` so every session has
    a current checkpoint in the log — a partial-refill pool's content is
    history-dependent (reweighted survivors), so like §3.4-maintained pools
    it survives restarts through its checkpointed content-addressed
    reference, not by re-derivation (the PR 6 crash-recovery caveat).  The
    log directory is copied before the live engine serves its next round, so
    the restarted engine replays exactly the pre-restart history.
    """
    scenario = Scenario(trial_seed)
    live = scenario.engine(
        partial_refill=True,
        max_active_sessions=1,
        store=EventLogStore(os.fspath(tmp_path / "log")),
    )
    run_trajectory(scenario, live, scenario.num_sessions, scenario.num_rounds)
    sids = [f"sess-{i + 1:06d}" for i in range(scenario.num_sessions)]
    shutil.copytree(tmp_path / "log", tmp_path / "log-copy")
    restarted = scenario.engine(
        partial_refill=True,
        store=EventLogStore(os.fspath(tmp_path / "log-copy")),
    )
    for sid in sids:
        round_live = live.recommend(sid)
        round_restarted = restarted.recommend(sid)
        assert [list(p.items) for p in round_live.presented] == [
            list(p.items) for p in round_restarted.presented
        ], f"session {sid}: {scenario.describe()}"


# -------------------------------------------------------- counters / satellite
def test_pool_build_counters_sum_to_builds():
    """adapt + maintain + fill + partial always sum to pools_built."""
    scenario = Scenario(4242)
    for overrides in (
        {},
        {"partial_refill": True},
        {"partial_refill": True, "search_carryover": False},
        {"maintain_on_miss": False, "partial_refill": True},
        {"warm_start_first_clicks": 1},
    ):
        engine = scenario.engine(**overrides)
        run_trajectory(scenario, engine, 2, 3)
        stats = engine.stats()
        total = (
            stats.pools_sampled
            + stats.pools_maintained
            + stats.pools_adapted
            + stats.pools_partial_refilled
        )
        assert total == stats.pools_built, (overrides, stats.as_dict())
        assert stats.pools_built > 0, overrides


def test_pool_build_counters_sum_in_batched_path():
    scenario = Scenario(4243)
    engine = scenario.engine(partial_refill=True)
    run_trajectory(scenario, engine, 2, 3, batched=True)
    stats = engine.stats()
    assert (
        stats.pools_sampled
        + stats.pools_maintained
        + stats.pools_adapted
        + stats.pools_partial_refilled
        == stats.pools_built
    )
    assert stats.pools_partial_refilled > 0


def test_fused_engine_reports_incremental_counters():
    """The fused path actually runs: candidates carried, pools refilled."""
    scenario = Scenario(4244)
    engine = scenario.engine(partial_refill=True)
    run_trajectory(scenario, engine, 2, 3)
    stats = engine.stats()
    assert stats.candidates_carried > 0
    assert stats.pools_partial_refilled > 0
    assert stats.carryover["hits"] > 0
    assert stats.as_dict()["candidates_carried"] == stats.candidates_carried
    # Carryover disabled: counters stay zero and the dict stays empty.
    plain = scenario.engine(search_carryover=False)
    run_trajectory(scenario, plain, 2, 3)
    assert plain.stats().candidates_carried == 0
    assert plain.stats().carryover == {}


def test_partial_refill_requires_a_noise_model():
    with pytest.raises(ValueError, match="noise model"):
        EngineConfig(
            elicitation=ElicitationConfig(noise_psi=None), partial_refill=True
        )


def test_refill_knob_validation():
    with pytest.raises(ValueError, match="refill_min_ess_fraction"):
        EngineConfig(refill_min_ess_fraction=0.0)
    with pytest.raises(ValueError, match="refill_max_pool_multiple"):
        EngineConfig(refill_max_pool_multiple=0.5)
    with pytest.raises(ValueError, match="refill_psi"):
        EngineConfig(refill_psi=1.5)


def test_refill_psi_falls_back_to_elicitation_noise():
    config = EngineConfig(
        elicitation=ElicitationConfig(noise_psi=0.8), partial_refill=True
    )
    assert config.refill_noise_psi == 0.8
    override = EngineConfig(
        elicitation=ElicitationConfig(noise_psi=0.8),
        partial_refill=True,
        refill_psi=0.6,
    )
    assert override.refill_noise_psi == 0.6
