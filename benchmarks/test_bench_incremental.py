"""Benchmark: the incremental serving fast path (carryover + partial refill).

Not a paper figure — this measures the incremental tentpole along its
acceptance axes (see DESIGN.md "Incremental serving").  Two identically
seeded engines serve the same private-exploration click streams (every
post-click constraint set is a fresh fingerprint, so every post-click round
pays a pool miss):

* **fused** — the incremental fast path: candidate carryover seeds each
  post-click search from the pre-click frontier, and ESS-deficit partial
  refill reweights the stale pool under ψ and draws only the Kish-ESS
  deficit;
* **from-scratch** — carryover off, ``maintain_on_miss=False``: every
  post-click round re-samples its full pool and searches cold, the
  pre-incremental path the equivalence suite compares against.

The headline is the **post-click round serve latency** (`recommend` after
feedback): the deeper the session, the tighter its constraint set and the
more a from-scratch fill costs (shared rejection blocks degrade towards
per-set MCMC), while the refill path keeps paying only for what the click
invalidated.  The finer-grained attribution isolates the refill half: the
miss-path provisioning call alone (``recommender.sample_pool()``), refill
vs the §3.4 hard-maintenance default, on the smaller-pool workload where
maintenance is the binding baseline.

Carryover is latency-neutral on exact searches (the hint seeding costs
about what the tightened walk saves — its value is anytime-mode quality and
cross-round exactness, pinned in tests/test_topk_batch.py and
tests/test_incremental.py), so the fused per-round win is dominated by the
refill half; the carried search is asserted to have actually run
(``candidates_carried > 0``), not to have won on its own.

Headline metrics asserted and recorded for the CI gate
(``tools/bench_gate.py``):

* ``incremental_search_speedup`` — median from-scratch post-click round
  latency over median fused round latency, floor 2x;
* ``partial_refill_speedup`` — median maintained-miss provisioning latency
  over median refilled-miss latency, floor 1.2x.

The regenerated table lands in ``results/bench_incremental.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.experiments.harness import ExperimentScale, build_evaluator
from repro.service import EngineConfig, RecommendationEngine
from repro.simulation.traffic import build_user_population, session_seed_for

#: Acceptance floors (pinned in tools/bench_gate.py).
MIN_ROUND_SPEEDUP = 2.0
MIN_REFILL_SPEEDUP = 1.2

NUM_ITEMS = 500
NUM_FEATURES = 4
CLICK_NOISE_PSI = 0.9
REFILL_PSI = 0.85
REFILL_MIN_ESS_FRACTION = 0.5

# --- fused per-round workload: sampling-heavy pools, deep sessions ----------
ROUND_NUM_SESSIONS = 6
ROUND_NUM_ROUNDS = 5  # one cold round + four post-click miss rounds
ROUND_NUM_SAMPLES = 4_000

# --- provisioning-only workload: refill vs hard maintenance -----------------
MISS_NUM_SESSIONS = 8
MISS_NUM_ROUNDS = 4
MISS_NUM_SAMPLES = 1_000


def _engine(num_samples, **overrides) -> RecommendationEngine:
    scale = ExperimentScale(
        num_tuples=NUM_ITEMS, num_packages=500, num_samples=200,
        num_preferences=200, num_features=NUM_FEATURES, num_gaussians=1,
        max_package_size=4, seed=0,
    )
    evaluator = build_evaluator("UNI", scale, num_features=NUM_FEATURES)
    elicitation = ElicitationConfig(
        k=3,
        num_random=2,  # private exploration: every post-click key is fresh
        max_package_size=3,
        num_samples=num_samples,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=100,
        search_items_cap=40,
        seed=0,
    )
    config = EngineConfig(elicitation=elicitation, seed=1, **overrides)
    return RecommendationEngine(evaluator.catalog, evaluator.profile, config)


def _run_round_workload(engine, num_sessions, num_rounds):
    """Serve the click stream; return post-click round serve latencies."""
    users = build_user_population(
        engine.evaluator,
        num_sessions,
        identical_prefix=True,
        user_seed=0,
        noise_psi=CLICK_NOISE_PSI,
    )
    ids = [
        engine.create_session(
            seed=session_seed_for(0, index, identical_prefix=False)
        )
        for index in range(num_sessions)
    ]
    rounds = {sid: engine.recommend(sid) for sid in ids}
    latencies = []
    for _round in range(1, num_rounds):
        for index, sid in enumerate(ids):
            engine.feedback(sid, users[index].click(rounds[sid].presented))
            tick = time.perf_counter()
            rounds[sid] = engine.recommend(sid)
            latencies.append(time.perf_counter() - tick)
    return np.asarray(latencies), engine.stats()


def _run_miss_workload(engine, num_sessions, num_rounds):
    """Like the round workload, but timing only the miss provisioning call.

    The provisioning call is made explicitly after each click — it is
    exactly the work the subsequent ``recommend`` would trigger lazily,
    timed in isolation from the (identical) top-k search.
    """
    users = build_user_population(
        engine.evaluator,
        num_sessions,
        identical_prefix=True,
        user_seed=0,
        noise_psi=CLICK_NOISE_PSI,
    )
    ids = [
        engine.create_session(
            seed=session_seed_for(0, index, identical_prefix=False)
        )
        for index in range(num_sessions)
    ]
    rounds = {sid: engine.recommend(sid) for sid in ids}
    provisioning = []
    for _round in range(1, num_rounds):
        for index, sid in enumerate(ids):
            engine.feedback(sid, users[index].click(rounds[sid].presented))
            entry = engine.sessions.acquire(sid)
            tick = time.perf_counter()
            entry.recommender.sample_pool()  # the miss path under test
            provisioning.append(time.perf_counter() - tick)
            rounds[sid] = engine.recommend(sid)
    return np.asarray(provisioning), engine.stats()


@pytest.fixture(scope="module")
def incremental_report():
    from bench_utils import record_ci_metric, write_results

    # ----------------------------------------- fused vs from-scratch rounds
    fused_times, fused_stats = _run_round_workload(
        _engine(ROUND_NUM_SAMPLES, partial_refill=True, refill_psi=REFILL_PSI,
                refill_min_ess_fraction=REFILL_MIN_ESS_FRACTION),
        ROUND_NUM_SESSIONS, ROUND_NUM_ROUNDS,
    )
    scratch_times, scratch_stats = _run_round_workload(
        _engine(ROUND_NUM_SAMPLES, search_carryover=False,
                maintain_on_miss=False),
        ROUND_NUM_SESSIONS, ROUND_NUM_ROUNDS,
    )
    p50_fused = float(np.median(fused_times))
    p50_scratch = float(np.median(scratch_times))
    round_speedup = p50_scratch / p50_fused if p50_fused else 0.0

    # --------------------------------------- refilled vs maintained misses
    refilled_times, refilled_stats = _run_miss_workload(
        _engine(MISS_NUM_SAMPLES, partial_refill=True, refill_psi=REFILL_PSI,
                refill_min_ess_fraction=REFILL_MIN_ESS_FRACTION),
        MISS_NUM_SESSIONS, MISS_NUM_ROUNDS,
    )
    maintained_times, maintained_stats = _run_miss_workload(
        _engine(MISS_NUM_SAMPLES),
        MISS_NUM_SESSIONS, MISS_NUM_ROUNDS,
    )
    p50_refilled = float(np.median(refilled_times))
    p50_maintained = float(np.median(maintained_times))
    refill_speedup = p50_maintained / p50_refilled if p50_refilled else 0.0

    header = (
        "Incremental serving — cross-round carryover + ESS-deficit refill\n"
        f"post-click rounds {round_speedup:.1f}x faster via the fused path "
        f"(floor {MIN_ROUND_SPEEDUP}x); refilled miss provisioning "
        f"{refill_speedup:.1f}x faster than hard maintenance "
        f"(floor {MIN_REFILL_SPEEDUP}x)"
    )
    body = "\n".join(
        [
            "[post-click round serve latency (asserted)]",
            f"  {ROUND_NUM_SESSIONS} sessions x {ROUND_NUM_ROUNDS} rounds, "
            f"{ROUND_NUM_SAMPLES}-sample pools, private exploration "
            f"(every post-click round is a pool miss), psi={REFILL_PSI}",
            f"  fused:        p50={p50_fused * 1e3:.3f}ms "
            f"mean={fused_times.mean() * 1e3:.3f}ms over "
            f"{fused_times.size} rounds "
            f"({fused_stats.candidates_carried} candidates carried, "
            f"{fused_stats.pools_partial_refilled} pools refilled)",
            f"  from-scratch: p50={p50_scratch * 1e3:.3f}ms "
            f"mean={scratch_times.mean() * 1e3:.3f}ms "
            f"({scratch_stats.pools_sampled} pools resampled)",
            f"  p50 speedup: {round_speedup:.2f}x "
            f"(sum ratio {scratch_times.sum() / fused_times.sum():.2f}x, "
            f"informational)",
            "",
            "[miss-path provisioning latency (asserted)]",
            f"  {MISS_NUM_SESSIONS} sessions x {MISS_NUM_ROUNDS} rounds, "
            f"{MISS_NUM_SAMPLES}-sample pools, "
            f"ess_floor={REFILL_MIN_ESS_FRACTION}",
            f"  refilled:   p50={p50_refilled * 1e3:.3f}ms "
            f"mean={refilled_times.mean() * 1e3:.3f}ms over "
            f"{refilled_times.size} misses",
            f"  maintained: p50={p50_maintained * 1e3:.3f}ms "
            f"mean={maintained_times.mean() * 1e3:.3f}ms",
            f"  p50 speedup: {refill_speedup:.2f}x "
            f"(sum ratio "
            f"{maintained_times.sum() / refilled_times.sum():.2f}x, "
            f"informational)",
            "",
            "[build accounting]",
            f"  fused engine:      built={fused_stats.pools_built} "
            f"partial_refilled={fused_stats.pools_partial_refilled} "
            f"sampled={fused_stats.pools_sampled}",
            f"  refilled engine:   built={refilled_stats.pools_built} "
            f"partial_refilled={refilled_stats.pools_partial_refilled} "
            f"sampled={refilled_stats.pools_sampled}",
            f"  maintained engine: built={maintained_stats.pools_built} "
            f"maintained={maintained_stats.pools_maintained} "
            f"sampled={maintained_stats.pools_sampled}",
        ]
    )
    print("\n" + header + "\n\n" + body)
    write_results("bench_incremental.txt", header + "\n\n" + body)
    record_ci_metric(
        "incremental_search_speedup",
        round_speedup,
        MIN_ROUND_SPEEDUP,
        source="benchmarks/test_bench_incremental.py",
        description=(
            f"Median from-scratch post-click round serve latency over median "
            f"fused (carryover + ESS-deficit refill) round latency, "
            f"{ROUND_NUM_SESSIONS} private-exploration sessions x "
            f"{ROUND_NUM_ROUNDS} rounds, {ROUND_NUM_SAMPLES}-sample pools"
        ),
    )
    record_ci_metric(
        "partial_refill_speedup",
        refill_speedup,
        MIN_REFILL_SPEEDUP,
        source="benchmarks/test_bench_incremental.py",
        description=(
            f"Median hard-maintenance miss-provisioning latency over median "
            f"ESS-deficit refill latency, {MISS_NUM_SESSIONS} "
            f"private-exploration sessions x {MISS_NUM_ROUNDS} rounds, "
            f"{MISS_NUM_SAMPLES}-sample pools"
        ),
    )
    return {
        "round_speedup": round_speedup,
        "refill_speedup": refill_speedup,
        "fused_stats": fused_stats,
        "scratch_stats": scratch_stats,
        "refilled_stats": refilled_stats,
        "maintained_stats": maintained_stats,
        "fused_times": fused_times,
        "refilled_times": refilled_times,
        "maintained_times": maintained_times,
    }


def test_fused_rounds_beat_from_scratch_rounds(incremental_report):
    """The acceptance headline: >= 2x post-click rounds via the fused path."""
    assert incremental_report["round_speedup"] >= MIN_ROUND_SPEEDUP, (
        f"fused-round speedup {incremental_report['round_speedup']:.2f}x "
        f"below the {MIN_ROUND_SPEEDUP}x floor"
    )


def test_refilled_misses_beat_maintained_misses(incremental_report):
    assert incremental_report["refill_speedup"] >= MIN_REFILL_SPEEDUP, (
        f"partial-refill speedup {incremental_report['refill_speedup']:.2f}x "
        f"below the {MIN_REFILL_SPEEDUP}x floor"
    )


def test_every_miss_took_the_path_under_test(incremental_report):
    fused = incremental_report["fused_stats"]
    scratch = incremental_report["scratch_stats"]
    # Every post-click round was a genuine miss in both engines, and each
    # engine provisioned it through the path under test.
    post_click = incremental_report["fused_times"].size
    assert fused.pools_partial_refilled >= post_click
    assert fused.candidates_carried > 0
    assert scratch.pools_sampled >= post_click
    assert scratch.candidates_carried == 0

    refilled = incremental_report["refilled_stats"]
    maintained = incremental_report["maintained_stats"]
    assert refilled.pools_partial_refilled >= (
        incremental_report["refilled_times"].size
    )
    assert maintained.pools_maintained >= (
        incremental_report["maintained_times"].size
    )


def test_build_counters_sum_to_builds(incremental_report):
    for stats in (
        incremental_report["fused_stats"],
        incremental_report["refilled_stats"],
        incremental_report["maintained_stats"],
        incremental_report["scratch_stats"],
    ):
        assert stats.pools_built == (
            stats.pools_sampled
            + stats.pools_maintained
            + stats.pools_adapted
            + stats.pools_partial_refilled
        )
