"""End-to-end integration tests across subsystems."""

import numpy as np

from repro import (
    AggregateProfile,
    ElicitationConfig,
    ItemCatalog,
    PackageRecommender,
    SimulatedUser,
    TopKPackageSearcher,
    brute_force_top_k_packages,
    generate_nba_dataset,
    load_benchmark_dataset,
)
from repro.core.packages import PackageEvaluator
from repro.core.ranking import rank_from_samples
from repro.sampling.base import ConstraintSet
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.simulation.session import ElicitationSession


class TestPublicApiSurface:
    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"


class TestFullPipelineOnSyntheticData:
    def test_sample_search_rank_pipeline(self):
        """Constrained sampling -> per-sample Top-k-Pkg -> EXP aggregation."""
        data = load_benchmark_dataset("UNI", num_tuples=300, num_features=4, rng=0)
        catalog = ItemCatalog(data)
        profile = AggregateProfile(["sum", "avg", "max", "min"])
        evaluator = PackageEvaluator(catalog, profile, max_package_size=4)

        hidden = np.array([0.6, 0.4, -0.3, 0.2])
        packages = evaluator.random_packages(100, rng=1)
        vectors = evaluator.vectors(packages)
        # Simulate consistent feedback from the hidden utility.
        directions = []
        rng = np.random.default_rng(2)
        for _ in range(15):
            i, j = rng.choice(len(packages), 2, replace=False)
            diff = vectors[i] - vectors[j]
            directions.append(diff if diff @ hidden >= 0 else -diff)
        constraints = ConstraintSet(np.stack(directions))

        prior = GaussianMixture.default_prior(4, rng=0)
        pool = MetropolisHastingsSampler(prior, rng=3).sample(60, constraints)
        assert np.all(constraints.valid_mask(pool.samples))

        searcher = TopKPackageSearcher(evaluator)
        results = [searcher.search(pool.samples[i], 3) for i in range(20)]
        final = rank_from_samples(results, 3, "exp", sample_weights=pool.weights[:20])
        assert len(final) == 3

        # The aggregated recommendation should score well under the hidden
        # utility relative to random packages.
        recommended_value = np.mean([evaluator.utility(p, hidden) for p in final])
        random_value = np.mean([evaluator.utility(p, hidden) for p in packages])
        assert recommended_value > random_value

    def test_recommender_on_nba_data_end_to_end(self):
        data = generate_nba_dataset(150, 5, rng=0)
        catalog = ItemCatalog(data)
        profile = AggregateProfile(["sum", "avg", "max", "avg", "min"])
        config = ElicitationConfig(
            k=3, num_random=3, max_package_size=3, num_samples=40,
            sampler="mcmc", seed=4,
        )
        recommender = PackageRecommender(catalog, profile, config)
        user = SimulatedUser.random(recommender.evaluator, rng=5)
        session = ElicitationSession(recommender, user, max_rounds=6)
        result = session.run(compute_regret=True)
        assert result.rounds_run <= 6
        assert recommender.num_feedback_preferences > 0
        assert result.final_regret is not None

    def test_search_consistency_with_bruteforce_after_elicitation(self):
        """The recommender's per-sample searches stay exact mid-elicitation."""
        rng = np.random.default_rng(6)
        catalog = ItemCatalog(rng.random((12, 3)))
        profile = AggregateProfile(["sum", "avg", "max"])
        config = ElicitationConfig(
            k=2, num_random=2, max_package_size=3, num_samples=25,
            sampler="rejection", seed=6,
        )
        recommender = PackageRecommender(catalog, profile, config)
        round_ = recommender.recommend()
        recommender.feedback(round_.presented[0])
        pool = recommender.sample_pool()
        for i in range(min(5, pool.size)):
            weights = pool.samples[i]
            searched = recommender.searcher.search(weights, 2)
            brute = brute_force_top_k_packages(recommender.evaluator, weights, 2)
            assert np.allclose(searched.utilities, [u for _, u in brute], atol=1e-9)
