"""Tests for the three constrained samplers: rejection, importance, MCMC."""

import numpy as np
import pytest

from repro.sampling.base import ConstraintSet
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.importance import (
    ImportanceSampler,
    ImportanceSamplingIntractableError,
)
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.sampling.rejection import RejectionSampler, RejectionSamplingError


@pytest.fixture
def half_plane_constraints() -> ConstraintSet:
    """Two 2-D constraints: w1 + w2 >= 0 and w1 >= 0."""
    return ConstraintSet(np.array([[1.0, 1.0], [1.0, 0.0]]))


class TestRejectionSampler:
    def test_samples_satisfy_constraints(self, two_dim_prior, half_plane_constraints):
        sampler = RejectionSampler(two_dim_prior, rng=0)
        pool = sampler.sample(200, half_plane_constraints)
        assert pool.size == 200
        assert np.all(half_plane_constraints.valid_mask(pool.samples))
        assert np.allclose(pool.weights, 1.0)

    def test_stats_track_attempts(self, two_dim_prior, half_plane_constraints):
        pool = RejectionSampler(two_dim_prior, rng=0).sample(100, half_plane_constraints)
        assert pool.stats["attempts"] >= 100
        assert 0.0 < pool.stats["acceptance_rate"] <= 1.0

    def test_no_constraints_accepts_all(self, two_dim_prior):
        pool = RejectionSampler(two_dim_prior, rng=0).sample(50, ConstraintSet.empty(2))
        assert pool.stats["acceptance_rate"] == pytest.approx(1.0)

    def test_exhausts_attempts_on_infeasible_region(self, two_dim_prior):
        sampler = RejectionSampler(two_dim_prior, rng=0, max_attempts=2_000)
        with pytest.raises(RejectionSamplingError):
            # Requires w1 == 0 exactly; measure-zero region.
            sampler.sample(10, ConstraintSet(np.array([[1.0, 0.0], [-1.0, 1e-6]])))

    def test_dimension_mismatch_rejected(self, two_dim_prior):
        with pytest.raises(ValueError):
            RejectionSampler(two_dim_prior).sample(5, ConstraintSet.empty(3))

    def test_invalid_parameters(self, two_dim_prior):
        with pytest.raises(ValueError):
            RejectionSampler(two_dim_prior, batch_size=0)
        with pytest.raises(ValueError):
            RejectionSampler(two_dim_prior, max_attempts=0)
        with pytest.raises(ValueError):
            RejectionSampler(two_dim_prior).sample(-1, ConstraintSet.empty(2))

    def test_noise_model_accepts_some_violators(self, two_dim_prior):
        constraints = ConstraintSet(np.array([[1.0, 0.0]]))
        noisy = RejectionSampler(two_dim_prior, rng=0, noise_probability=0.5)
        pool = noisy.sample(300, constraints)
        # With psi = 0.5, a sample violating one constraint is kept half the time.
        violating = (~constraints.valid_mask(pool.samples)).sum()
        assert violating > 0

    def test_sample_one_valid(self, two_dim_prior, half_plane_constraints):
        sample = RejectionSampler(two_dim_prior, rng=0).sample_one_valid(half_plane_constraints)
        assert half_plane_constraints.is_valid(sample)


class TestImportanceSampler:
    def test_samples_satisfy_constraints(self, two_dim_prior, half_plane_constraints):
        sampler = ImportanceSampler(two_dim_prior, rng=0)
        pool = sampler.sample(200, half_plane_constraints)
        assert pool.size == 200
        assert np.all(half_plane_constraints.valid_mask(pool.samples))

    def test_importance_weights_are_prior_over_proposal(self, two_dim_prior, half_plane_constraints):
        sampler = ImportanceSampler(two_dim_prior, rng=0)
        proposal = sampler.build_proposal(half_plane_constraints)
        pool = sampler.sample(50, half_plane_constraints)
        expected = two_dim_prior.pdf(pool.samples) / proposal.pdf(pool.samples)
        assert np.allclose(pool.weights, expected, rtol=1e-6)

    def test_higher_acceptance_than_rejection(self, two_dim_prior):
        """Feedback-aware proposal wastes fewer samples (Theorem 1's practical face)."""
        # A tight corner of weight space: w1 >= 0.3 and w2 >= 0.3.
        tight = ConstraintSet(np.array([[1.0, 0.0], [0.0, 1.0],
                                        [1.0, -0.15], [-0.15, 1.0]]))
        rejection_pool = RejectionSampler(two_dim_prior, rng=0).sample(150, tight)
        importance_pool = ImportanceSampler(two_dim_prior, rng=0).sample(150, tight)
        assert (
            importance_pool.stats["acceptance_rate"]
            > rejection_pool.stats["acceptance_rate"]
        )

    def test_approximate_center_lies_in_valid_region(self, two_dim_prior, half_plane_constraints):
        sampler = ImportanceSampler(two_dim_prior, rng=0, cells_per_dim=8)
        center = sampler.approximate_center(half_plane_constraints)
        # The centre approximation should satisfy the constraints comfortably.
        assert half_plane_constraints.is_valid(center)

    def test_dimensionality_cutoff_raises(self):
        prior = GaussianMixture.default_prior(6, rng=0)
        sampler = ImportanceSampler(prior, rng=0, max_features_for_grid=5)
        with pytest.raises(ImportanceSamplingIntractableError):
            sampler.sample(10, ConstraintSet.empty(6))

    def test_invalid_parameters(self, two_dim_prior):
        with pytest.raises(ValueError):
            ImportanceSampler(two_dim_prior, cells_per_dim=0)
        with pytest.raises(ValueError):
            ImportanceSampler(two_dim_prior, proposal_std=0.0)
        with pytest.raises(ValueError):
            ImportanceSampler(two_dim_prior, max_features_for_grid=0)


class TestMetropolisHastingsSampler:
    def test_samples_satisfy_constraints(self, two_dim_prior, half_plane_constraints):
        sampler = MetropolisHastingsSampler(two_dim_prior, rng=0)
        pool = sampler.sample(300, half_plane_constraints)
        assert pool.size == 300
        assert np.all(half_plane_constraints.valid_mask(pool.samples))
        assert np.allclose(pool.weights, 1.0)

    def test_zero_samples(self, two_dim_prior, half_plane_constraints):
        pool = MetropolisHastingsSampler(two_dim_prior, rng=0).sample(0, half_plane_constraints)
        assert pool.size == 0

    def test_chain_explores_the_region(self, two_dim_prior, half_plane_constraints):
        pool = MetropolisHastingsSampler(two_dim_prior, rng=0, step_length=0.4).sample(
            500, half_plane_constraints
        )
        # The chain should not collapse onto a single point.
        assert pool.samples.std(axis=0).min() > 0.05

    def test_distribution_roughly_matches_rejection(self, two_dim_prior):
        """Both samplers target the same truncated prior, so moments should agree."""
        constraints = ConstraintSet(np.array([[1.0, 0.0]]))
        mcmc = MetropolisHastingsSampler(two_dim_prior, rng=1, step_length=0.5).sample(
            4000, constraints
        )
        rejection = RejectionSampler(two_dim_prior, rng=2).sample(4000, constraints)
        assert np.allclose(
            mcmc.samples.mean(axis=0), rejection.samples.mean(axis=0), atol=0.08
        )

    def test_respects_supplied_initial_state(self, two_dim_prior, half_plane_constraints):
        start = np.array([0.5, 0.5])
        sampler = MetropolisHastingsSampler(
            two_dim_prior, rng=0, initial_state=start, burn_in=0, thinning=1
        )
        pool = sampler.sample(5, half_plane_constraints)
        assert pool.size == 5

    def test_invalid_initial_state_rejected(self, two_dim_prior, half_plane_constraints):
        sampler = MetropolisHastingsSampler(
            two_dim_prior, initial_state=np.array([-0.9, -0.9])
        )
        with pytest.raises(ValueError):
            sampler.sample(5, half_plane_constraints)

    def test_invalid_parameters(self, two_dim_prior):
        with pytest.raises(ValueError):
            MetropolisHastingsSampler(two_dim_prior, step_length=0.0)
        with pytest.raises(ValueError):
            MetropolisHastingsSampler(two_dim_prior, thinning=0)
        with pytest.raises(ValueError):
            MetropolisHastingsSampler(two_dim_prior, burn_in=-1)
        with pytest.raises(ValueError):
            MetropolisHastingsSampler(two_dim_prior, initial_state=np.zeros(3))

    def test_stats_reported(self, two_dim_prior, half_plane_constraints):
        pool = MetropolisHastingsSampler(two_dim_prior, rng=0).sample(50, half_plane_constraints)
        assert pool.stats["sampler"] == "MS"
        assert pool.stats["chain_steps"] > 0


class TestMcmcSeedFallback:
    def test_chain_seeds_via_interior_point_when_rejection_fails(self):
        """A tiny-prior-mass cone (many constraints, 10 features) must still
        be sampleable: the chain falls back to the Chebyshev interior point
        when rejection seeding exhausts its budget."""
        rng = np.random.default_rng(3)
        hidden = rng.uniform(-1, 1, 10)
        hidden /= np.linalg.norm(hidden)
        directions = rng.normal(size=(80, 10))
        directions[directions @ hidden < 0] *= -1
        constraints = ConstraintSet(directions)
        prior = GaussianMixture.default_prior(10, rng=0)
        sampler = MetropolisHastingsSampler(prior, rng=1)
        pool = sampler.sample(30, constraints)
        assert pool.size == 30
        assert constraints.valid_mask(pool.samples).all()


class TestMcmcDegenerateCone:
    def test_empty_interior_cone_seeds_at_the_origin(self):
        """Feedback on near-identical packages can collapse the valid region
        to an empty-interior wedge (here: a hyperplane, the extreme case).
        The chain must still serve a valid pool — seeded at the cone's apex —
        rather than failing the request."""
        direction = np.array([[0.5, -0.2, 0.1]])
        constraints = ConstraintSet(np.vstack([direction, -direction]))
        assert constraints.interior_point() is None
        prior = GaussianMixture.default_prior(3, rng=0)
        sampler = MetropolisHastingsSampler(prior, rng=1)
        pool = sampler.sample(20, constraints)
        assert pool.size == 20
        assert constraints.valid_mask(pool.samples).all()
