"""Classical threshold algorithm (TA) for top-k *items* under a linear score.

The paper treats top-k item query processing as a known substrate (citing the
survey of Ilyas, Beskales & Soliman) and adapts its ideas both for the package
search (§4) and for sample maintenance (§3.4).  This module provides that
substrate: given an item catalog and a weight vector, find the k items with the
highest linear score while accessing as few items as possible through the
per-feature sorted lists.

TA is the simplest instance of the upper/lower-bound scheme that §4 later
lifts to package space, and seeing it here makes the package version easy to
follow:

* items are read from :class:`~repro.topk.sorted_lists.SortedItemLists` in
  round-robin desirability order, and every accessed item's exact score is a
  *lower-bound* candidate — the running k-th best score plays the role of
  ``η_lo``;
* the *threshold* is the score ``w · τ`` of the boundary vector τ: since
  every unaccessed item is feature-wise dominated by τ, no unaccessed item
  can score above it — the role of ``η_up``;
* the scan stops as soon as the k-th best accessed score reaches the
  threshold, typically after touching a small prefix of each list.

The package search (`repro.topk.package_search`) keeps this skeleton but must
work much harder for its upper bound: a *package* mixes accessed and
unaccessed items, so ``upper-exp`` pads partially-built candidates with
copies of the τ item instead of comparing single scores — and the lower bound
ranges over candidate packages discovered by expansion rather than over rows
of the catalog.

:func:`scan_top_k_items` is the brute-force oracle used by the tests, and
:func:`top_k_items` the early-terminating TA; both break score ties by item
index so results are deterministic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.items import ItemCatalog
from repro.topk.sorted_lists import SortedItemLists
from repro.utils.validation import require_vector


def top_k_items(
    catalog: ItemCatalog,
    weights: np.ndarray,
    k: int,
    return_stats: bool = False,
):
    """Top-k items by linear score ``w · t`` using the threshold algorithm.

    Parameters
    ----------
    catalog:
        The item catalog.
    weights:
        Linear scoring weights (positive = larger is better).
    k:
        Number of items to return.
    return_stats:
        When ``True``, also return a dict with the number of items accessed,
        so callers can verify TA terminates early.

    Returns
    -------
    list of (item_index, score)
        The top-k items in non-increasing score order (ties broken by item
        index), and optionally the stats dict.
    """
    weights = require_vector(weights, "weights", length=catalog.num_features)
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    k = min(k, catalog.num_items)

    lists = SortedItemLists(catalog, weights)
    filled = catalog.filled(0.0)
    best: List[Tuple[float, int]] = []  # (score, item_index)

    if not lists.active_features:
        # All weights are zero: every item scores 0; return the first k by id.
        result = [(i, 0.0) for i in range(k)]
        return (result, {"items_accessed": 0}) if return_stats else result

    while True:
        item_index = lists.next_item()
        if item_index is None:
            break
        score = float(filled[item_index] @ weights)
        best.append((score, item_index))
        best.sort(key=lambda pair: (-pair[0], pair[1]))
        best = best[:k]
        # Threshold: the best score any unaccessed item can achieve.
        tau = lists.boundary_vector()
        threshold = float(tau @ weights)
        if len(best) == k and best[-1][0] >= threshold:
            break

    result = [(item_index, score) for score, item_index in best]
    if return_stats:
        return result, {"items_accessed": lists.num_accessed}
    return result


def scan_top_k_items(
    catalog: ItemCatalog, weights: np.ndarray, k: int
) -> List[Tuple[int, float]]:
    """Exact top-k items by full scan (vectorised); the correctness oracle for TA."""
    weights = require_vector(weights, "weights", length=catalog.num_features)
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    k = min(k, catalog.num_items)
    scores = catalog.filled(0.0) @ weights
    order = np.lexsort((np.arange(scores.shape[0]), -scores))[:k]
    return [(int(i), float(scores[i])) for i in order]
