"""Dataset catalog: a single entry point for every workload in the paper.

Figure 6 runs over five datasets named UNI, PWR, COR, ANT and NBA.  The
experiment harness and the examples refer to them by name through
:func:`load_benchmark_dataset`, which takes care of the scaled-down sizes
used in quick/laptop runs vs. the paper's full-scale sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.generators import generate_dataset
from repro.data.nba import NBA_NUM_PLAYERS, generate_nba_dataset
from repro.utils.rng import RngLike

#: Dataset names used throughout the paper's Figure 6.
BENCHMARK_DATASETS: Tuple[str, ...] = ("UNI", "PWR", "COR", "ANT", "NBA")


def load_benchmark_dataset(
    name: str,
    num_tuples: Optional[int] = None,
    num_features: int = 10,
    rng: RngLike = None,
) -> np.ndarray:
    """Load one of the paper's five benchmark datasets by name.

    Parameters
    ----------
    name:
        ``"UNI"``, ``"PWR"``, ``"COR"``, ``"ANT"`` or ``"NBA"`` (case-insensitive).
    num_tuples:
        Number of items.  Defaults to the paper's sizes (100,000 for the
        synthetic datasets, 3705 for NBA); pass a smaller value for quick runs.
    num_features:
        Number of features (the paper uses 10 everywhere).
    rng:
        Seed or generator for reproducibility.
    """
    key = name.upper()
    if key == "NBA":
        players = num_tuples if num_tuples is not None else NBA_NUM_PLAYERS
        return generate_nba_dataset(players, num_features, rng)
    if key in ("UNI", "PWR", "COR", "ANT"):
        tuples = num_tuples if num_tuples is not None else 100_000
        return generate_dataset(key, tuples, num_features, rng)
    raise ValueError(
        f"unknown dataset {name!r}; expected one of {BENCHMARK_DATASETS}"
    )


@dataclass
class DatasetCatalog:
    """A memoising catalog of benchmark datasets for an experiment run.

    The experiment harness repeatedly needs the same dataset at the same size;
    the catalog generates each combination once per instance and caches it.
    """

    num_tuples: Optional[int] = None
    num_features: int = 10
    seed: Optional[int] = 0
    _cache: Dict[Tuple[str, Optional[int], int], np.ndarray] = field(
        default_factory=dict, repr=False
    )

    def get(
        self,
        name: str,
        num_tuples: Optional[int] = None,
        num_features: Optional[int] = None,
    ) -> np.ndarray:
        """Return (and cache) the dataset ``name`` at the requested size."""
        tuples = num_tuples if num_tuples is not None else self.num_tuples
        features = num_features if num_features is not None else self.num_features
        key = (name.upper(), tuples, features)
        if key not in self._cache:
            self._cache[key] = load_benchmark_dataset(
                name, tuples, features, rng=self.seed
            )
        return self._cache[key]

    def names(self) -> Tuple[str, ...]:
        """Names of all benchmark datasets available from the catalog."""
        return BENCHMARK_DATASETS
