"""Approximate pool reuse: adapt a *near-miss* donor pool instead of sampling.

The pool repository shares pools only on **exact** constraint-set fingerprint
matches.  Under heterogeneous traffic that makes the repository miss the
dominant cold-path cost: two sessions whose feedback histories differ by one
click have different fingerprints, and the second one resamples a full pool
from scratch even though the two posteriors are nearly identical.  With the
§7 noise model in force, that resample is unnecessary — a pool sampled for a
*similar* constraint set is a statistically valid proposal distribution for
the target set and can be importance-reweighted instead
(:mod:`repro.sampling.reweight`).  This module is the serving-layer subsystem
that performs the trade:

* :class:`ConstraintSimilarityIndex` — fingerprints are one-way hashes, so
  the index keeps the inverse mapping the engine registers as it derives pool
  keys: ``key → (canonical constraint rows, pool size)``.  Candidate donors
  for a target set are ranked structurally: *prefix* donors (every donor row
  is a target row — a superset-support proposal, the ideal case) first, then
  one-click-apart / high-overlap sets by how few rows they miss.
* :class:`PoolAdapter` — on a repository miss, looks up live donor keys,
  reweights each candidate's pool with the noise-model likelihood ratio
  (weight ``∝ (1 − ψ)^x`` for ``x`` violated target preferences), measures
  the Kish effective sample size of the result, and serves the best adapted
  pool only when its ESS clears the configured floor — otherwise the caller
  falls back to a fresh key-deterministic fill.
* :class:`AdaptationConfig` / :class:`AdaptationStats` — tuning knobs and
  the reuse-rate accounting the CI bench gate pins.

Adapted pools are **clearly marked** (``stats["sampler"] == "adapted"``, the
donor key and measured ESS recorded alongside) and — because the snapshot
pool table is content-addressed — carry a distinct content digest, so they
are never silently mistaken for the key-deterministic fresh build of their
key (the PR 4 restore invariant).  Like maintained pools, they are
history-dependent: a reference snapshot that can no longer resolve one
re-fills fresh, the documented miss path.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.sampling.base import ConstraintSet, SamplePool
from repro.sampling.reweight import (
    importance_reweight,
    pool_effective_sample_size,
    residual_resample,
)

__all__ = [
    "AdaptationConfig",
    "AdaptationStats",
    "ConstraintSimilarityIndex",
    "DonorCandidate",
    "PoolAdapter",
]

#: Canonical constraint rows: rounded direction tuples, the same normal form
#: :meth:`ConstraintSet.fingerprint` hashes (order-free, −0.0 folded to +0.0).
ConstraintRows = FrozenSet[Tuple[float, ...]]


@dataclass(frozen=True)
class AdaptationConfig:
    """Tuning of the approximate pool-reuse subsystem.

    Attributes
    ----------
    psi:
        The §7 noise-model correctness probability used for reweighting.
        Lower ψ keeps more weight on samples that violate target preferences
        (feedback is less trusted); ψ = 1 reduces reweighting to hard
        survival.  This is the *serving-side* belief about feedback noise and
        may deliberately differ from the elicitation config's ``noise_psi``.
    min_ess_fraction:
        ESS floor as a fraction of the requested pool size: an adapted pool
        is served only when its Kish effective sample size is at least
        ``min_ess_fraction × count``; below it the caller samples fresh.
    max_donors:
        How many of the structurally nearest donor candidates are reweighted
        and ESS-scored per miss (each costs one ``(N, m) @ (m, c)`` pass).
    resample:
        Residual-resample the adapted pool back to ``count`` uniform-weight
        samples before serving (deterministic, seeded per pool key).  Off by
        default: the serving stack scores weighted pools end to end, and
        keeping the raw weights preserves the full ESS information.
    max_chain_depth:
        Adapted pools are stored under their keys and can later donate
        again.  Composed weights keep the accumulated imbalance visible to
        the ESS gate, but a resampled adapted pool flattens its history and
        every hop narrows support in ways no weight profile can show — so
        donors that are themselves ``max_chain_depth`` adaptations deep are
        refused and the miss falls back to maintenance / a fresh fill.
    index_capacity:
        Bound on the similarity index: registrations beyond it evict the
        least recently touched key (a long-lived engine sees unboundedly
        many distinct constraint sets, while useful donors are only ever
        live repository keys — a bounded recency window covers them).
    """

    psi: float = 0.9
    min_ess_fraction: float = 0.25
    max_donors: int = 4
    resample: bool = False
    max_chain_depth: int = 2
    index_capacity: int = 4_096

    def __post_init__(self) -> None:
        if not 0.0 <= self.psi <= 1.0:
            raise ValueError(f"psi must be in [0, 1], got {self.psi}")
        if not 0.0 < self.min_ess_fraction <= 1.0:
            raise ValueError(
                f"min_ess_fraction must be in (0, 1], got {self.min_ess_fraction}"
            )
        if self.max_donors <= 0:
            raise ValueError(f"max_donors must be > 0, got {self.max_donors}")
        if self.max_chain_depth <= 0:
            raise ValueError(
                f"max_chain_depth must be > 0, got {self.max_chain_depth}"
            )
        if self.index_capacity <= 0:
            raise ValueError(
                f"index_capacity must be > 0, got {self.index_capacity}"
            )


@dataclass(frozen=True)
class DonorCandidate:
    """One donor pool ranked against a target constraint set.

    ``missing`` counts target rows the donor never saw — the reweighting
    factors absorb those.  ``extra`` counts donor rows absent from the target
    — those *restricted the donor's support*, which no reweighting can undo,
    so they dominate the ranking.  ``shared`` rows are common to both.
    """

    key: str
    shared: int
    missing: int
    extra: int

    @property
    def rank_key(self) -> Tuple[int, int, int]:
        """Sort key: fewest support-restricting rows first, then fewest missing."""
        return (self.extra, self.missing, -self.shared)

    @property
    def is_prefix(self) -> bool:
        """Whether the donor's constraints are a subset of the target's."""
        return self.extra == 0


class ConstraintSimilarityIndex:
    """Inverse mapping from live pool keys back to constraint structure.

    :meth:`ConstraintSet.fingerprint` is a one-way hash, so similarity between
    pool keys cannot be computed from the keys alone.  The engine registers
    every ``(key, constraints, count)`` triple it derives (pool provider,
    batched prefetch, warm start — they all funnel through one key helper),
    and the index stores the *canonical rows* of each set: direction tuples
    rounded exactly as the fingerprint rounds them, so two registrations that
    would collide to one fingerprint also collide to one row set here.

    Entries are tiny (one frozenset of tuples per distinct key) but a
    long-lived engine derives unboundedly many distinct keys, so the index
    is a bounded recency window: registrations beyond ``capacity`` evict the
    least recently touched key.  Useful donors are live repository keys —
    themselves LRU-bounded — so a capacity a few multiples of the pool
    budget loses nothing.  Lookups intersect row sets, which at
    serving-layer constraint counts (tens of rows) is negligible next to
    one pool fill.
    """

    def __init__(self, precision: int = 10, capacity: int = 4_096) -> None:
        if precision <= 0:
            raise ValueError(f"precision must be > 0, got {precision}")
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.precision = precision
        self.capacity = capacity
        self._entries: "OrderedDict[str, Tuple[ConstraintRows, int, int]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------ registration
    def rows_of(self, constraints: ConstraintSet) -> ConstraintRows:
        """The canonical (rounded, sign-normalised) row set of a constraint set."""
        rounded = np.round(constraints.directions, self.precision)
        rounded += 0.0  # fold -0.0 to +0.0, mirroring fingerprint()
        return frozenset(tuple(row) for row in rounded.tolist())

    def register(
        self, key: str, constraints: ConstraintSet, count: int
    ) -> None:
        """Remember the constraint structure behind ``key`` (idempotent).

        Re-registering refreshes the key's recency; beyond ``capacity`` the
        least recently touched registration is dropped.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = (
            self.rows_of(constraints),
            constraints.num_features,
            int(count),
        )
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def forget(self, key: str) -> bool:
        """Drop a registration; returns whether one existed."""
        return self._entries.pop(key, None) is not None

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ----------------------------------------------------------------- lookup
    def candidates(
        self,
        constraints: ConstraintSet,
        count: int,
        live_keys: Iterable[str],
        max_candidates: int,
    ) -> List[DonorCandidate]:
        """The nearest registered donors among ``live_keys``, best first.

        Candidates must match the target's pool size and dimensionality.  A
        donor is admitted only while its shared rows are at least its extra
        (support-restricting) rows — a donor mostly constrained by directions
        the target never asserted is a biased proposal no ESS check can see,
        because support holes do not show up in realised weights.  The empty
        target set is the one exception: it is served by warm pools, and any
        restricted donor would be strictly biased, so no donors are offered.
        """
        if max_candidates <= 0:
            return []
        target_rows = self.rows_of(constraints)
        if not target_rows:
            return []
        scored: List[DonorCandidate] = []
        for key in live_keys:
            entry = self._entries.get(key)
            if entry is None:
                continue
            donor_rows, num_features, donor_count = entry
            if num_features != constraints.num_features or donor_count != count:
                continue
            shared = len(donor_rows & target_rows)
            extra = len(donor_rows) - shared
            if extra > shared:
                continue
            scored.append(
                DonorCandidate(
                    key=key,
                    shared=shared,
                    missing=len(target_rows) - shared,
                    extra=extra,
                )
            )
        scored.sort(key=lambda cand: cand.rank_key)
        return scored[:max_candidates]


@dataclass
class AdaptationStats:
    """Counters describing how repository misses were (not) adapted."""

    attempts: int = 0
    adapted: int = 0
    no_donor: int = 0
    low_ess: int = 0
    chain_capped: int = 0
    prefix_donors: int = 0
    resampled: int = 0
    ess_served_sum: float = 0.0
    samples_reused: int = 0

    @property
    def reuse_rate(self) -> float:
        """Fraction of adaptation attempts that served an adapted pool."""
        if not self.attempts:
            return 0.0
        return self.adapted / self.attempts

    @property
    def mean_served_ess(self) -> float:
        """Mean effective sample size of the adapted pools actually served."""
        if not self.adapted:
            return 0.0
        return self.ess_served_sum / self.adapted

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "adapted": self.adapted,
            "no_donor": self.no_donor,
            "low_ess": self.low_ess,
            "chain_capped": self.chain_capped,
            "prefix_donors": self.prefix_donors,
            "resampled": self.resampled,
            "samples_reused": self.samples_reused,
            "reuse_rate": round(self.reuse_rate, 4),
            "mean_served_ess": round(self.mean_served_ess, 2),
        }


class PoolAdapter:
    """Serve repository misses from reweighted near-miss donor pools.

    Parameters
    ----------
    repository:
        The live pool repository donors are peeked from (never mutated here —
        the engine decides what to store).
    index:
        The similarity index the engine registers pool keys into.
    config:
        Reweighting / gating parameters.
    seed_root:
        Root of the deterministic residual-resampling streams (the engine
        passes its fill-seed root, so resampling — like repository fills —
        depends only on the pool key).
    telemetry:
        Optional :class:`~repro.obs.Telemetry` facade; when set, ESS-gate
        rejections fire an ``adaptation_ess_rejected`` alarm (counter plus
        structured trace event).
    """

    def __init__(
        self,
        repository,
        index: ConstraintSimilarityIndex,
        config: Optional[AdaptationConfig] = None,
        seed_root: int = 0,
        telemetry=None,
    ) -> None:
        self.repository = repository
        self.index = index
        self.config = config if config is not None else AdaptationConfig()
        self.seed_root = int(seed_root)
        self.stats = AdaptationStats()
        self.telemetry = telemetry

    # ------------------------------------------------------------------ core
    def adapt(
        self, key: str, constraints: ConstraintSet, count: int
    ) -> Optional[SamplePool]:
        """An adapted pool for ``(constraints, count)``, or ``None`` to fill fresh.

        Reweights up to ``config.max_donors`` of the structurally nearest
        live donor pools and serves the one with the highest effective sample
        size, provided it clears ``min_ess_fraction × count``.  The returned
        pool is a new object (donor pools stay untouched in the repository),
        marked ``stats["sampler"] = "adapted"`` with its donor key and ESS.
        """
        config = self.config
        self.stats.attempts += 1
        keys = getattr(self.repository, "keys", None)
        live_keys = [k for k in (keys() if keys is not None else []) if k != key]
        candidates = self.index.candidates(
            constraints, count, live_keys, config.max_donors
        )
        best: Optional[SamplePool] = None
        best_ess = -1.0
        best_candidate: Optional[DonorCandidate] = None
        best_depth = 0
        chain_capped = False
        for candidate in candidates:
            donor = self.repository.peek(candidate.key)
            if donor is None or donor.size == 0:
                continue
            # Adapted pools may donate onward, but only to a bounded depth:
            # each hop narrows support in ways the composed weight profile
            # cannot fully show (see AdaptationConfig.max_chain_depth).
            donor_depth = int(donor.stats.get("adaptation_depth", 0))
            if donor_depth >= config.max_chain_depth:
                chain_capped = True
                continue
            adapted = importance_reweight(donor, constraints, config.psi)
            ess = pool_effective_sample_size(adapted)
            if ess > best_ess:
                best, best_ess, best_candidate = adapted, ess, candidate
                best_depth = donor_depth + 1
        if best is None or best_candidate is None:
            if chain_capped:
                self.stats.chain_capped += 1
            else:
                self.stats.no_donor += 1
            return None
        if best_ess < config.min_ess_fraction * count:
            self.stats.low_ess += 1
            if self.telemetry is not None:
                self.telemetry.alarm(
                    "adaptation_ess_rejected",
                    key=key,
                    ess=round(best_ess, 3),
                    required=round(config.min_ess_fraction * count, 3),
                )
            return None
        best.stats.update(
            {
                "sampler": "adapted",
                "adapted_from": best_candidate.key,
                "adaptation_ess": round(best_ess, 3),
                "adaptation_psi": config.psi,
                "adaptation_shared": best_candidate.shared,
                "adaptation_missing": best_candidate.missing,
                "adaptation_extra": best_candidate.extra,
                "adaptation_depth": best_depth,
            }
        )
        if config.resample:
            best = residual_resample(best, count, self._resample_rng(key))
            self.stats.resampled += 1
        self.stats.adapted += 1
        self.stats.prefix_donors += int(best_candidate.is_prefix)
        self.stats.ess_served_sum += best_ess
        self.stats.samples_reused += best.size
        return best

    def _resample_rng(self, key: str) -> np.random.Generator:
        """A resampling stream derived from (seed root, pool key) only."""
        digest = hashlib.blake2b(
            f"pool-adapt:{self.seed_root}:{key}".encode(), digest_size=16
        ).digest()
        return np.random.default_rng(int.from_bytes(digest, "big"))
