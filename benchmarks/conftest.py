"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one table/figure of the paper's evaluation
(§5) at a laptop-friendly scale and prints the corresponding rows/series so
the shape can be compared against the paper (see EXPERIMENTS.md).  Set the
environment variable ``REPRO_BENCH_SCALE=paper`` to run the full paper-scale
workloads instead (slow).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import ExperimentScale


def bench_scale() -> ExperimentScale:
    """The experiment scale used by the benchmark suite."""
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper":
        return ExperimentScale.paper()
    return ExperimentScale(
        num_tuples=1_000,
        num_packages=500,
        num_samples=200,
        num_preferences=200,
        num_features=4,
        num_gaussians=1,
        max_package_size=5,
        seed=0,
    )


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()
