"""Vectorised batch sampling across many constraint sets at once.

The per-user samplers (§3.1–3.2) draw weight vectors for *one* constraint set
with per-candidate Python loops.  A serving layer that keeps thousands of
elicitation sessions alive simultaneously needs the transposed strategy:
draw one large block of candidates from the shared prior ``Pw`` with a single
vectorised numpy call, then test that same block against *every* pending
constraint set with one matrix product each.  Because rejection sampling
accepts exactly the prior restricted to the valid region, the per-set result
is distributed identically to :class:`~repro.sampling.rejection.RejectionSampler`
output — only the batching differs.

Constraint sets whose valid region is too small for shared blocks to fill
within the attempt budget fall back to a per-set sampler (MCMC by default),
so heavily-constrained late-session posteriors never starve the batch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.utils.rng import RngLike


class BatchRejectionSampler(Sampler):
    """Rejection sampling from the prior, vectorised over many constraint sets.

    Parameters
    ----------
    prior, rng, noise_probability:
        See :class:`~repro.sampling.base.Sampler`.  With a noise model the
        soft-rejection probabilities are applied vectorised per block.
    block_size:
        Number of prior candidates drawn per shared block.
    max_blocks:
        Blocks attempted before an unfilled constraint set falls back to the
        per-set ``fallback`` sampler.
    fallback:
        Sampler used to top up constraint sets the shared blocks could not
        fill; defaults to a :class:`MetropolisHastingsSampler` over the same
        prior (``None`` explicitly disables the fallback, in which case
        underfull pools are returned as-is).
    """

    short_name = "BS"

    def __init__(
        self,
        prior: GaussianMixture,
        rng: RngLike = None,
        noise_probability: Optional[float] = None,
        block_size: int = 2048,
        max_blocks: int = 64,
        fallback: Optional[Sampler] = "default",
    ) -> None:
        super().__init__(prior, rng, noise_probability)
        if block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {block_size}")
        if max_blocks <= 0:
            raise ValueError(f"max_blocks must be > 0, got {max_blocks}")
        self.block_size = int(block_size)
        self.max_blocks = int(max_blocks)
        if fallback == "default":
            fallback = MetropolisHastingsSampler(
                prior, rng=self.rng, noise_probability=noise_probability
            )
        self.fallback = fallback

    # ------------------------------------------------------------------ single
    def sample(self, count: int, constraints: ConstraintSet) -> SamplePool:
        """Sampler-ABC entry point: a batch of one constraint set."""
        return self.sample_many([constraints], [count])[0]

    # ------------------------------------------------------------------- batch
    def _accept_mask(self, block: np.ndarray, constraints: ConstraintSet) -> np.ndarray:
        """Vectorised acceptance test of every block row against one set."""
        if self.noise_probability is None:
            return constraints.valid_mask(block)
        violations = constraints.violation_counts(block)
        reject_probability = 1.0 - (1.0 - self.noise_probability) ** violations
        return self.rng.random(block.shape[0]) >= reject_probability

    def sample_many(
        self,
        constraint_sets: Sequence[ConstraintSet],
        counts,
    ) -> List[SamplePool]:
        """Draw one pool per constraint set, sharing candidate blocks.

        ``counts`` is either one integer applied to every set or a sequence
        with one pool size per set.  Returns the pools in input order.
        """
        constraint_sets = list(constraint_sets)
        if np.isscalar(counts):
            counts = [int(counts)] * len(constraint_sets)
        counts = [int(c) for c in counts]
        if len(counts) != len(constraint_sets):
            raise ValueError(
                f"got {len(counts)} counts for {len(constraint_sets)} constraint sets"
            )
        for constraints in constraint_sets:
            if constraints.num_features != self.num_features:
                raise ValueError(
                    f"constraints have {constraints.num_features} features, "
                    f"sampler expects {self.num_features}"
                )
        if any(c < 0 for c in counts):
            raise ValueError("counts must be non-negative")

        accepted: List[List[np.ndarray]] = [[] for _ in constraint_sets]
        filled = [0] * len(constraint_sets)
        pending = [i for i, c in enumerate(counts) if c > 0]
        blocks_drawn = 0
        candidates_drawn = 0
        while pending and blocks_drawn < self.max_blocks:
            block = self.prior.sample(self.block_size, rng=self.rng)
            blocks_drawn += 1
            candidates_drawn += block.shape[0]
            still_pending = []
            for i in pending:
                mask = self._accept_mask(block, constraint_sets[i])
                needed = counts[i] - filled[i]
                valid = block[mask][:needed]
                if valid.shape[0]:
                    accepted[i].append(valid)
                    filled[i] += valid.shape[0]
                if filled[i] < counts[i]:
                    still_pending.append(i)
            pending = still_pending

        pools: List[SamplePool] = []
        for i, constraints in enumerate(constraint_sets):
            rows = (
                np.vstack(accepted[i])
                if accepted[i]
                else np.zeros((0, self.num_features))
            )
            fell_back = False
            if filled[i] < counts[i] and self.fallback is not None:
                remainder = self.fallback.sample(counts[i] - filled[i], constraints)
                rows = np.vstack([rows, remainder.samples]) if rows.size else remainder.samples
                fell_back = True
            stats = {
                "sampler": self.short_name,
                "blocks_drawn": blocks_drawn,
                "candidates_drawn": candidates_drawn,
                "shared_sets": len(constraint_sets),
                "fell_back": fell_back,
            }
            pools.append(SamplePool.unweighted(rows, stats))
        return pools
