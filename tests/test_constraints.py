"""Tests for the constraint-checking optimisations (§3.3, Figure 5)."""

import numpy as np
import pytest

from repro.core.packages import Package
from repro.core.preferences import Preference, PreferenceStore
from repro.sampling.constraints import ConstraintChecker


@pytest.fixture
def random_workload():
    """A reproducible checking workload: 100 constraints over 200 samples."""
    rng = np.random.default_rng(0)
    directions = rng.normal(size=(100, 4))
    samples = rng.uniform(-1, 1, size=(200, 4))
    return directions, samples


class TestConstraintChecker:
    def test_vectorised_matches_naive(self, random_workload):
        directions, samples = random_workload
        checker = ConstraintChecker(directions)
        naive = checker.check_naive(samples)
        assert np.array_equal(naive.valid_mask, checker.check_vectorised(samples))

    def test_pruned_matches_naive(self, random_workload):
        directions, samples = random_workload
        checker = ConstraintChecker(directions)
        naive = checker.check_naive(samples)
        checker.reset_order()
        pruned = checker.check_pruned(samples)
        assert np.array_equal(naive.valid_mask, pruned.valid_mask)

    def test_pruned_does_less_work(self, random_workload):
        """The Figure 5 claim: pruning reduces checking work noticeably."""
        directions, samples = random_workload
        checker = ConstraintChecker(directions)
        naive = checker.check_naive(samples)
        checker.reset_order()
        pruned = checker.check_pruned(samples)
        assert pruned.constraint_evaluations < naive.constraint_evaluations
        # The paper reports >= ~10% improvement; random workloads here give
        # far more because almost every sample violates some constraint early.
        assert pruned.constraint_evaluations <= 0.9 * naive.constraint_evaluations

    def test_naive_work_is_total_pairs(self, random_workload):
        directions, samples = random_workload
        checker = ConstraintChecker(directions)
        report = checker.check_naive(samples)
        assert report.constraint_evaluations == directions.shape[0] * samples.shape[0]

    def test_empty_constraints_accept_all(self):
        checker = ConstraintChecker(np.zeros((0, 3)))
        samples = np.random.default_rng(0).normal(size=(10, 3))
        assert np.all(checker.check_vectorised(samples))
        assert np.all(checker.check_naive(samples).valid_mask)
        assert np.all(checker.check_pruned(samples).valid_mask)

    def test_dimension_mismatch_rejected(self, random_workload):
        directions, _ = random_workload
        checker = ConstraintChecker(directions)
        with pytest.raises(ValueError):
            checker.check_vectorised(np.zeros((5, 3)))

    def test_adaptive_order_persists_across_calls(self, random_workload):
        directions, samples = random_workload
        checker = ConstraintChecker(directions)
        checker.check_pruned(samples)
        first_order = list(checker._order)
        assert first_order != list(range(directions.shape[0]))
        checker.reset_order()
        assert list(checker._order) == list(range(directions.shape[0]))

    def test_from_store_uses_reduced_constraints(self, paper_example_evaluator):
        store = PreferenceStore(2)
        a, b, c = Package.of([0]), Package.of([1]), Package.of([2])
        store.add(Preference.from_packages(paper_example_evaluator, a, b))
        store.add(Preference.from_packages(paper_example_evaluator, b, c))
        store.add(Preference.from_packages(paper_example_evaluator, a, c))
        reduced_checker = ConstraintChecker.from_store(store, reduced=True)
        full_checker = ConstraintChecker.from_store(store, reduced=False)
        assert reduced_checker.num_constraints == 2
        assert full_checker.num_constraints == 3
        # Both checkers agree on validity (transitivity guarantees it).
        samples = np.random.default_rng(0).uniform(-1, 1, size=(100, 2))
        assert np.array_equal(
            reduced_checker.check_vectorised(samples),
            full_checker.check_vectorised(samples),
        )
