"""Async front-end for the serving engine: concurrency in, batches out.

:class:`AsyncRecommendationServer` is the request surface a network layer
(HTTP handler, websocket loop, queue consumer) would call: ``await``-able
``create_session`` / ``recommend`` / ``feedback`` / ``close_session`` over
one shared :class:`~repro.service.engine.RecommendationEngine`.  The point of
the async layer is the ``recommend`` path: concurrent calls do not serialise
on the sampler the way sequential ``engine.recommend`` calls do — they are
absorbed by a :class:`~repro.service.dispatcher.MicroBatchDispatcher` window
(default 16 requests / 2 ms) and dispatched together through
``recommend_many``, where cache-missing sessions share one batched pool fill
and one across-session top-k walk.  Concurrency becomes throughput.

The cheap control-plane calls (``create_session``, ``feedback``,
``close_session``, ``snapshot``) run inline on the event loop: they touch
per-session state only and cost microseconds next to a round.  Everything is
single-threaded — the engine is CPU-bound and not thread-safe, so the server
never hands it to an executor; see the dispatcher docstring for the model.

Typical usage::

    server = AsyncRecommendationServer(engine)
    async with server:
        sid = await server.create_session()
        round_ = await server.recommend(sid)       # batched with neighbours
        await server.feedback(sid, clicked=0)
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.elicitation import RecommendationRound
from repro.core.packages import Package
from repro.service.dispatcher import MicroBatchDispatcher
from repro.service.engine import RecommendationEngine

__all__ = ["AsyncRecommendationServer"]


class AsyncRecommendationServer:
    """Asyncio request/response surface over a :class:`RecommendationEngine`.

    Parameters
    ----------
    engine:
        The (synchronous) serving engine every call is routed to.
    max_batch_size / max_wait:
        Micro-batch window bounds forwarded to the
        :class:`~repro.service.dispatcher.MicroBatchDispatcher`: a window is
        dispatched once ``max_batch_size`` ``recommend`` requests are pending
        or ``max_wait`` seconds after its first request, whichever comes
        first.
    max_pending:
        Backpressure cap forwarded to the dispatcher: ``recommend`` calls
        arriving while the window already holds this many requests raise
        :class:`~repro.service.dispatcher.DispatcherOverloadedError` instead
        of queueing unboundedly; ``None`` never sheds.
    shed_mode:
        Overload behaviour forwarded to the dispatcher: ``"reject"``
        (default) sheds over-cap requests with
        :class:`~repro.service.dispatcher.DispatcherOverloadedError`;
        ``"degrade"`` first tries a cache-only serve through
        :meth:`RecommendationEngine.recommend_cached` (no pool fill) and only
        sheds the requests even that cannot answer.
    """

    def __init__(
        self,
        engine: RecommendationEngine,
        max_batch_size: int = 16,
        max_wait: float = 0.002,
        max_pending: Optional[int] = None,
        shed_mode: str = "reject",
    ) -> None:
        self.engine = engine
        self.dispatcher = MicroBatchDispatcher(
            engine,
            max_batch_size=max_batch_size,
            max_wait=max_wait,
            max_pending=max_pending,
            shed_mode=shed_mode,
        )

    # -------------------------------------------------------------- lifecycle
    async def create_session(
        self,
        session_id: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> str:
        """Open a new elicitation session and return its id."""
        return self.engine.create_session(session_id=session_id, seed=seed)

    async def close_session(self, session_id: str) -> bool:
        """Terminate a session; returns whether it existed."""
        return self.engine.close(session_id)

    # ---------------------------------------------------------------- serving
    async def recommend(self, session_id: str) -> RecommendationRound:
        """Serve one round, micro-batched with concurrent neighbours.

        A caller must await its round before sending ``feedback`` for it —
        the usual request/response contract; the dispatcher preserves no
        cross-request ordering beyond that.
        """
        return await self.dispatcher.submit(session_id)

    async def feedback(
        self, session_id: str, clicked: Union[int, Package]
    ) -> int:
        """Record a click on the session's last served round."""
        return self.engine.feedback(session_id, clicked)

    async def snapshot(self, session_id: str) -> dict:
        """JSON-serialisable snapshot of a session (see the engine docs)."""
        return self.engine.snapshot(session_id)

    # --------------------------------------------------------------- shutdown
    async def shutdown(self) -> None:
        """Stop accepting ``recommend`` requests and drain the window.

        Every request already admitted is dispatched and resolved before this
        returns; later :meth:`recommend` calls raise
        :class:`~repro.service.dispatcher.DispatcherClosedError`.
        """
        await self.dispatcher.aclose()

    async def __aenter__(self) -> "AsyncRecommendationServer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        """Engine counters plus dispatcher batching counters."""
        return {
            "engine": self.engine.stats().as_dict(),
            "dispatcher": self.dispatcher.stats.as_dict(),
        }

    # -------------------------------------------------------------- telemetry
    def observe(self) -> dict:
        """The engine's consolidated observation tree (see ``engine.observe``).

        The dispatcher registered itself as an observable at construction,
        so its batching counters appear under ``"dispatcher"``.
        """
        return self.engine.observe()

    def metrics_text(self) -> str:
        """The engine's metrics registry in Prometheus text exposition."""
        return self.engine.telemetry.prometheus_text()

    def drain_traces(self) -> list:
        """Drain captured request traces (in-memory sinks only)."""
        return self.engine.telemetry.drain_traces()
