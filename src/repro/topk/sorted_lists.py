"""Per-feature sorted item lists with round-robin access (§4, Algorithm 2).

This module is the *access structure* of the paper's upper/lower-bound scheme
for ``Top-k-Pkg``.  The searchers never scan the catalog: they pull items one
at a time from per-feature sorted lists, and everything they know about the
not-yet-seen part of the catalog is summarised by one vector.

**Sorted access (Algorithm 2).**  ``Top-k-Pkg`` accesses items "in their
descending utility order" per feature: for a feature with a positive weight
the list is sorted by decreasing value, for a negative weight by increasing
value (a sorted column can be read in either direction, so only one physical
ordering per feature is kept; zero-weight features get no list at all since
they cannot influence utility).  The lists are consumed round-robin so no
single feature runs far ahead of the others.

**The boundary vector τ and why it bounds.**  τ holds, per feature, the value
of the last accessed item of that feature's list.  Because each list is read
in desirability order, *every unaccessed item is feature-wise dominated by
τ*: on each feature its value is no more desirable than τ's.  An imaginary
item with feature vector τ therefore upper-bounds the utility contribution of
any unaccessed item, which is exactly what the search needs to bound
undiscovered packages:

* the **upper bound** ``η_up`` (``upper-exp``, Algorithm 3) pads a candidate
  package with copies of the τ item — no completion of the candidate using
  unaccessed items can do better;
* the **lower bound** ``η_lo`` is the k-th best utility among packages
  already discovered (exact values, no bounding needed);
* the search stops the moment ``η_up ≤ η_lo``: the best still-undiscovered
  package provably cannot crack the current top-k, usually long before the
  lists are exhausted.

As the walk advances, τ only moves toward less desirable values, so ``η_up``
tightens monotonically while ``η_lo`` rises — the two bounds close in on each
other from both sides.

One subtlety: a *null* feature value contributes nothing to any aggregate,
and "contributing nothing" can be more desirable than τ itself (e.g. on a
negative-weight sum feature).  The searchers therefore post-process τ with
:func:`repro.topk.package_search.null_aware_boundary` before padding with it;
this module only reports the raw per-list boundary values.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.items import ItemCatalog
from repro.utils.validation import require_vector


class SortedItemLists:
    """Round-robin access over per-feature desirability-sorted item lists.

    One instance is one *cursor* over the catalog for one weight vector: it
    remembers, per active feature, how deep that feature's list has been
    read, which items have already been produced (an item surfacing in a
    second list is skipped but still advances that list's boundary), and the
    current boundary value vector τ.  The sequential searcher owns a single
    cursor; the batch searcher advances one cursor per weight vector in
    lockstep while sharing all candidate-package state between them.

    Parameters
    ----------
    catalog:
        The item catalog.
    weights:
        The weight vector ``w``; the sign of each component decides the sort
        direction of the corresponding list.  Features with zero weight do not
        get a list (they cannot influence utility).
    """

    def __init__(self, catalog: ItemCatalog, weights: np.ndarray) -> None:
        weights = require_vector(weights, "weights", length=catalog.num_features)
        self.catalog = catalog
        self.weights = weights
        self.active_features: List[int] = [
            j for j in range(catalog.num_features) if weights[j] != 0.0
        ]
        # One ordering per active feature: best item for that feature first.
        self._orders: Dict[int, np.ndarray] = {}
        for j in self.active_features:
            descending = weights[j] > 0
            self._orders[j] = catalog.argsort_feature(j, descending=descending)
        self._positions: Dict[int, int] = {j: 0 for j in self.active_features}
        self._last_value: Dict[int, Optional[float]] = {j: None for j in self.active_features}
        self._accessed: set = set()
        self._cursor = 0

    # ------------------------------------------------------------------ basics
    @property
    def num_accessed(self) -> int:
        """Number of distinct items accessed so far."""
        return len(self._accessed)

    def accessed_items(self) -> List[int]:
        """Indices of all items accessed so far (unordered)."""
        return list(self._accessed)

    def exhausted(self) -> bool:
        """Whether every list has been fully read."""
        return all(
            self._positions[j] >= self.catalog.num_items for j in self.active_features
        )

    # ------------------------------------------------------------------ access
    def next_item(self) -> Optional[int]:
        """Access the next *new* item in round-robin order over the lists.

        Items already returned from another list are skipped (but still move
        that list's boundary value forward).  Returns ``None`` when all lists
        are exhausted.
        """
        if not self.active_features:
            return None
        while not self.exhausted():
            feature = self.active_features[self._cursor % len(self.active_features)]
            self._cursor += 1
            position = self._positions[feature]
            if position >= self.catalog.num_items:
                continue
            item_index = int(self._orders[feature][position])
            self._positions[feature] = position + 1
            value = self.catalog.features[item_index, feature]
            self._last_value[feature] = 0.0 if np.isnan(value) else float(value)
            if item_index in self._accessed:
                # Already produced via another list; keep scanning.
                continue
            self._accessed.add(item_index)
            return item_index
        return None

    # ---------------------------------------------------------------- boundary
    def boundary_vector(self) -> np.ndarray:
        """The boundary value vector τ.

        For each active feature, τ carries the value of the last accessed item
        in that feature's list (or the best possible value if the list has not
        been read yet); inactive (zero-weight) features are set to 0 since they
        cannot contribute utility either way.  An imaginary item with feature
        vector τ therefore upper-bounds the utility contribution of any
        unaccessed item.
        """
        tau = np.zeros(self.catalog.num_features)
        for j in self.active_features:
            if self._last_value[j] is None:
                order = self._orders[j]
                best_value = self.catalog.features[int(order[0]), j]
                tau[j] = 0.0 if np.isnan(best_value) else float(best_value)
            else:
                tau[j] = self._last_value[j]
        return tau

    def exhausted_boundary_vector(self) -> np.ndarray:
        """τ once all items are accessed: the *worst* value per active feature.

        Used to signal that no unaccessed item remains: extending a package
        with this vector can never look better than extending it with a real
        remaining item (there are none).
        """
        tau = np.zeros(self.catalog.num_features)
        for j in self.active_features:
            column = self.catalog.feature_column(j, fill_null=0.0)
            tau[j] = float(column.min()) if self.weights[j] > 0 else float(column.max())
        return tau
