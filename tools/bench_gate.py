#!/usr/bin/env python
"""CI performance gate: validate the benchmark metrics in ``BENCH_ci.json``.

The gated benchmark modules (service, batch top-k, async front-end, sharded
pool service) each assert their headline floor *and* record the measured
number via ``bench_utils.record_ci_metric``.  This script is the second, independent
half of the ``bench-gate`` CI job: after the benchmarks have run it checks

1. every **required** metric is present (a silently skipped benchmark cannot
   pass the gate),
2. no metric's recorded floor has been quietly lowered below the pinned
   minimum committed here (editing the floor in a benchmark module without
   touching this file fails the gate loudly), and
3. every measured value clears its floor — the same comparison the pytest
   assertion made, re-checked from the artifact so a stale or hand-edited
   file cannot pass.

Exit codes: 0 = all gates pass, 1 = a performance regression or a lowered
floor, 2 = missing/malformed metrics file.

Usage::

    python tools/bench_gate.py                   # check ./BENCH_ci.json
    python tools/bench_gate.py path/to/file.json # check a specific artifact
"""

from __future__ import annotations

import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_METRICS_PATH = os.path.join(REPO_ROOT, "BENCH_ci.json")

#: The pinned minimum floor per gated metric.  A benchmark may raise its
#: asserted floor freely; lowering one below these values requires editing
#: this file, which is the point — the regression budget is a reviewed,
#: committed decision, not a constant next to the benchmark that trips it.
PINNED_FLOORS = {
    "service_shared_vs_per_session_speedup": 2.0,
    "topk_batch_vs_sequential_speedup": 5.0,
    "async_vs_serial_throughput_speedup": 3.0,
    # Sharded pool service (PR 4): 4 thread-backed shards must serve rounds
    # bit-identical to the unsharded engine (the indicator is the metric)...
    "sharding_equivalence": 1.0,
    # ...and fingerprint-reference snapshots must shrink the session store by
    # at least 5x on the 50-session pool-sharing workload.  The per-shard
    # parallel fill timing is recorded unpinned (single-core CI runners
    # cannot overlap threads, so a wall-clock floor would be noise).
    "snapshot_compaction_ratio": 5.0,
    # Process shard backend (PR 8): 4 process-backed shards resolving
    # picklable FillSpecs in worker processes (distinct PIDs asserted by the
    # benchmark) must serve rounds bit-identical to the unsharded engine.
    # The process fill speedup stays unpinned here — single-core CI runners
    # cannot overlap workers; the nightly multi-core job asserts > 1.2x via
    # REQUIRE_MULTICORE_SPEEDUP=1.
    "sharding_process_equivalence": 1.0,
    # Approximate pool reuse (PR 5): on the private-exploration miss workload
    # an ESS-gated reweighted donor pool must be served at least 3x faster
    # than the full resampling fill it replaces (measured ~8x), and the ESS
    # gate must pass at least half of the high-overlap misses through
    # (measured ~0.84; the remainder legitimately fall back to fills).
    "adaptation_miss_speedup": 3.0,
    "adaptation_reuse_rate": 0.5,
    # Event-sourced session store (PR 6): every round served by a
    # replay-restored session — including rounds served after a simulated
    # crash truncates a torn tail record — must be bit-identical to the
    # never-swapped reference engine (the indicator is the metric), and the
    # checkpoint append path must never be slower than the SQLite blob
    # swap-out it replaces (measured ~7x faster).
    "eventlog_replay_equivalence": 1.0,
    "eventlog_swap_out_speedup": 1.0,
    # Incremental serving fast path (PR 7): on the deep private-exploration
    # click stream, post-click rounds served through the fused path
    # (candidate carryover + ESS-deficit partial refill) must be at least 2x
    # faster than from-scratch rounds (measured ~4.4x — late-session
    # constraint sets make full refills expensive), and the refill
    # provisioning call alone must beat the hard-maintenance miss path it
    # replaces (measured ~1.6x).  Exactness is pinned separately by the
    # randomized equivalence suite in tests/test_incremental.py.
    "incremental_search_speedup": 2.0,
    "partial_refill_speedup": 1.2,
    # Memory-mapped columnar catalog (PR 9): rounds served from an
    # mmap-backed catalog — per-session, batched, and with pool fills
    # resolved in process-shard workers that open the store by content
    # digest — must be bit-identical to the materialized engine (the
    # indicator is the metric), and attaching a cold store must beat
    # rebuilding + re-argsorting the catalog by at least 10x.
    "catalog_mmap_equivalence": 1.0,
    "catalog_cold_open_speedup": 10.0,
}

#: The pinned maximum ceiling per lower-is-better gated metric.  Mirrors
#: PINNED_FLOORS with the comparison reversed: a benchmark may tighten its
#: asserted ceiling freely; raising one above these values requires editing
#: this file in a reviewed commit.
PINNED_CEILINGS = {
    # Predicate pushdown (PR 9): on the selective-predicate workload the
    # sorted-list walk must touch at most this fraction of the catalog's
    # rows — eligibility is answered from column summaries and stored
    # orders, never by scanning the table.
    "catalog_pushdown_row_fraction": 0.2,
    # Unified telemetry layer (PR 10): request tracing + the metrics
    # registry enabled at production sampling settings (keep slow traces,
    # sample every 10th) may cost at most 5% of p50 round serve latency
    # against the disabled facade (measured ~0% — one attribute check per
    # instrumentation site when off, span bookkeeping only when on).
    "telemetry_overhead_fraction": 0.05,
}

EXPECTED_SCHEMA_VERSION = 1


def main(argv):
    path = argv[0] if argv else DEFAULT_METRICS_PATH
    if not os.path.exists(path):
        print(f"error: metrics file not found: {path}", file=sys.stderr)
        print("run the gated benchmarks first, e.g.:", file=sys.stderr)
        print(
            "  python -m pytest benchmarks/test_bench_service.py "
            "benchmarks/test_bench_topk_batch.py benchmarks/test_bench_async.py",
            file=sys.stderr,
        )
        return 2
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if payload.get("schema_version") != EXPECTED_SCHEMA_VERSION:
        print(
            f"error: unexpected schema_version {payload.get('schema_version')!r} "
            f"(this gate understands {EXPECTED_SCHEMA_VERSION})",
            file=sys.stderr,
        )
        return 2
    metrics = payload.get("metrics", {})

    failures = []
    width = max(len(name) for name in (*PINNED_FLOORS, *PINNED_CEILINGS))
    print(f"bench gate: {path}")
    for name, pinned in sorted(PINNED_FLOORS.items()):
        entry = metrics.get(name)
        if entry is None:
            failures.append(f"{name}: required metric missing from {path}")
            print(f"  {name:<{width}}  MISSING")
            continue
        value = float(entry["value"])
        floor = float(entry["floor"])
        unit = entry.get("unit", "")
        status = "ok"
        if floor < pinned:
            status = "FLOOR LOWERED"
            failures.append(
                f"{name}: recorded floor {floor}{unit} is below the pinned "
                f"minimum {pinned}{unit} (raise it, or change tools/bench_gate.py "
                f"in a reviewed commit)"
            )
        if value < floor:
            status = "REGRESSION"
            failures.append(
                f"{name}: measured {value}{unit} is below its floor {floor}{unit}"
            )
        print(
            f"  {name:<{width}}  value={value:>8.3f}{unit}  "
            f"floor={floor:>6.2f}{unit}  pinned={pinned:>6.2f}{unit}  [{status}]"
        )
    for name, pinned in sorted(PINNED_CEILINGS.items()):
        entry = metrics.get(name)
        if entry is None:
            failures.append(f"{name}: required metric missing from {path}")
            print(f"  {name:<{width}}  MISSING")
            continue
        value = float(entry["value"])
        ceiling = float(entry["ceiling"])
        unit = entry.get("unit", "")
        status = "ok"
        if ceiling > pinned:
            status = "CEILING RAISED"
            failures.append(
                f"{name}: recorded ceiling {ceiling}{unit} is above the pinned "
                f"maximum {pinned}{unit} (tighten it, or change "
                f"tools/bench_gate.py in a reviewed commit)"
            )
        if value > ceiling:
            status = "REGRESSION"
            failures.append(
                f"{name}: measured {value}{unit} is above its ceiling "
                f"{ceiling}{unit}"
            )
        print(
            f"  {name:<{width}}  value={value:>8.3f}{unit}  "
            f"ceiling={ceiling:>4.2f}{unit}  pinned={pinned:>6.2f}{unit}  [{status}]"
        )
    extra = sorted(set(metrics) - set(PINNED_FLOORS) - set(PINNED_CEILINGS))
    for name in extra:
        entry = metrics[name]
        print(
            f"  {name:<{width}}  value={float(entry['value']):>8.3f}"
            f"{entry.get('unit', '')}  (unpinned, informational)"
        )

    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        print(f"\nbench gate FAILED ({len(failures)} problem(s))", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
