"""``Top-k-Pkg``: top-k package search under a fixed weight vector (§4).

The algorithm adapts threshold-style top-k processing to package space:

* items are read from per-feature desirability-sorted lists in round-robin
  order (Algorithm 2);
* every newly accessed item ``t`` is used to *expand* the candidate packages
  discovered so far (Algorithm 4); candidates that can no longer be improved
  by any unaccessed item are parked in a pruned queue Q−, others stay in the
  expandable queue Q+;
* an upper bound ``η_up`` on the utility of any not-yet-materialised package is
  maintained with ``upper-exp`` (Algorithm 3), which pads a candidate with
  copies of the imaginary boundary item τ (all φ-|p| of them when the utility
  function is set-monotone, or only while the marginal gain stays positive
  otherwise — Lemma 3 / Theorem 3);
* the search stops as soon as ``η_up ≤ η_lo``, where ``η_lo`` is the utility of
  the k-th best package discovered so far.

Deviations from the paper (documented in DESIGN.md):

* **Lower bound.** The paper sets ``η_lo`` to the k-th best utility *in Q−*
  and to 0 when Q− holds fewer than k packages.  Using 0 terminates
  prematurely when the true top packages have negative utility, so by default
  we take the k-th best utility over *all* discovered packages and ``-inf``
  when fewer than k exist — a valid lower bound that is never looser than the
  paper's and remains correct for negative-utility workloads.
* **Expansion gate.** Algorithm 4 only materialises ``p ∪ {t}`` when adding the
  new item strictly improves ``p``.  That can miss top-k packages for ``k > 1``
  whose generation path passes through a utility-decreasing extension (e.g.
  the 2nd-best package being "best single item + one cheap filler").  The
  default gate here instead materialises ``p ∪ {t}`` whenever its ``upper-exp``
  bound can still reach the current lower bound ``η_lo``, which is exact: any
  unaccessed item is feature-wise dominated by τ, so the bound covers every
  completion of the candidate.  Pass ``expansion_rule="paper"`` for the
  literal Algorithm 4 behaviour (useful for measuring the difference).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.packages import AggregationState, Package, PackageEvaluator
from repro.core.predicates import PredicateSet
from repro.core.profiles import AggregateProfile, Aggregation
from repro.core.utility import LinearUtility
from repro.topk.sorted_lists import FilteredOrderSource, SortedItemLists
from repro.utils.validation import require_vector


def canonical_package_vectors(
    evaluator: PackageEvaluator, items_list: Sequence[Tuple[int, ...]]
) -> np.ndarray:
    """Normalised aggregate vectors for many packages, in a fixed order of ops.

    Both package searchers report their final scores through this helper (via
    :func:`canonical_package_utilities`) so that the sequential and the batch
    implementation produce bit-identical utilities for the same package — a
    candidate's score must not depend on the (implementation-specific) order
    in which its items were aggregated during the search.  Packages are
    grouped by size and each group is aggregated with one vectorised pass.
    """
    num_features = evaluator.num_features
    raw = np.zeros((len(items_list), num_features))
    if not items_list:
        return raw
    features = evaluator.catalog.features
    by_size = defaultdict(list)
    for row, items in enumerate(items_list):
        by_size[len(items)].append(row)
    for size, rows in by_size.items():
        rows = np.asarray(rows, dtype=int)
        indices = np.asarray([items_list[r] for r in rows], dtype=int)
        block = features[indices]  # (group, size, m)
        null = np.isnan(block)
        contrib = np.where(null, 0.0, block)
        for j, aggregation in enumerate(evaluator.profile.aggregations):
            if aggregation is Aggregation.NULL:
                continue
            if aggregation is Aggregation.SUM:
                raw[rows, j] = contrib[:, :, j].sum(axis=1)
            elif aggregation is Aggregation.AVG:
                raw[rows, j] = contrib[:, :, j].sum(axis=1) / size
            elif aggregation is Aggregation.MIN:
                value = np.where(null[:, :, j], np.inf, contrib[:, :, j]).min(axis=1)
                raw[rows, j] = np.where(np.isfinite(value), value, 0.0)
            elif aggregation is Aggregation.MAX:
                value = np.where(null[:, :, j], -np.inf, contrib[:, :, j]).max(axis=1)
                raw[rows, j] = np.where(np.isfinite(value), value, 0.0)
    return raw / evaluator.normalisers


def null_aware_boundary(
    tau: np.ndarray,
    weights: np.ndarray,
    profile: AggregateProfile,
    null_columns: np.ndarray,
) -> np.ndarray:
    """The boundary vector τ adjusted to also dominate null feature values.

    The §4 bound pads candidates with an imaginary item whose feature vector
    is τ, assuming every unaccessed item is feature-wise dominated by it.  A
    *null* value, however, contributes nothing to any aggregate (while still
    counting toward ``|p|``), and "contribute nothing" can beat the boundary
    value: a negative-weight sum/avg feature is better skipped than filled
    with a positive τ, and a negative-weight ``max`` is better left untouched
    than raised toward τ.  For features whose column actually contains nulls,
    such entries are replaced by NaN — the aggregation-state code already
    treats NaN as a null contribution — so the padded bound stays an upper
    bound for completions that use null-valued items.  Columns without nulls
    keep the tight τ.

    ``min`` features cannot be handled here: whether skipping beats the
    boundary value depends on the candidate being padded (a candidate with no
    value yet on the feature aggregates to 0, one with a value keeps or
    lowers it), so the searchers resolve nullable ``min`` features per
    candidate state instead (see ``TopKPackageSearcher._upper_exp`` and the
    batch searcher's ``_padded_bounds``).
    """
    adjusted = np.asarray(tau, dtype=float).copy()
    for j, aggregation in enumerate(profile.aggregations):
        if not null_columns[j]:
            continue
        weight = weights[j]
        if aggregation in (Aggregation.SUM, Aggregation.AVG):
            if weight * adjusted[j] < 0:
                adjusted[j] = np.nan
        elif aggregation is Aggregation.MAX and weight < 0:
            adjusted[j] = np.nan
    return adjusted


def canonical_package_utilities(
    evaluator: PackageEvaluator,
    items_list: Sequence[Tuple[int, ...]],
    weights_matrix: np.ndarray,
) -> np.ndarray:
    """Utility of every package under every weight vector, deterministically.

    Returns a ``(num_packages, num_vectors)`` matrix.  The dot products are
    accumulated feature by feature in index order (instead of delegating to a
    shape-dependent BLAS reduction) so that scoring one vector and scoring a
    whole batch yield the same floats — the property the batch/sequential
    equivalence tests assert exactly.
    """
    matrix = np.atleast_2d(np.asarray(weights_matrix, dtype=float))
    vectors = canonical_package_vectors(evaluator, items_list)
    utilities = np.zeros((vectors.shape[0], matrix.shape[0]))
    for j in range(evaluator.num_features):
        utilities += np.outer(vectors[:, j], matrix[:, j])
    return utilities


@dataclass
class PackageSearchResult:
    """Result of one ``Top-k-Pkg`` run.

    Attributes
    ----------
    packages:
        The top-k packages in non-increasing utility order (ties broken by
        package id).
    utilities:
        Utility of each returned package, aligned with ``packages``.
    items_accessed:
        Number of distinct items read from the sorted lists before the
        termination condition fired.
    candidates_generated:
        Number of candidate packages materialised during the search.
    """

    packages: List[Package]
    utilities: List[float]
    items_accessed: int
    candidates_generated: int

    def as_pairs(self) -> List[Tuple[Package, float]]:
        """The result as ``(package, utility)`` pairs."""
        return list(zip(self.packages, self.utilities))

    def top_package(self) -> Optional[Package]:
        """The single best package, or None when the result is empty."""
        return self.packages[0] if self.packages else None


class TopKPackageSearcher:
    """Search for the top-k packages under a fixed weight vector.

    Parameters
    ----------
    evaluator:
        Binds the item catalog, the aggregate profile and the maximum package
        size φ.
    paper_lower_bound:
        Use the paper's exact lower-bound rule (k-th best of Q−, 0 otherwise)
        instead of the tighter-and-safer default (see module docstring).
    expansion_rule:
        ``"upper_bound"`` (default, exact — see module docstring) or
        ``"paper"`` (the literal improvement gate of Algorithm 4).
    predicates:
        Optional package-schema predicates (§7): candidate packages violating
        a *closed* predicate set are not reported (but may still be extended,
        since adding items can satisfy count-based predicates).
    max_candidates:
        Safety cap on the number of candidate packages kept in the queues; the
        search degrades gracefully (still correct for the packages explored)
        rather than exhausting memory on adversarial inputs.
    beam_width:
        Optional cap on the size of the expandable queue Q+.  When the queue
        exceeds the cap, only the candidates with the best ``upper-exp`` bounds
        are kept for further expansion.  ``None`` (default) keeps the search
        exact; a finite beam turns it into a bounded-work anytime search for
        adversarial workloads (e.g. heavily correlated item features, where the
        boundary vector τ decays very slowly and the exact queue explodes).
    max_items_accessed:
        Optional cap on the number of items read from the sorted lists before
        the search stops and reports the best packages found so far.  ``None``
        (default) reads until the bound-based termination fires.
    catalog_predicate:
        Optional item-eligibility predicate
        (:class:`repro.data.columnar.CatalogPredicate`) pushed down into the
        sorted-list walk: ineligible items are removed from every list before
        the search starts (via summary pruning and binary search over the
        stored orders, not a scan), so the walk behaves exactly as if it ran
        over the eligible sub-catalog.
    """

    def __init__(
        self,
        evaluator: PackageEvaluator,
        paper_lower_bound: bool = False,
        expansion_rule: str = "upper_bound",
        predicates: Optional[PredicateSet] = None,
        max_candidates: int = 200_000,
        beam_width: Optional[int] = None,
        max_items_accessed: Optional[int] = None,
        catalog_predicate=None,
    ) -> None:
        self.evaluator = evaluator
        self.paper_lower_bound = paper_lower_bound
        if expansion_rule not in ("upper_bound", "paper"):
            raise ValueError(
                f"expansion_rule must be 'upper_bound' or 'paper', got {expansion_rule!r}"
            )
        self.expansion_rule = expansion_rule
        self.predicates = predicates
        if max_candidates <= 0:
            raise ValueError(f"max_candidates must be > 0, got {max_candidates}")
        self.max_candidates = max_candidates
        if beam_width is not None and beam_width <= 0:
            raise ValueError(f"beam_width must be > 0 or None, got {beam_width}")
        self.beam_width = beam_width
        if max_items_accessed is not None and max_items_accessed <= 0:
            raise ValueError(
                f"max_items_accessed must be > 0 or None, got {max_items_accessed}"
            )
        self.max_items_accessed = max_items_accessed
        self._null_columns = evaluator.catalog.null_mask.any(axis=0)
        self._null_min_feats = [
            j
            for j, aggregation in enumerate(evaluator.profile.aggregations)
            if aggregation is Aggregation.MIN and self._null_columns[j]
        ]
        self.catalog_predicate = catalog_predicate
        if catalog_predicate is None:
            self._eligible_mask: Optional[np.ndarray] = None
        else:
            mask = np.asarray(
                catalog_predicate.eligible_mask(evaluator.catalog), dtype=bool
            )
            if mask.shape != (evaluator.catalog.num_items,):
                raise ValueError(
                    "catalog_predicate mask has shape "
                    f"{mask.shape}, expected ({evaluator.catalog.num_items},)"
                )
            self._eligible_mask = mask
        self._order_source = FilteredOrderSource(
            evaluator.catalog, self._eligible_mask
        )

    # -------------------------------------------------------------- public API
    def search(self, weights: np.ndarray, k: int) -> PackageSearchResult:
        """Run ``Top-k-Pkg`` for weight vector ``weights`` and return the top ``k``."""
        weights = require_vector(
            weights, "weights", length=self.evaluator.num_features
        )
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")

        utility = LinearUtility(weights)
        set_monotone = utility.is_set_monotone(self.evaluator.profile)
        lists = SortedItemLists(
            self.evaluator.catalog, weights, order_provider=self._order_source
        )
        phi = self.evaluator.max_package_size
        if not lists.active_features:
            # Degenerate case: all weights are zero, every package has utility
            # 0, so the deterministic tie-breaker (package id) decides alone.
            return self._all_zero_weight_result(k)

        # Candidate bookkeeping: package -> (state, utility).  Q+ holds
        # expandable candidates, Q- the pruned ones; `discovered` spans both.
        # `_top_heap` keeps the k best reportable utilities seen so far so the
        # lower bound η_lo can be read in O(1).
        self._top_heap: List[float] = []
        empty_state = self.evaluator.empty_state()
        expandable: Dict[Tuple[int, ...], AggregationState] = {(): empty_state}
        pruned: Dict[Tuple[int, ...], AggregationState] = {}
        discovered: Dict[Tuple[int, ...], float] = {}
        candidates_generated = 0

        while True:
            if (
                self.max_items_accessed is not None
                and lists.num_accessed >= self.max_items_accessed
            ):
                break
            item_index = lists.next_item()
            if item_index is None:
                break
            tau = null_aware_boundary(
                lists.boundary_vector(), weights, self.evaluator.profile,
                self._null_columns,
            )
            eta_lo, eta_up = self._expand_packages(
                weights, set_monotone, expandable, pruned, discovered,
                item_index, tau, phi, k,
            )
            candidates_generated = len(discovered)
            if candidates_generated > self.max_candidates:
                break
            if eta_up <= eta_lo:
                break
            self._apply_beam(expandable, weights, set_monotone, tau, phi)

        return self._collect_result(
            weights, discovered, k, lists.num_accessed, candidates_generated
        )

    def search_many(
        self, weights_matrix: np.ndarray, k: int
    ) -> List[PackageSearchResult]:
        """Run ``Top-k-Pkg`` for every row of ``weights_matrix``.

        Duplicate weight vectors are searched only once and the shared result
        is fanned back out, preserving row order.  Pools produced by MCMC
        sampling repeat the chain state whenever a proposal is rejected, and
        pools shared across serving sessions are searched with identical
        vectors, so deduplication removes most of the per-sample search cost
        in both the single-user and the serving path.
        """
        matrix = np.atleast_2d(np.asarray(weights_matrix, dtype=float))
        if matrix.shape[0] == 0:
            return []
        unique, inverse = np.unique(matrix, axis=0, return_inverse=True)
        unique_results = [self.search(unique[i], k) for i in range(unique.shape[0])]
        return [unique_results[j] for j in np.ravel(inverse)]

    def _all_zero_weight_result(self, k: int) -> PackageSearchResult:
        """Top-k when every weight is zero: the k smallest package ids, utility 0."""
        phi = self.evaluator.max_package_size
        if self._eligible_mask is None:
            pool = range(self.evaluator.catalog.num_items)
        else:
            pool = [int(i) for i in np.flatnonzero(self._eligible_mask)]
        num_pool = len(pool)
        selected: List[Package] = []
        scanned = 0

        def descend(prefix: Tuple[int, ...], start: int) -> None:
            nonlocal scanned
            if len(selected) >= k or scanned > self.max_candidates:
                return
            for position in range(start, num_pool):
                if len(selected) >= k or scanned > self.max_candidates:
                    return
                candidate = prefix + (pool[position],)
                scanned += 1
                if self._reportable(candidate):
                    selected.append(Package(candidate))
                if len(candidate) < phi:
                    descend(candidate, position + 1)

        descend((), 0)
        return PackageSearchResult(
            packages=selected,
            utilities=[0.0] * len(selected),
            items_accessed=0,
            candidates_generated=scanned,
        )

    # ------------------------------------------------------- expansion (Alg. 4)
    def _expand_packages(
        self,
        weights: np.ndarray,
        set_monotone: bool,
        expandable: Dict[Tuple[int, ...], AggregationState],
        pruned: Dict[Tuple[int, ...], AggregationState],
        discovered: Dict[Tuple[int, ...], float],
        item_index: int,
        tau: np.ndarray,
        phi: int,
        k: int,
    ) -> Tuple[float, float]:
        """One round of Algorithm 4; returns the (η_lo, η_up) bounds.

        Two quantities drive the pruning for every candidate package ``p``:

        * ``U(p)`` — its own utility (already counted in ``η_lo`` once ``p`` is
          discovered);
        * ``strict bound`` — the best utility any *completion of p with at
          least one unaccessed item* can achieve, obtained by padding ``p``
          with copies of the boundary item τ (``upper-exp`` forced to add τ at
          least once).

        A candidate leaves Q+ as soon as its strict bound drops below ``η_lo``
        (no undiscovered completion can reach the top-k any more), and the
        global ``η_up`` is the maximum strict bound across Q+ — the utility the
        best undiscovered package could still achieve.
        """
        eta_lo = self._lower_bound(discovered, pruned, weights, k)
        eta_up = -np.inf
        to_prune: List[Tuple[int, ...]] = []
        new_expandable: Dict[Tuple[int, ...], AggregationState] = {}
        use_paper_gate = self.expansion_rule == "paper"

        for package_items, state in expandable.items():
            current_utility = self.evaluator.state_utility(state, weights)
            can_grow = len(package_items) < phi

            if can_grow and item_index not in package_items:
                extended_state = self.evaluator.state_add_item(state, item_index)
                extended_utility = self.evaluator.state_utility(extended_state, weights)
                extended_strict = self._upper_exp(
                    extended_state, weights, set_monotone, tau, phi, force_first=True
                )
                extended_best = max(extended_utility, extended_strict)
                if use_paper_gate:
                    # Algorithm 4, line 3: only keep utility-improving extensions
                    # (the empty package still spawns singletons so every accessed
                    # item becomes a candidate).
                    keep_extension = extended_utility > current_utility or not package_items
                else:
                    # Exact gate: materialise the extension while either its own
                    # utility or some completion of it can still reach the top-k.
                    keep_extension = extended_best >= eta_lo
                if keep_extension:
                    new_items = tuple(sorted(package_items + (item_index,)))
                    if new_items not in discovered:
                        discovered[new_items] = extended_utility
                        if self._reportable(new_items):
                            heap_bound = self._heap_lower_bound(new_items, extended_utility, k)
                            if not self.paper_lower_bound:
                                eta_lo = max(eta_lo, heap_bound)
                        if use_paper_gate:
                            still_expandable = (
                                len(new_items) < phi and extended_strict > extended_utility
                            )
                        else:
                            still_expandable = (
                                len(new_items) < phi and extended_strict >= eta_lo
                            )
                        if still_expandable:
                            new_expandable[new_items] = extended_state
                            eta_up = max(eta_up, extended_strict)
                        else:
                            pruned[new_items] = extended_state

            # Can the existing package still spawn top-k completions with
            # unaccessed items?
            if can_grow:
                own_strict = self._upper_exp(
                    state, weights, set_monotone, tau, phi, force_first=True
                )
            else:
                own_strict = -np.inf
            if use_paper_gate:
                keep_expandable = can_grow and own_strict > current_utility
            else:
                keep_expandable = can_grow and own_strict >= eta_lo
            if keep_expandable or not package_items:
                # The empty package is never pruned: it is the seed for
                # singletons of items not yet accessed, so its strict bound
                # always covers the still-entirely-unseen packages.
                eta_up = max(eta_up, own_strict)
            else:
                to_prune.append(package_items)

        for package_items in to_prune:
            pruned[package_items] = expandable.pop(package_items)
        expandable.update(new_expandable)

        eta_lo = self._lower_bound(discovered, pruned, weights, k)
        return eta_lo, eta_up

    def _apply_beam(
        self,
        expandable: Dict[Tuple[int, ...], AggregationState],
        weights: np.ndarray,
        set_monotone: bool,
        tau: np.ndarray,
        phi: int,
    ) -> None:
        """Trim Q+ to the configured beam width, keeping the best-bounded candidates.

        A no-op when ``beam_width`` is None or Q+ is small.  The empty package
        is always retained because it seeds the singletons of unaccessed items.
        """
        if self.beam_width is None or len(expandable) <= self.beam_width:
            return
        scored = []
        for items, state in expandable.items():
            if not items:
                continue
            bound = self._upper_exp(state, weights, set_monotone, tau, phi, force_first=True)
            scored.append((bound, items))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        keep = {items for _, items in scored[: self.beam_width]}
        keep.add(())
        for items in list(expandable.keys()):
            if items not in keep:
                del expandable[items]

    def _heap_lower_bound(
        self, new_items: Tuple[int, ...], utility: float, k: int
    ) -> float:
        """Maintain a size-k min-heap of reportable utilities; return the k-th best.

        Incremental companion of :meth:`_lower_bound` used inside the expansion
        loop so η_lo tightens as soon as new candidates are discovered, without
        rescanning the whole ``discovered`` map.  Returns ``-inf`` (or 0 under
        the paper rule) until k reportable candidates exist.
        """
        heap = self._top_heap
        if len(heap) < k:
            heapq.heappush(heap, utility)
        elif utility > heap[0]:
            heapq.heapreplace(heap, utility)
        if len(heap) < k:
            return 0.0 if self.paper_lower_bound else -np.inf
        return heap[0]

    def _lower_bound(
        self,
        discovered: Dict[Tuple[int, ...], float],
        pruned: Dict[Tuple[int, ...], AggregationState],
        weights: np.ndarray,
        k: int,
    ) -> float:
        """η_lo: utility of the k-th best package found so far."""
        if self.paper_lower_bound:
            utilities = sorted(
                (
                    self.evaluator.state_utility(state, weights)
                    for items, state in pruned.items()
                    if items
                ),
                reverse=True,
            )
            if len(utilities) < k:
                return 0.0
            return utilities[k - 1]
        heap = self._top_heap
        if len(heap) < k:
            return -np.inf
        return heap[0]

    # ------------------------------------------------------ upper-exp (Alg. 3)
    def _upper_exp(
        self,
        state: AggregationState,
        weights: np.ndarray,
        set_monotone: bool,
        tau: np.ndarray,
        phi: int,
        force_first: bool = False,
    ) -> float:
        """Upper bound on the utility of packages extending ``state`` (Algorithm 3).

        Pads the package with copies of the imaginary boundary item τ: all the
        way to φ items when the utility is set-monotone, otherwise only while
        the marginal gain stays positive (Lemma 3 guarantees the gains are
        non-increasing, so stopping at the first non-positive gain is safe).

        With ``force_first=True`` the first τ is added unconditionally, which
        turns the value into a bound over completions containing *at least one
        unaccessed item* — the quantity the termination test needs (the package
        itself is already accounted for in the lower bound once discovered).
        Returns ``-inf`` when ``force_first`` is requested but the package is
        already at the maximum size.

        Nullable ``min`` features are resolved per candidate here (see
        :func:`null_aware_boundary` for why they cannot be folded into τ): a
        null pad (NaN) keeps the candidate's current minimum, which beats
        lowering it toward τ for positive weights once a value exists, and
        beats introducing a τ value at all for negative weights while no
        value exists.
        """
        if self._null_min_feats:
            tau = tau.copy()
            for j in self._null_min_feats:
                has_value = np.isfinite(state.mins[j])
                if (weights[j] > 0 and has_value) or (
                    weights[j] < 0 and not has_value
                ):
                    tau[j] = np.nan
        current = state
        current_utility = self.evaluator.state_utility(current, weights)
        remaining = phi - current.size
        if force_first:
            if remaining <= 0:
                return -np.inf
            current = self.evaluator.state_add_values(current, tau)
            current_utility = self.evaluator.state_utility(current, weights)
            remaining -= 1
        for _ in range(remaining):
            padded = self.evaluator.state_add_values(current, tau)
            padded_utility = self.evaluator.state_utility(padded, weights)
            if not set_monotone and padded_utility - current_utility <= 0:
                return current_utility
            current = padded
            current_utility = padded_utility
        return current_utility

    # ----------------------------------------------------------------- results
    def _reportable(self, package_items: Tuple[int, ...]) -> bool:
        """Whether a discovered candidate may appear in the final result."""
        if not package_items:
            return False
        if self.predicates is None:
            return True
        return self.predicates.satisfied_by(
            Package(package_items), self.evaluator.catalog
        )

    def _collect_result(
        self,
        weights: np.ndarray,
        discovered: Dict[Tuple[int, ...], float],
        k: int,
        items_accessed: int,
        candidates_generated: int,
    ) -> PackageSearchResult:
        # Scores are recomputed canonically (not read back from the search's
        # path-dependent running states) so that the sequential and batch
        # searchers report bit-identical utilities for the same package.
        reportable = [items for items in discovered if self._reportable(items)]
        utilities = canonical_package_utilities(self.evaluator, reportable, weights)[
            :, 0
        ]
        top = sorted(
            range(len(reportable)), key=lambda i: (-utilities[i], reportable[i])
        )[:k]
        return PackageSearchResult(
            packages=[Package(reportable[i]) for i in top],
            utilities=[float(utilities[i]) for i in top],
            items_accessed=items_accessed,
            candidates_generated=candidates_generated,
        )
