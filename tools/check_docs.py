#!/usr/bin/env python
"""Documentation checker: run the docs' code and verify intra-repo links.

Two guarantees, enforced in CI (the ``docs`` job) and runnable locally:

1. **Snippets execute.**  Every fenced ```` ```python ```` block in the
   checked documents is executed.  Blocks within one document share a single
   namespace, in order, so later examples can use objects defined by earlier
   ones (exactly how a reader would type them into one interpreter).  Blocks
   run in a temporary working directory with ``src/`` importable, so examples
   that write files (session stores, results) do not litter the repo.
   A block can be opted out by placing ``<!-- docs-check: skip -->`` on the
   line directly above the opening fence (for illustrative pseudo-code such
   as constructor signatures).

2. **Intra-repo links resolve.**  Every relative markdown link target
   (``[text](path)``, no scheme, not a bare ``#anchor``) must exist on disk,
   resolved against the document's directory (fragments are stripped).

Usage::

    python tools/check_docs.py            # check the default document set
    python tools/check_docs.py README.md  # check specific files
"""

from __future__ import annotations

import glob
import os
import re
import sys
import tempfile
import traceback

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Documents checked by default: the README and the documentation layer
#: (snippets + links), plus the architecture/roadmap notes (links only —
#: their fenced blocks are ASCII diagrams, not python).
DEFAULT_DOCUMENTS = ["README.md", "docs/*.md", "DESIGN.md", "ROADMAP.md"]

SKIP_MARKER = "<!-- docs-check: skip -->"

FENCE_RE = re.compile(r"^```(\w*)\s*$")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def extract_python_blocks(text):
    """Yield ``(start_line, source)`` for each executable python block."""
    lines = text.splitlines()
    blocks = []
    in_block = False
    language = ""
    start = 0
    buffer = []
    skip_next = False
    for number, line in enumerate(lines, start=1):
        fence = FENCE_RE.match(line.strip())
        if fence and not in_block:
            in_block = True
            language = fence.group(1).lower()
            start = number + 1
            buffer = []
            block_skipped = skip_next
            skip_next = False
        elif line.strip() == "```" and in_block:
            in_block = False
            if language == "python" and not block_skipped:
                blocks.append((start, "\n".join(buffer)))
        elif in_block:
            buffer.append(line)
        else:
            if line.strip() == SKIP_MARKER:
                skip_next = True
            elif line.strip():
                skip_next = False
    return blocks


def check_snippets(path, text, errors):
    blocks = extract_python_blocks(text)
    if not blocks:
        return 0
    namespace = {"__name__": f"docs_check_{os.path.basename(path)}"}
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="docs-check-") as workdir:
        os.chdir(workdir)
        try:
            for start_line, source in blocks:
                try:
                    code = compile(source, f"{path}:{start_line}", "exec")
                    exec(code, namespace)  # noqa: S102 - the point of the check
                except Exception:
                    errors.append(
                        f"{path}:{start_line}: snippet failed\n"
                        + "".join(
                            "    " + ln + "\n"
                            for ln in traceback.format_exc().splitlines()[-6:]
                        )
                    )
                    return len(blocks)  # later blocks depend on this namespace
        finally:
            os.chdir(cwd)
    return len(blocks)


def check_links(path, text, errors):
    base = os.path.dirname(os.path.abspath(path))
    checked = 0
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        if target.startswith("#"):
            continue
        checked += 1
        resolved = os.path.normpath(os.path.join(base, target.split("#", 1)[0]))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link -> {target}")
    return checked


def main(argv):
    os.chdir(REPO_ROOT)
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    patterns = argv or DEFAULT_DOCUMENTS
    documents = []
    for pattern in patterns:
        matched = sorted(glob.glob(pattern))
        if not matched:
            print(f"error: no documents match {pattern!r}", file=sys.stderr)
            return 2
        documents.extend(matched)

    errors = []
    for path in documents:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        snippets = check_snippets(path, text, errors)
        links = check_links(path, text, errors)
        print(f"{path}: {snippets} snippet(s) executed, {links} link(s) checked")

    if errors:
        print("\n" + "\n".join(errors), file=sys.stderr)
        print(f"\ndocs check FAILED ({len(errors)} problem(s))", file=sys.stderr)
        return 1
    print("docs check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
