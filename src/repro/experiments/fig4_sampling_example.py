"""Figure 4: qualitative comparison of the three constrained samplers.

The paper draws 100 valid two-dimensional weight samples given 5000 packages
and 2 random preferences and plots accepted vs rejected draws for rejection,
importance and MCMC sampling.  This module reproduces the experiment and
reports, per sampler, how many raw draws were needed (and therefore how many
were wasted) to collect the requested number of valid samples — the
quantitative content behind the scatter plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.harness import (
    ExperimentScale,
    build_evaluator,
    random_package_vectors,
    random_preference_directions,
)
from repro.sampling.base import ConstraintSet, SamplePool
from repro.sampling.ens import pool_ens
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.importance import ImportanceSampler
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.sampling.rejection import RejectionSampler
from repro.utils.rng import ensure_rng


@dataclass
class SamplerComparison:
    """Per-sampler outcome of the Figure 4 experiment.

    Attributes
    ----------
    sampler:
        Short sampler name ("RS", "IS", "MS").
    valid_samples:
        Number of valid samples collected (the experiment's target).
    attempts:
        Raw draws / chain proposals used to collect them.
    acceptance_rate:
        ``valid_samples / attempts`` (or the chain's move acceptance for MS).
    effective_sample_size:
        Kish ENS of the resulting pool (equals ``valid_samples`` for
        unweighted pools).
    samples:
        The accepted sample matrix, retained so callers can plot the figure.
    """

    sampler: str
    valid_samples: int
    attempts: int
    acceptance_rate: float
    effective_sample_size: float
    samples: np.ndarray


def run_sampling_example(
    num_valid_samples: int = 100,
    num_packages: int = 5_000,
    num_preferences: int = 2,
    num_features: int = 2,
    dataset: str = "UNI",
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, SamplerComparison]:
    """Reproduce Figure 4: collect valid 2-D samples with RS, IS and MS.

    Returns a dict keyed by sampler short name.  The expected shape (verified
    by the benchmark assertions) is that rejection sampling needs the most raw
    draws, while the feedback-aware samplers waste far fewer.
    """
    scale = scale if scale is not None else ExperimentScale(seed=seed)
    rng = ensure_rng(seed)
    evaluator = build_evaluator(dataset, scale, num_features=num_features)
    _, vectors = random_package_vectors(
        evaluator, min(num_packages, scale.num_packages * 5), rng=rng
    )
    hidden = rng.uniform(-1.0, 1.0, num_features)
    directions = random_preference_directions(
        vectors, num_preferences, rng=rng, consistent_with=hidden
    )
    constraints = ConstraintSet(directions)
    prior = GaussianMixture.default_prior(num_features, rng=rng)

    samplers = {
        "RS": RejectionSampler(prior, rng=ensure_rng(seed + 1)),
        "IS": ImportanceSampler(prior, rng=ensure_rng(seed + 2)),
        "MS": MetropolisHastingsSampler(prior, rng=ensure_rng(seed + 3)),
    }

    results: Dict[str, SamplerComparison] = {}
    for name, sampler in samplers.items():
        pool: SamplePool = sampler.sample(num_valid_samples, constraints)
        attempts = int(pool.stats.get("attempts", pool.stats.get("chain_steps", pool.size)))
        acceptance = float(pool.stats.get("acceptance_rate", 1.0))
        results[name] = SamplerComparison(
            sampler=name,
            valid_samples=pool.size,
            attempts=attempts,
            acceptance_rate=acceptance,
            effective_sample_size=pool_ens(pool),
            samples=pool.samples,
        )
    return results


def summarise(results: Dict[str, SamplerComparison]) -> List[List]:
    """Rows (sampler, valid, attempts, acceptance, ENS) for display."""
    rows = []
    for name in ("RS", "IS", "MS"):
        if name not in results:
            continue
        entry = results[name]
        rows.append(
            [
                name,
                entry.valid_samples,
                entry.attempts,
                entry.acceptance_rate,
                entry.effective_sample_size,
            ]
        )
    return rows
