"""Hierarchical (quad-tree style) decomposition of weight space.

Section 3.3 of the paper notes that finding grid cells violating new feedback
"can be facilitated by organizing the cells into a hierarchical structure such
as a quad-tree" (citing Finkel & Bentley).  This module provides that
substrate: a 2^d-ary tree over the weight hypercube where an internal node
whose whole box violates a preference half-space prunes all of its descendant
cells at once.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.index.grid import GridCell
from repro.utils.validation import require_vector


class QuadTreeNode:
    """A node of the hierarchical weight-space decomposition.

    Each node covers an axis-aligned box (a :class:`GridCell`).  Leaf nodes are
    the unit of pruning; internal nodes exist to prune whole subtrees when the
    entire box lies outside a preference half-space.
    """

    __slots__ = ("cell", "children", "active")

    def __init__(self, cell: GridCell) -> None:
        self.cell = cell
        self.children: List["QuadTreeNode"] = []
        self.active = True

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    def subdivide(self) -> None:
        """Split the node's box into 2^d equal children (idempotent)."""
        if self.children:
            return
        self.children = [QuadTreeNode(child) for child in self.cell.split()]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "active" if self.active else "pruned"
        return f"QuadTreeNode({self.cell.lower}..{self.cell.upper}, {status})"


class QuadTree:
    """A depth-bounded 2^d-tree over the weight hypercube ``[-1, 1]^m``.

    Parameters
    ----------
    num_features:
        Dimensionality of weight space.
    depth:
        Number of subdivision levels; leaves form a ``2^depth`` per-dimension
        grid.
    bounds:
        Optional per-dimension (low, high) bounds, default ``(-1, 1)``.
    max_leaves:
        Safety cap on ``(2^depth)^num_features``.
    """

    def __init__(
        self,
        num_features: int,
        depth: int = 2,
        bounds: Optional[List[tuple]] = None,
        max_leaves: int = 250_000,
    ) -> None:
        if num_features <= 0:
            raise ValueError(f"num_features must be > 0, got {num_features}")
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        leaves = (2**depth) ** num_features
        if leaves > max_leaves:
            raise ValueError(
                f"quad-tree with {leaves} leaves exceeds the cap of {max_leaves}"
            )
        if bounds is None:
            bounds = [(-1.0, 1.0)] * num_features
        lower = tuple(float(lo) for lo, _ in bounds)
        upper = tuple(float(hi) for _, hi in bounds)
        self.num_features = num_features
        self.depth = depth
        self.root = QuadTreeNode(GridCell(lower, upper))
        self._grow(self.root, depth)

    def _grow(self, node: QuadTreeNode, remaining: int) -> None:
        if remaining == 0:
            return
        node.subdivide()
        for child in node.children:
            self._grow(child, remaining - 1)

    def leaves(self, active_only: bool = True) -> List[QuadTreeNode]:
        """All leaf nodes, optionally only those not pruned yet."""
        return [
            node
            for node in self._iter_nodes(self.root)
            if node.is_leaf and (node.active or not active_only)
        ]

    def _iter_nodes(self, node: QuadTreeNode) -> Iterator[QuadTreeNode]:
        yield node
        for child in node.children:
            yield from self._iter_nodes(child)

    def prune(self, direction: np.ndarray) -> int:
        """Prune every leaf whose box cannot satisfy ``w · direction >= 0``.

        Uses the hierarchy: if an internal node's whole box violates the
        half-space, its entire subtree is deactivated without visiting the
        leaves individually.  Returns the number of *leaves* newly pruned.
        """
        direction = require_vector(direction, "direction", length=self.num_features)
        return self._prune_node(self.root, direction)

    def _prune_node(self, node: QuadTreeNode, direction: np.ndarray) -> int:
        if not node.active:
            return 0
        if not node.cell.can_satisfy(direction):
            pruned = self._deactivate(node)
            return pruned
        if node.is_leaf:
            return 0
        return sum(self._prune_node(child, direction) for child in node.children)

    def _deactivate(self, node: QuadTreeNode) -> int:
        """Deactivate ``node`` and its subtree; return number of leaves affected."""
        count = 0
        stack = [node]
        while stack:
            current = stack.pop()
            if not current.active:
                continue
            current.active = False
            if current.is_leaf:
                count += 1
            stack.extend(current.children)
        return count

    def prune_all(self, directions: Iterable[np.ndarray]) -> int:
        """Apply :meth:`prune` for each direction; return total leaves pruned."""
        return sum(self.prune(direction) for direction in directions)

    def approximate_center(self) -> np.ndarray:
        """Mean centre of the still-active leaves (hypercube centre if none)."""
        active = self.leaves(active_only=True)
        if not active:
            return self.root.cell.center
        centers = np.stack([leaf.cell.center for leaf in active])
        return centers.mean(axis=0)

    def active_fraction(self) -> float:
        """Fraction of leaves still active."""
        total = self.leaves(active_only=False)
        if not total:
            return 0.0
        return len(self.leaves(active_only=True)) / len(total)
