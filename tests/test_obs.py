"""Unit tests for the telemetry layer (repro.obs).

Covers the satellite edge cases called out for the observability subsystem:
exact log-bucket boundary and percentile arithmetic, thread-safety of
counters under concurrent increments (the pool-shard fill path), span-tree
shape and parenting, tail-based sampling decisions, Prometheus text
exposition, and the honest-miss accounting API on the LRU cache.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    InMemoryTraceSink,
    JsonLinesTraceSink,
    LabeledFamily,
    MetricsRegistry,
    Telemetry,
    Tracer,
)
from repro.service.pool_cache import LruCache


# =================================================================== counters
class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_concurrent_increments_from_threads(self):
        """8 threads x 10k increments land exactly — the shard-fill contract.

        PoolShard.record_fill runs on thread-backend worker threads, so the
        counter's lock must make `inc` atomic; a torn read-modify-write
        would lose increments.
        """
        counter = Counter("c_total", "help")
        threads_n, per_thread = 8, 10_000

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == threads_n * per_thread

    def test_gauge_set_and_add(self):
        gauge = Gauge("g", "help")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3


# ================================================================= histograms
class TestHistogram:
    def test_boundaries_are_log_spaced(self):
        hist = Histogram("h_seconds", "help", lowest=1e-4, growth=2.0, buckets=4)
        assert hist.boundaries == (1e-4, 2e-4, 4e-4, 8e-4)

    def test_exact_percentiles_on_known_distribution(self):
        """Percentile = upper boundary of the bucket holding rank ceil(q*N)."""
        hist = Histogram("h_seconds", "help", lowest=1e-4, growth=2.0, buckets=4)
        for value in (0.5e-4, 1.5e-4, 3e-4, 6e-4):
            hist.observe(value)
        # Ranks over N=4: p50 -> rank 2 -> second bucket (le 2e-4);
        # p95/p99 -> rank 4 -> fourth bucket (le 8e-4).
        assert hist.percentile(0.50) == pytest.approx(2e-4)
        assert hist.percentile(0.95) == pytest.approx(8e-4)
        assert hist.percentile(0.99) == pytest.approx(8e-4)

    def test_overflow_bucket_reports_inf(self):
        hist = Histogram("h_seconds", "help", lowest=1e-4, growth=2.0, buckets=4)
        hist.observe(1.0)  # beyond the largest boundary
        assert hist.percentile(0.5) == math.inf

    def test_empty_histogram(self):
        hist = Histogram("h_seconds", "help")
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0

    def test_snapshot_tracks_sum_and_mean(self):
        hist = Histogram("h_seconds", "help", lowest=1e-4, growth=2.0, buckets=4)
        hist.observe(1e-4)
        hist.observe(3e-4)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(4e-4)
        assert snap["mean"] == pytest.approx(2e-4)

    def test_cumulative_bucket_counts_end_at_total(self):
        hist = Histogram("h_seconds", "help", lowest=1e-4, growth=2.0, buckets=2)
        for value in (0.5e-4, 1.5e-4, 99.0):
            hist.observe(value)
        pairs = hist.bucket_counts()
        assert pairs[-1] == (math.inf, 3)
        cumulative = [count for _le, count in pairs]
        assert cumulative == sorted(cumulative)


# ============================================================ labeled families
class TestLabeledFamily:
    def test_children_are_cached_per_label_values(self):
        family = LabeledFamily("f_total", "help", ("shard",), lambda n: Counter(n, ""))
        a = family.labels(shard="0")
        assert family.labels(shard="0") is a
        assert family.labels(shard="1") is not a

    def test_label_names_must_match_exactly(self):
        family = LabeledFamily("f_total", "help", ("shard",), lambda n: Counter(n, ""))
        with pytest.raises(ValueError):
            family.labels(wrong="0")

    def test_snapshot_keyed_by_label_pairs(self):
        family = LabeledFamily("f_total", "help", ("api",), lambda n: Counter(n, ""))
        family.labels(api="recommend").inc(2)
        assert family.snapshot() == {"api=recommend": 2.0}


# =================================================================== registry
class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total", "help") is registry.counter("a_total", "x")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("a_total", "help")

    def test_labeled_unlabeled_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help")
        with pytest.raises(ValueError):
            registry.counter("a_total", "help", labels=("shard",))

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests", labels=("api",)).labels(
            api="recommend"
        ).inc(3)
        registry.gauge("live", "Live sessions").set(7)
        hist = registry.histogram("lat_seconds", "Latency")
        hist.observe(1e-4)
        text = registry.render_prometheus()
        assert '# TYPE req_total counter' in text
        assert 'req_total{api="recommend"} 3.0' in text
        assert "live 7.0" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("e_total", "help", labels=("msg",)).labels(
            msg='quote " and \\ slash'
        ).inc()
        text = registry.render_prometheus()
        assert 'msg="quote \\" and \\\\ slash"' in text

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "help")


# ===================================================================== tracer
class TestTracer:
    def make(self, **kwargs) -> Tracer:
        kwargs.setdefault("slow_ms", 0.0)  # keep everything by default
        kwargs.setdefault("sample_every", 1)
        return Tracer(InMemoryTraceSink(), **kwargs)

    def test_span_tree_parenting(self):
        tracer = self.make()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        (trace,) = tracer.sink.drain()
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["root"]["parent_id"] is None
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["grandchild"]["parent_id"] == by_name["child"]["span_id"]
        assert by_name["sibling"]["parent_id"] == by_name["root"]["span_id"]

    def test_trace_and_span_ids_are_deterministic(self):
        tracer = self.make()
        for _ in range(2):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        first, second = tracer.sink.drain()
        assert first["trace_id"] == "t-000001"
        assert second["trace_id"] == "t-000002"
        assert [s["span_id"] for s in first["spans"]] == ["s-0001", "s-0002"]

    def test_record_child_backdates(self):
        tracer = self.make()
        with tracer.span("root"):
            span = tracer.record_child("fill", 0.25, worker_pid=1234)
            assert span.duration_seconds == 0.25
        (trace,) = tracer.sink.drain()
        fill = next(s for s in trace["spans"] if s["name"] == "fill")
        assert fill["attrs"]["worker_pid"] == 1234
        assert fill["duration_ms"] == 250.0

    def test_record_child_without_open_trace_is_noop(self):
        tracer = self.make()
        assert tracer.record_child("orphan", 0.1) is None

    def test_end_span_out_of_order_raises(self):
        tracer = self.make()
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        with pytest.raises(RuntimeError):
            tracer.end_span(outer)

    def test_error_status_and_keep(self):
        tracer = Tracer(InMemoryTraceSink(), slow_ms=1e9, sample_every=1000)
        with pytest.raises(KeyError):
            with tracer.span("root"):
                raise KeyError("boom")
        (trace,) = tracer.sink.drain()
        assert trace["kept_because"] == "error"
        assert trace["spans"][0]["status"] == "error"

    def test_sampling_keeps_every_nth(self):
        tracer = Tracer(InMemoryTraceSink(), slow_ms=1e9, sample_every=3)
        for _ in range(9):
            with tracer.span("root"):
                pass
        kept = tracer.sink.drain()
        assert len(kept) == 3
        assert all(t["kept_because"] == "sampled" for t in kept)
        assert tracer.traces_sampled_out == 6

    def test_slow_traces_always_kept(self):
        tracer = Tracer(InMemoryTraceSink(), slow_ms=0.0, sample_every=1000)
        with tracer.span("root"):
            pass
        (trace,) = tracer.sink.drain()
        assert trace["kept_because"] == "slow"

    def test_mark_keep_wins_over_sampling(self):
        tracer = Tracer(InMemoryTraceSink(), slow_ms=1e9, sample_every=1000)
        with tracer.span("root"):
            tracer.mark_keep()
        (trace,) = tracer.sink.drain()
        assert trace["kept_because"] == "alarm"

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonLinesTraceSink(str(path))
        tracer = Tracer(sink, slow_ms=0.0, sample_every=1)
        with tracer.span("root", session_id="s1"):
            with tracer.span("child"):
                pass
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        trace = json.loads(lines[0])
        assert trace["root"] == "root"
        assert [s["name"] for s in trace["spans"]] == ["root", "child"]


# ================================================================== telemetry
class TestTelemetry:
    def test_disabled_instance_spans_are_noops(self):
        telemetry = Telemetry.disabled()
        with telemetry.span("anything") as span:
            assert span is None
        telemetry.annotate(ignored=1)
        assert telemetry.record_child("x", 0.1) is None
        assert telemetry.drain_traces() == []

    def test_alarms_count_even_when_disabled(self):
        telemetry = Telemetry.disabled()
        telemetry.alarm("replay_divergence", session_id="s1")
        assert telemetry.alarm_count("replay_divergence") == 1
        assert telemetry.drain_traces() == []  # no trace when disabled

    def test_alarm_inside_trace_pins_it(self):
        telemetry = Telemetry(slow_ms=1e9, sample_every=1000)
        with telemetry.span("root"):
            telemetry.alarm("dispatcher_shed", pending=8)
        (trace,) = telemetry.drain_traces()
        assert trace["kept_because"] == "alarm"
        names = [s["name"] for s in trace["spans"]]
        assert "alarm.dispatcher_shed" in names

    def test_alarm_outside_trace_emits_single_span_trace(self):
        telemetry = Telemetry(slow_ms=1e9, sample_every=1000)
        telemetry.alarm("worker_restart", backend="process")
        (trace,) = telemetry.drain_traces()
        assert trace["root"] == "alarm.worker_restart"
        assert trace["kept_because"] == "alarm"

    def test_observables_are_folded_in_sorted_order(self):
        telemetry = Telemetry()
        telemetry.register_observable("b", lambda: 2)
        telemetry.register_observable("a", lambda: 1)
        assert list(telemetry.observables()) == ["a", "b"]


# ======================================================= honest-miss satellite
class TestLruCacheRecordMiss:
    def test_record_miss_counts_without_lookup(self):
        cache = LruCache(maxsize=4)
        cache.put("k", "v")
        assert cache.peek("k") == "v"  # peek: no stats
        assert cache.stats.misses == 0
        cache.record_miss()
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0
        assert cache.stats.hit_rate == 0.0
