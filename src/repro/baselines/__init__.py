"""Baseline approaches the paper compares against conceptually.

* :mod:`repro.baselines.skyline` — skyline items and fixed-size skyline
  packages (Zhang & Chomicki; Li et al.), whose main drawback — the number of
  skyline packages explodes — motivates the paper's utility-based approach.
* :mod:`repro.baselines.hard_constraint` — hard-budget package composition
  (Xie et al., RecSys 2010), the other alternative the introduction discusses.
"""

from repro.baselines.skyline import skyline_items, skyline_packages
from repro.baselines.hard_constraint import HardConstraintRecommender

__all__ = ["skyline_items", "skyline_packages", "HardConstraintRecommender"]
