"""Benchmarks for the online serving engine: throughput under concurrent load.

Not a paper figure — this is the serving-layer evaluation the ROADMAP's
production north star needs.  A :class:`TrafficSimulator` drives the
:class:`RecommendationEngine` with ≥ 50 concurrent simulated sessions and the
suite compares two configurations on the identical-prefix workload (every
session shares the same feedback prefix — the cold-start burst that dominates
real onboarding traffic):

* **shared** — sample-pool cache + top-k cache + batched sampling enabled;
* **per-session** — every session samples and searches for itself, which is
  exactly what running N independent ``PackageRecommender`` loops costs.

The asserted headline: sharing wins by at least 2× sessions/sec (in practice
far more — the shared work is amortised over all N sessions).  A smaller
heterogeneous workload is also reported: with fully independent users the
caches only help on the empty-prefix first round, bounding the benefit.
"""

from __future__ import annotations

import pytest

from repro.core.elicitation import ElicitationConfig
from repro.experiments.harness import build_evaluator
from repro.service import EngineConfig, RecommendationEngine
from repro.simulation.traffic import TrafficSimulator, WorkloadSpec

#: Acceptance floor: the shared engine must at least double throughput.
MIN_SPEEDUP = 2.0

NUM_SESSIONS = 60
NUM_ROUNDS = 3


def _elicitation_config() -> ElicitationConfig:
    return ElicitationConfig(
        k=3,
        num_random=2,
        max_package_size=3,
        num_samples=150,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=150,
        search_items_cap=60,
        seed=0,
    )


def _engine(scale, shared: bool) -> RecommendationEngine:
    evaluator = build_evaluator("UNI", scale, num_features=4)
    if shared:
        config = EngineConfig(elicitation=_elicitation_config(), seed=1)
    else:
        config = EngineConfig(
            elicitation=_elicitation_config(),
            seed=1,
            pool_cache_size=0,
            topk_cache_size=0,
            use_batch_sampler=False,
        )
    return RecommendationEngine(evaluator.catalog, evaluator.profile, config)


@pytest.fixture(scope="module")
def service_reports(scale):
    from bench_utils import record_ci_metric, write_results

    reports = {}
    reports["shared"] = TrafficSimulator(
        _engine(scale, shared=True),
        WorkloadSpec(
            num_sessions=NUM_SESSIONS, rounds=NUM_ROUNDS,
            identical_prefix=True, batched=True,
        ),
    ).run()
    reports["per-session"] = TrafficSimulator(
        _engine(scale, shared=False),
        WorkloadSpec(
            num_sessions=NUM_SESSIONS, rounds=NUM_ROUNDS,
            identical_prefix=True, batched=False,
        ),
    ).run()
    reports["shared-heterogeneous"] = TrafficSimulator(
        _engine(scale, shared=True),
        WorkloadSpec(
            num_sessions=20, rounds=2, identical_prefix=False, batched=True,
        ),
    ).run()

    speedup = (
        reports["shared"].sessions_per_sec / reports["per-session"].sessions_per_sec
    )
    header = (
        "Serving engine — throughput under concurrent elicitation sessions\n"
        f"identical-prefix workload: {NUM_SESSIONS} sessions x {NUM_ROUNDS} rounds; "
        f"shared/per-session speedup = {speedup:.1f}x"
    )
    body = "\n\n".join(
        report.format(label) for label, report in reports.items()
    )
    print("\n" + header + "\n" + body)
    write_results("bench_service.txt", header + "\n\n" + body)
    record_ci_metric(
        "service_shared_vs_per_session_speedup",
        speedup,
        MIN_SPEEDUP,
        source="benchmarks/test_bench_service.py",
        description=(
            f"Shared-engine sessions/sec over per-session sampling, "
            f"{NUM_SESSIONS} identical-prefix sessions x {NUM_ROUNDS} rounds"
        ),
    )
    return reports


def test_service_load_runs_at_scale(service_reports):
    """≥ 50 concurrent sessions complete every round with feedback applied."""
    for report in service_reports.values():
        assert report.rounds_served == report.num_sessions * report.rounds
        assert report.feedback_events == report.rounds_served
    assert service_reports["shared"].num_sessions >= 50


def test_shared_engine_beats_per_session_sampling(service_reports):
    """The shared sample-pool cache must at least double sessions/sec."""
    shared = service_reports["shared"]
    baseline = service_reports["per-session"]
    speedup = shared.sessions_per_sec / baseline.sessions_per_sec
    assert speedup >= MIN_SPEEDUP, (
        f"shared engine speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
        f"({shared.sessions_per_sec:.2f} vs {baseline.sessions_per_sec:.2f} sessions/sec)"
    )


def test_identical_prefix_workload_hits_the_pool_cache(service_reports):
    stats = service_reports["shared"].engine_stats
    assert stats["pool_cache"]["hit_rate"] >= 0.9
    # One pool build per distinct feedback prefix, not one per session.
    builds = stats["pools_sampled"] + stats["pools_maintained"]
    assert builds <= NUM_ROUNDS + 1


def test_per_session_engine_never_uses_the_caches(service_reports):
    stats = service_reports["per-session"].engine_stats
    assert stats["pool_cache"]["hits"] == 0
    assert stats["topk_cache"]["hits"] == 0


def test_latency_percentiles_are_reported(service_reports):
    for report in service_reports.values():
        assert report.p50_round_latency_ms > 0
        assert report.p95_round_latency_ms >= report.p50_round_latency_ms
