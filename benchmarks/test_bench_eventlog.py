"""Benchmark: event-sourced session store (append log + replay restore).

Not a paper figure — this measures the event-log tentpole along its two
acceptance axes:

* ``eventlog_replay_equivalence`` — the correctness headline.  An engine
  backed by an :class:`EventLogStore` with a 2-slot active table (every
  serve churns the LRU, so most rounds are served by sessions restored via
  log replay) is driven side-by-side with a reference engine that never
  swaps out.  After the scripted rounds the store is *crashed* — no flush,
  no close, a torn half-record appended to the active segment — reopened,
  and a fresh engine serves more rounds from recovery.  The metric is the
  fraction of presented rounds (replay-heavy phase + post-crash phase) that
  are bit-identical to the reference; the floor is 1.0, i.e. a single
  diverging package fails the gate.
* ``eventlog_swap_out_speedup`` — the cost headline.  A swap-out under the
  event log appends one small CRC-framed checkpoint event (fsync batched);
  under the SQLite blob store it serialises the full session blob into a
  row and commits.  Both paths are timed writing what the engine actually
  writes for the same session (the checkpoint vs the pool-reference blob);
  the floor is 1.0x — the log must never be slower than the blob path it
  replaces.

Crash recovery replays from the seed with no checkpoint, so the workload
runs ``maintain_on_miss=False`` (pool fills are key-deterministic; a
maintained pool's content is in-memory state a crash destroys by design).
The regenerated table lands in ``results/bench_eventlog.txt``.
"""

from __future__ import annotations

import glob
import time

import pytest

from repro.core.elicitation import ElicitationConfig
from repro.experiments.harness import build_evaluator
from repro.service import (
    EngineConfig,
    EventLogStore,
    RecommendationEngine,
    SqliteSessionStore,
)

#: Acceptance floors (pinned in tools/bench_gate.py).
MIN_REPLAY_EQUIVALENCE = 1.0
MIN_SWAP_OUT_SPEEDUP = 1.0

NUM_SESSIONS = 4
NUM_ROUNDS = 4  # served against a churning 2-slot table
NUM_POST_CRASH_ROUNDS = 2  # served after torn-tail recovery
NUM_SWAP_WRITES = 400


def _engine(scale, store=None, max_active=None) -> RecommendationEngine:
    evaluator = build_evaluator("UNI", scale, num_features=4)
    elicitation = ElicitationConfig(
        k=2,
        num_random=2,
        max_package_size=3,
        num_samples=scale.num_samples,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=100,
        search_items_cap=40,
        seed=0,
    )
    overrides = {"max_active_sessions": max_active} if max_active else {}
    config = EngineConfig(
        elicitation=elicitation,
        seed=1,
        maintain_on_miss=False,  # crash recovery rebuilds pools from keys
        **overrides,
    )
    return RecommendationEngine(evaluator.catalog, evaluator.profile, config)


def _serve_and_compare(engine, reference, sids, rids, rounds):
    """Serve ``rounds`` rounds per session on both engines, counting matches."""
    matched = total = 0
    for round_index in range(rounds):
        for sid, rid in zip(sids, rids):
            served = [p.items for p in engine.recommend(sid).presented]
            expected = [p.items for p in reference.recommend(rid).presented]
            total += 1
            matched += served == expected
            click = round_index % 2
            engine.feedback(sid, click)
            reference.feedback(rid, click)
    return matched, total


@pytest.fixture(scope="module")
def eventlog_report(scale, tmp_path_factory):
    from bench_utils import record_ci_metric, write_results

    root = tmp_path_factory.mktemp("bench_eventlog")

    # -------- replay equivalence: churn-heavy serving vs a reference engine
    store = EventLogStore(str(root / "store"), fsync_every=64)
    engine = _engine(scale, max_active=2)
    engine_with_store = RecommendationEngine(
        engine.catalog, engine.profile, engine.config, store=store
    )
    reference = _engine(scale)
    sids = [engine_with_store.create_session(seed=500 + i) for i in range(NUM_SESSIONS)]
    rids = [reference.create_session(seed=500 + i) for i in range(NUM_SESSIONS)]
    matched, total = _serve_and_compare(
        engine_with_store, reference, sids, rids, NUM_ROUNDS
    )
    replayed_live = engine_with_store.sessions_replayed
    swapped_out = engine_with_store.sessions.sessions_swapped_out

    # -------- simulated crash: no flush, no close, torn record on the tail
    segment = sorted(glob.glob(str(root / "store" / "events" / "*.log")))[-1]
    with open(segment, "ab") as handle:
        handle.write(b"\x40\x00\x00\x00\xde\xad\xbe\xefTORN-TAIL")
    recovered_store = EventLogStore(str(root / "store"), fsync_every=64)
    truncated = recovered_store.log.truncated_bytes
    recovered = RecommendationEngine(
        engine.catalog, engine.profile, engine.config, store=recovered_store
    )
    crash_matched, crash_total = _serve_and_compare(
        recovered, reference, sids, rids, NUM_POST_CRASH_ROUNDS
    )
    replayed_crash = recovered.sessions_replayed
    equivalence = (matched + crash_matched) / (total + crash_total)
    log_stats = recovered_store.describe()

    # -------- swap-out cost: checkpoint append vs SQLite full-blob save
    entry = recovered.sessions.acquire(sids[0])
    checkpoint = recovered._checkpoint_entry(entry)
    blob = recovered._snapshot_entry(entry, embed_pool=False)

    append_store = EventLogStore(str(root / "append"), fsync_every=64)
    append_store.log_session_created(
        sids[0], seed=500, created_at=entry.created_at
    )
    tick = time.perf_counter()
    for i in range(NUM_SWAP_WRITES):
        append_store.save(sids[0], dict(checkpoint, _last_access=float(i)))
    append_store.flush()
    log_seconds = time.perf_counter() - tick
    append_store.close()

    sqlite_store = SqliteSessionStore(str(root / "blobs.db"))
    tick = time.perf_counter()
    for i in range(NUM_SWAP_WRITES):
        sqlite_store.save(sids[0], dict(blob, _last_access=float(i)))
    sqlite_seconds = time.perf_counter() - tick
    sqlite_store.close()

    log_rate = NUM_SWAP_WRITES / log_seconds
    sqlite_rate = NUM_SWAP_WRITES / sqlite_seconds
    speedup = log_rate / sqlite_rate if sqlite_rate else 0.0

    header = (
        "Event-sourced session store — replay restore + append throughput\n"
        f"{NUM_SESSIONS} sessions x {NUM_ROUNDS} rounds on a 2-slot table, "
        f"then a simulated crash (torn tail truncated: {truncated} bytes) and "
        f"{NUM_POST_CRASH_ROUNDS} recovery rounds: replay equivalence "
        f"{equivalence:.3f} (floor {MIN_REPLAY_EQUIVALENCE}); swap-out "
        f"appends {speedup:.1f}x the SQLite blob rate "
        f"(floor {MIN_SWAP_OUT_SPEEDUP}x)"
    )
    body = "\n".join(
        [
            "[replay equivalence (asserted)]",
            f"  live churn: {matched}/{total} rounds bit-identical, "
            f"{replayed_live} replays, {swapped_out} swap-outs",
            f"  post-crash: {crash_matched}/{crash_total} rounds "
            f"bit-identical, {replayed_crash} replays after truncating "
            f"{truncated} torn bytes",
            f"  log: {log_stats['segments']} segment(s), "
            f"{log_stats['log_bytes']} bytes, "
            f"{log_stats['events_indexed']} events indexed",
            "",
            "[swap-out write path (asserted)]",
            f"  event log:  {log_rate:,.0f} checkpoints/s "
            f"({NUM_SWAP_WRITES} appends in {log_seconds * 1e3:.1f}ms, "
            f"fsync every 64)",
            f"  sqlite:     {sqlite_rate:,.0f} blobs/s "
            f"({NUM_SWAP_WRITES} saves in {sqlite_seconds * 1e3:.1f}ms, "
            f"WAL commit per save)",
            f"  speedup: {speedup:.2f}x",
        ]
    )
    print("\n" + header + "\n\n" + body)
    write_results("bench_eventlog.txt", header + "\n\n" + body)
    record_ci_metric(
        "eventlog_replay_equivalence",
        equivalence,
        MIN_REPLAY_EQUIVALENCE,
        source="benchmarks/test_bench_eventlog.py",
        description=(
            f"Fraction of presented rounds bit-identical to a never-swapped "
            f"reference engine, across {total} replay-heavy rounds and "
            f"{crash_total} rounds served after a simulated crash with a "
            f"torn tail record"
        ),
        unit="",
    )
    record_ci_metric(
        "eventlog_swap_out_speedup",
        speedup,
        MIN_SWAP_OUT_SPEEDUP,
        source="benchmarks/test_bench_eventlog.py",
        description=(
            "Event-log checkpoint append rate over SQLite full-blob save "
            "rate for the same session's swap-out payload"
        ),
    )
    recovered_store.close()
    store.close()
    return {
        "equivalence": equivalence,
        "speedup": speedup,
        "replayed": replayed_live + replayed_crash,
        "swapped_out": swapped_out,
        "truncated": truncated,
    }


def test_replay_serves_bit_identical_rounds(eventlog_report):
    """The acceptance headline: every round matches, including post-crash."""
    assert eventlog_report["equivalence"] >= MIN_REPLAY_EQUIVALENCE


def test_workload_actually_exercised_replay(eventlog_report):
    """The equivalence number is vacuous unless churn forced real replays."""
    assert eventlog_report["replayed"] >= NUM_SESSIONS
    assert eventlog_report["swapped_out"] > 0
    assert eventlog_report["truncated"] > 0


def test_checkpoint_appends_beat_blob_saves(eventlog_report):
    assert eventlog_report["speedup"] >= MIN_SWAP_OUT_SPEEDUP
