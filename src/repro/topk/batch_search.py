"""Vectorised batch ``Top-k-Pkg``: one shared walk for many weight vectors.

With the serving engine's shared sample-pool cache in place, the dominant
per-round cost is running ``Top-k-Pkg`` once per posterior weight sample —
N near-identical package searches over one catalog.  The sequential
:class:`~repro.topk.package_search.TopKPackageSearcher` spends almost all of
that time in per-candidate Python: every accessed item triggers
``state_utility``/``upper-exp`` calls for every queue entry, repeated N times.

:class:`BatchTopKPackageSearcher` restructures the search so the repeated
work is shared and the per-candidate work is NumPy row-wise:

* **Shared walk.**  Each weight vector keeps its own round-robin cursor over
  the per-feature sorted lists (its access order and boundary vector τ are
  exactly the sequential algorithm's), but the cursors advance in lockstep
  *rounds* — one new item per still-active vector per round.
* **Shared candidate pool.**  Candidate packages are kept once, in
  struct-of-arrays form (``sums`` / ``mins`` / ``maxs`` / ``sizes`` matrices),
  instead of once per weight vector.  Utilities of every candidate under
  every weight vector are matrix products; the ``upper-exp`` bound of §4
  (padding a candidate with copies of the boundary item τ) is evaluated for
  all candidates × vectors at once from a closed form over the aggregation
  types (sum/avg parts are affine in the number of pads r, min/max parts are
  constant for r ≥ 1), so one small loop over r = 1..φ replaces the
  per-candidate Python padding loop.
* **Cross-round candidate carryover.**  With a :class:`CandidateCarryover`
  attached, :meth:`BatchTopKPackageSearcher.search_pools` can seed a fresh
  walk with the candidate packages a previous round materialised (``carry_in``)
  and retain this round's candidates for the next (``carry_out``).  Seeds are
  hints, not answers: each one is re-validated against the catalog, rebuilt
  null-aware from the current feature matrix, and re-scored under the current
  weight matrix, so its *true* utilities tighten η_lo from step one and its
  growable states re-enter Q+ where the ordinary bound recomputation prunes
  whatever the click invalidated.  Results are identical with or without
  carryover; consecutive post-click searches just walk only the invalidated
  frontier instead of restarting from scratch.
* **Active-mask early termination.**  Per vector v the usual bounds are
  maintained: ``η_lo[v]`` is the k-th best utility among discovered
  reportable candidates, ``η_up[v]`` the best ``upper-exp`` bound over the
  expandable queue.  As soon as ``η_up[v] ≤ η_lo[v]`` (or v's lists are
  exhausted, or its item cap is reached) v leaves the active mask: its
  cursor stops and it stops contributing columns to the bound matrices,
  while the remaining vectors keep walking.

Exactness.  The shared pool is a *superset* of every per-vector search's
candidate set: a candidate leaves the expandable queue only when **every**
active vector's bound says none of its completions can reach that vector's
top-k, and each vector's own termination test is unchanged.  Since the
sequential searcher (in its default exact configuration) and the batch
searcher both return the true top-k by utility with ties broken by package
id — and both report utilities through the same canonical scoring helper —
their results match exactly, package by package and score by score.  See
``tests/test_topk_batch.py`` for the property-style equivalence suite and
DESIGN.md ("Batched top-k search") for the data layout.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.packages import Package, PackageEvaluator
from repro.core.predicates import PredicateSet
from repro.core.profiles import Aggregation
from repro.core.utility import LinearUtility
from repro.topk.package_search import (
    PackageSearchResult,
    TopKPackageSearcher,
    canonical_package_vectors,
    null_aware_boundary,
)
from repro.topk.sorted_lists import FilteredOrderSource, SortedItemLists

__all__ = ["BatchTopKPackageSearcher", "CandidateCarryover"]


class CandidateCarryover:
    """Bounded LRU store of candidate packages carried across searches.

    After a click, most of a session's sample pool survives (§3.4) and the
    weight posterior moves only a little — so the candidate packages the
    previous round's sorted-list walk materialised are excellent *seeds* for
    the next round's walk: their true utilities initialise η_lo near its
    final value and their aggregation states re-enter the expandable queue,
    leaving only the click-invalidated frontier to be walked from scratch.

    Entries are keyed by an opaque string (the serving layer uses the pool's
    fingerprint key, giving per-session lineage through the engine's
    ``carry_key`` tracking) and hold plain item-tuples, not search state:
    every seed is re-validated against the current catalog and re-scored
    under the current weight matrix before it influences anything, so a
    carried candidate can only *speed up* a search, never change its result
    (see :meth:`BatchTopKPackageSearcher.search_pools`).  A stale, evicted
    or even corrupted entry therefore degrades to a slower exact search.

    Seeds are not free: every carried candidate occupies a row of the shared
    struct-of-arrays pool for the whole walk, so each per-round matrix
    operation pays for it whether or not it helps.  The per-key cap bounds
    that cost; harvests order the *reportable* packages (the union of every
    vector's top-k — exactly the candidates whose true utilities tighten
    η_lo) ahead of the remaining queue frontier, so truncation keeps the
    valuable prefix.

    Not thread-safe; callers serialise access (the engine's serving path is
    synchronous per round, like its other caches).
    """

    def __init__(
        self, capacity: int = 128, max_candidates_per_key: int = 256
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if max_candidates_per_key <= 0:
            raise ValueError(
                f"max_candidates_per_key must be > 0, got {max_candidates_per_key}"
            )
        self.capacity = capacity
        self.max_candidates_per_key = max_candidates_per_key
        self._entries: "OrderedDict[str, Tuple[Tuple[int, ...], ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: Total candidates injected as seeds into searches (post-validation).
        self.candidates_carried = 0
        #: Seeds dropped by validation (out-of-catalog items, oversized, ...).
        self.candidates_invalidated = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def fetch(self, key: str) -> Tuple[Tuple[int, ...], ...]:
        """The candidates stored under ``key`` (LRU-refreshing; () on miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return ()
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: str, candidates: Sequence[Tuple[int, ...]]) -> None:
        """Retain ``candidates`` under ``key`` (truncated, LRU-evicting)."""
        self._entries[key] = tuple(candidates[: self.max_candidates_per_key])
        self._entries.move_to_end(key)
        self.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def discard(self, key: str) -> bool:
        """Drop ``key``'s entry if present; returns whether it existed."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def as_dict(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "candidates_carried": self.candidates_carried,
            "candidates_invalidated": self.candidates_invalidated,
        }


class _BatchState:
    """Mutable per-run state: cursors, bounds, and the shared candidate queue.

    The expandable queue Q+ is held in struct-of-arrays form so candidate ×
    vector quantities come out of matrix products: ``sums``/``mins``/``maxs``/
    ``sizes`` describe each candidate's aggregation state exactly like
    :class:`~repro.core.packages.AggregationState`, while ``su``/``sa`` cache
    the candidate's sum-/avg-feature dot products against every weight vector
    (the τ-independent part of the ``upper-exp`` bound).  Row 0 is always the
    empty package — the seed for singletons of still-unseen items.
    """

    def __init__(self, searcher: "BatchTopKPackageSearcher", W: np.ndarray, k: int):
        ev = searcher.evaluator
        m = ev.num_features
        n = W.shape[0]
        aggs = ev.profile.aggregations
        self.k = k
        self.W = W
        self.phi = ev.max_package_size
        self.sum_mask = np.array([a is Aggregation.SUM for a in aggs])
        self.avg_mask = np.array([a is Aggregation.AVG for a in aggs])
        self.min_feats = [j for j, a in enumerate(aggs) if a is Aggregation.MIN]
        self.max_feats = [j for j, a in enumerate(aggs) if a is Aggregation.MAX]
        self.Wn = W / ev.normalisers  # utility = raw aggregate @ (w / normalisers)
        self.Wn_sum = self.Wn * self.sum_mask
        self.Wn_avg = self.Wn * self.avg_mask
        self.set_mono = np.array(
            [LinearUtility(W[v]).is_set_monotone(ev.profile) for v in range(n)]
        )
        self.lists = [
            SortedItemLists(
                ev.catalog, W[v], order_provider=searcher._order_source
            )
            for v in range(n)
        ]
        self.active = np.ones(n, dtype=bool)
        self.taus = np.zeros((n, m))

        self.discovered: set = set()  # non-empty candidate item-tuples, shared
        self.reportable: List[Tuple[int, ...]] = []
        self.top_vals = np.full((n, k), -np.inf)  # per-vector k best utilities
        self.eta_lo = np.full(n, -np.inf)

        self.q_items: List[Tuple[int, ...]] = [()]
        self.q_sums = np.zeros((1, m))
        self.q_mins = np.full((1, m), np.inf)
        self.q_maxs = np.full((1, m), -np.inf)
        self.q_sizes = np.zeros(1, dtype=int)
        self.q_slots = np.full((1, self.phi), -1, dtype=np.int64)
        self.q_su = np.zeros((1, n))
        self.q_sa = np.zeros((1, n))
        self.slot_of: Dict[int, int] = {}  # item index -> membership slot

    def observe(self, utilities: np.ndarray) -> None:
        """Fold newly discovered reportable utilities into η_lo (k-th best)."""
        stacked = np.concatenate([self.top_vals, utilities.T], axis=1)
        self.top_vals = np.partition(stacked, stacked.shape[1] - self.k, axis=1)[
            :, -self.k:
        ]
        self.eta_lo = self.top_vals.min(axis=1)

    def append_queue(self, items, sums, mins, maxs, sizes, slots) -> None:
        self.q_items.extend(items)
        self.q_sums = np.concatenate([self.q_sums, sums])
        self.q_mins = np.concatenate([self.q_mins, mins])
        self.q_maxs = np.concatenate([self.q_maxs, maxs])
        self.q_sizes = np.concatenate([self.q_sizes, sizes])
        self.q_slots = np.concatenate([self.q_slots, slots])
        self.q_su = np.concatenate([self.q_su, sums @ self.Wn_sum.T])
        self.q_sa = np.concatenate([self.q_sa, sums @ self.Wn_avg.T])

    def shrink_queue(self, keep: np.ndarray) -> None:
        """Restrict the queue to ``keep`` (boolean mask or index array)."""
        rows = np.flatnonzero(keep) if keep.dtype == bool else np.asarray(keep)
        self.q_items = [self.q_items[i] for i in rows]
        self.q_sums, self.q_mins = self.q_sums[rows], self.q_mins[rows]
        self.q_maxs, self.q_sizes = self.q_maxs[rows], self.q_sizes[rows]
        self.q_slots = self.q_slots[rows]
        self.q_su, self.q_sa = self.q_su[rows], self.q_sa[rows]


class BatchTopKPackageSearcher:
    """Run ``Top-k-Pkg`` for a whole matrix of weight vectors in one pass.

    Parameters
    ----------
    evaluator:
        Binds the item catalog, the aggregate profile and the maximum package
        size φ (same contract as :class:`TopKPackageSearcher`).
    predicates:
        Optional package-schema predicates (§7); candidates violating them are
        discovered but never reported.
    max_candidates:
        Safety cap on the number of *distinct* candidate packages materialised
        across the whole batch; when exceeded the search stops and reports the
        best packages found so far (graceful degradation, as in the sequential
        searcher).
    beam_width:
        Optional *per-vector* beam, matching the sequential searcher's
        parameter: the shared expandable queue is capped at ``beam_width ×
        (number of distinct non-zero weight vectors)``, so a batch of N
        vectors gets the same total candidate budget N sequential beam
        searches would have.  When the cap binds, the candidates with the
        best ``upper-exp`` bound under *any* active vector are kept.
        ``None`` (default) keeps the search exact.  A finite beam is a
        bounded-work anytime mode — not bit-compatible with the sequential
        searcher's independent per-vector queues, since the budget is pooled.
    max_items_accessed:
        Optional per-vector cap on items read from the sorted lists; a vector
        reaching the cap terminates with its best-so-far results.
    carryover:
        Optional :class:`CandidateCarryover` enabling cross-round candidate
        reuse through the ``carry_in`` / ``carry_out`` arguments of
        :meth:`search_pools`.  Carried candidates are seeds only — every one
        is re-validated and re-scored before use — so results are identical
        with or without a carryover cache; only the walk length changes.
    catalog_predicate:
        Optional item-eligibility predicate
        (:class:`repro.data.columnar.CatalogPredicate`) pushed down into
        every cursor's sorted lists, exactly as in the sequential searcher;
        carried-over seed candidates containing ineligible items are dropped
        at validation.

    Notes
    -----
    :meth:`search_many` deduplicates identical weight rows (MCMC pools repeat
    the chain state on rejection) and delegates all-zero rows to the
    sequential searcher's deterministic zero-weight path, so degenerate pools
    behave identically to per-vector search.
    """

    def __init__(
        self,
        evaluator: PackageEvaluator,
        predicates: Optional[PredicateSet] = None,
        max_candidates: int = 200_000,
        beam_width: Optional[int] = None,
        max_items_accessed: Optional[int] = None,
        carryover: Optional[CandidateCarryover] = None,
        catalog_predicate=None,
    ) -> None:
        self.evaluator = evaluator
        self.predicates = predicates
        self.carryover = carryover
        if max_candidates <= 0:
            raise ValueError(f"max_candidates must be > 0, got {max_candidates}")
        self.max_candidates = max_candidates
        if beam_width is not None and beam_width <= 0:
            raise ValueError(f"beam_width must be > 0 or None, got {beam_width}")
        self.beam_width = beam_width
        if max_items_accessed is not None and max_items_accessed <= 0:
            raise ValueError(
                f"max_items_accessed must be > 0 or None, got {max_items_accessed}"
            )
        self.max_items_accessed = max_items_accessed
        self._null_columns = evaluator.catalog.null_mask.any(axis=0)
        self.catalog_predicate = catalog_predicate
        if catalog_predicate is None:
            self._eligible_mask: Optional[np.ndarray] = None
        else:
            mask = np.asarray(
                catalog_predicate.eligible_mask(evaluator.catalog), dtype=bool
            )
            if mask.shape != (evaluator.catalog.num_items,):
                raise ValueError(
                    "catalog_predicate mask has shape "
                    f"{mask.shape}, expected ({evaluator.catalog.num_items},)"
                )
            self._eligible_mask = mask
        self._order_source = FilteredOrderSource(
            evaluator.catalog, self._eligible_mask
        )
        #: Summary of the most recent :meth:`_search_flat` call (row counts,
        #: dedup rate, items accessed, carried seeds) — read by the engine's
        #: telemetry layer to annotate ``search.topk`` spans.  ``None`` until
        #: a search runs; plain data, never consulted by the search itself.
        self.last_search_stats: Optional[dict] = None

    # -------------------------------------------------------------- public API
    def search(self, weights: np.ndarray, k: int) -> PackageSearchResult:
        """Single-vector convenience wrapper around :meth:`search_many`."""
        return self.search_many(np.atleast_2d(np.asarray(weights, dtype=float)), k)[0]

    def search_many(
        self, weights_matrix: np.ndarray, k: int
    ) -> List[PackageSearchResult]:
        """Top-k packages for every row of ``weights_matrix``, walking once.

        Returns one :class:`PackageSearchResult` per input row, in row order.
        ``items_accessed`` is per vector (its own cursor's count);
        ``candidates_generated`` is the shared pool's distinct-candidate
        count, which every row of the batch reports.
        """
        results, _harvest = self._search_flat(weights_matrix, k, seeds=None)
        return results

    def search_pools(
        self,
        matrices: Sequence[np.ndarray],
        k: int,
        carry_in: Optional[Sequence[Optional[str]]] = None,
        carry_out: Optional[Sequence[Optional[str]]] = None,
    ) -> List[List[PackageSearchResult]]:
        """Top-k packages for several weight matrices in one shared walk.

        The across-session entry point: ``matrices`` holds one ``(N_i, m)``
        weight matrix per sample pool (e.g. one per cache-missing serving
        session), and all of them are searched as a single concatenated batch
        — one sorted-list walk, one shared candidate pool, one deduplication
        of identical weight rows *across* pools (heterogeneous sessions still
        overlap heavily: MCMC pools repeat states, and sessions one click
        apart share most of their posterior mass).  Results come back split
        per input matrix, in row order, and each row's result is the same as
        :meth:`search_many` of its own matrix would return (per-vector
        termination only depends on the vector's own bounds; a finite
        ``beam_width`` pools the candidate budget over the whole batch, so
        bounded-work runs may differ — the same caveat batching within one
        pool already carries).

        ``carry_in`` / ``carry_out`` (one optional key per matrix, requires a
        :class:`CandidateCarryover`) enable the cross-round fast path: the
        candidates stored under every non-``None`` ``carry_in`` key seed the
        shared walk (the walk is shared, so merged seeds are sound for every
        pool in the batch), and the candidates this walk materialises are
        stored under every non-``None`` ``carry_out`` key for the next round.
        Seeding never changes results: each seed is validated against the
        catalog, its aggregation state is rebuilt from the current feature
        matrix (null-aware, like live expansion), its *true* utilities
        initialise η_lo, and its still-growable states re-enter the
        expandable queue where the per-round bound recomputation re-validates
        them against the moved τs — so invalidated candidates are pruned
        exactly as organically discovered ones are.
        """
        mats = [np.atleast_2d(np.asarray(m, dtype=float)) for m in matrices]
        for matrix in mats:
            if matrix.ndim != 2 or matrix.shape[1] != self.evaluator.num_features:
                raise ValueError(
                    f"every pool matrix must have shape (N, "
                    f"{self.evaluator.num_features}), got {matrix.shape}"
                )
        if not mats:
            return []
        for name, keys in (("carry_in", carry_in), ("carry_out", carry_out)):
            if keys is not None and len(keys) != len(mats):
                raise ValueError(
                    f"{name} must hold one key (or None) per matrix: "
                    f"got {len(keys)} keys for {len(mats)} matrices"
                )
        seeds = self._gather_seeds(carry_in)
        flat, harvest = self._search_flat(np.concatenate(mats, axis=0), k, seeds)
        if self.carryover is not None and carry_out is not None and harvest:
            for key in dict.fromkeys(key for key in carry_out if key is not None):
                self.carryover.store(key, harvest)
        bounds = np.cumsum([0] + [m.shape[0] for m in mats])
        return [flat[bounds[i]:bounds[i + 1]] for i in range(len(mats))]

    def _gather_seeds(
        self, carry_in: Optional[Sequence[Optional[str]]]
    ) -> List[Tuple[int, ...]]:
        """Deterministically ordered union of the carried candidate tuples."""
        if self.carryover is None or carry_in is None:
            return []
        merged: "dict" = {}
        for key in dict.fromkeys(key for key in carry_in if key is not None):
            for candidate in self.carryover.fetch(key):
                merged.setdefault(candidate, None)
        return list(merged)

    def _search_flat(
        self,
        weights_matrix: np.ndarray,
        k: int,
        seeds: Optional[Sequence[Tuple[int, ...]]],
    ):
        """(results, carry harvest) of one deduplicated batch search."""
        matrix = np.atleast_2d(np.asarray(weights_matrix, dtype=float))
        if matrix.ndim != 2 or matrix.shape[1] != self.evaluator.num_features:
            raise ValueError(
                f"weights_matrix must have shape (N, {self.evaluator.num_features}), "
                f"got {matrix.shape}"
            )
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        if matrix.shape[0] == 0:
            return [], None
        unique, inverse = np.unique(matrix, axis=0, return_inverse=True)
        unique_results, harvest = self._search_unique(unique, k, seeds)
        rows = int(matrix.shape[0])
        unique_rows = int(unique.shape[0])
        self.last_search_stats = {
            "rows": rows,
            "unique_rows": unique_rows,
            "dedup_rate": round(1.0 - unique_rows / rows, 4),
            "items_accessed": int(
                sum(result.items_accessed for result in unique_results)
            ),
            "seeds": len(seeds) if seeds else 0,
        }
        return [unique_results[j] for j in np.ravel(inverse)], harvest

    # ---------------------------------------------------------- orchestration
    def _search_unique(
        self,
        W: np.ndarray,
        k: int,
        seeds: Optional[Sequence[Tuple[int, ...]]] = None,
    ):
        results: List[Optional[PackageSearchResult]] = [None] * W.shape[0]
        harvest: Optional[List[Tuple[int, ...]]] = None
        zero_rows = [v for v in range(W.shape[0]) if not np.any(W[v])]
        nonzero_rows = [v for v in range(W.shape[0]) if np.any(W[v])]
        if zero_rows:
            # All-zero weights have no sorted-list walk; reuse the sequential
            # searcher's deterministic smallest-ids path so results agree.
            fallback = TopKPackageSearcher(
                self.evaluator,
                predicates=self.predicates,
                max_candidates=self.max_candidates,
                catalog_predicate=self.catalog_predicate,
            )
            for v in zero_rows:
                results[v] = fallback.search(W[v], k)
        if nonzero_rows:
            batch, harvest = self._run(W[nonzero_rows], k, seeds)
            for v, result in zip(nonzero_rows, batch):
                results[v] = result
        return results, harvest  # type: ignore[return-value]

    # ------------------------------------------------------------- core search
    def _run(
        self,
        W: np.ndarray,
        k: int,
        seeds: Optional[Sequence[Tuple[int, ...]]] = None,
    ):
        state = _BatchState(self, W, k)
        if seeds:
            self._seed_candidates(state, seeds)
        while state.active.any():
            new_items = self._advance_cursors(state)
            if not state.active.any():
                break
            for item, cols in new_items.items():
                self._expand_with_item(state, item, np.asarray(cols, dtype=int))
            self._prune_and_terminate(state)
            if len(state.discovered) > self.max_candidates:
                break
        return self._collect(state), self._harvest(state)

    def _seed_candidates(
        self, state: _BatchState, seeds: Sequence[Tuple[int, ...]]
    ) -> None:
        """Inject carried candidates into a fresh walk (exactness-preserving).

        Each seed is re-materialised from the *current* catalog: aggregation
        states are rebuilt null-aware (sum of non-null contributions, ±inf
        sentinels when a feature saw no value — exactly like
        :meth:`_expand_with_item` folding one item at a time), membership
        slots are registered so live expansion cannot re-add a member item,
        true utilities of the reportable seeds tighten η_lo immediately, and
        still-growable seeds join the expandable queue where the end-of-round
        bound recomputation re-validates them against the current τs.  Seeds
        that no longer exist in the catalog (or exceed φ) are dropped —
        carryover after catalog or configuration drift degrades to an
        ordinary cold walk, never to a wrong answer.
        """
        catalog = self.evaluator.catalog
        num_items = catalog.num_items
        valid: List[Tuple[int, ...]] = []
        dropped = 0
        for seed in seeds:
            candidate = tuple(sorted({int(i) for i in seed}))
            if (
                not candidate
                or len(candidate) > state.phi
                or candidate[0] < 0
                or candidate[-1] >= num_items
            ):
                dropped += 1
                continue
            if self._eligible_mask is not None and not self._eligible_mask[
                list(candidate)
            ].all():
                dropped += 1
                continue
            if candidate in state.discovered:
                continue
            state.discovered.add(candidate)
            valid.append(candidate)
        if self.carryover is not None:
            self.carryover.candidates_invalidated += dropped
            self.carryover.candidates_carried += len(valid)
        if not valid:
            return
        m = self.evaluator.num_features
        count = len(valid)
        sums = np.zeros((count, m))
        mins = np.full((count, m), np.inf)
        maxs = np.full((count, m), -np.inf)
        sizes = np.fromiter((len(t) for t in valid), dtype=int, count=count)
        slots = np.full((count, state.phi), -1, dtype=np.int64)
        for row, candidate in enumerate(valid):
            values = catalog.features[list(candidate)]
            null = np.isnan(values)
            sums[row] = np.where(null, 0.0, values).sum(axis=0)
            mins[row] = np.where(null, np.inf, values).min(axis=0)
            maxs[row] = np.where(null, -np.inf, values).max(axis=0)
            for position, item in enumerate(candidate):
                slots[row, position] = state.slot_of.setdefault(
                    item, len(state.slot_of)
                )
        reportable = np.array([self._reportable(t) for t in valid])
        if reportable.any():
            rows = np.flatnonzero(reportable)
            state.reportable.extend(valid[i] for i in rows)
            raw = self._raw_vectors(
                state, sums[rows], mins[rows], maxs[rows], sizes[rows]
            )
            state.observe(raw @ state.Wn.T)
        grow = np.flatnonzero(sizes < state.phi)
        if grow.size:
            state.append_queue(
                [valid[i] for i in grow],
                sums[grow], mins[grow], maxs[grow], sizes[grow], slots[grow],
            )

    def _harvest(self, state: _BatchState) -> List[Tuple[int, ...]]:
        """The candidates worth carrying out of a finished walk.

        Discovered reportable candidates first (they include every vector's
        winners — the η_lo seeds that matter most next round), then the
        surviving expandable frontier (growable prefixes whose bounds still
        held at termination); deduplicated, order-deterministic.  Truncation
        to the carryover's per-key cap happens at store time.
        """
        merged: "dict" = {}
        for candidate in state.reportable:
            merged.setdefault(candidate, None)
        for candidate in state.q_items[1:]:
            merged.setdefault(candidate, None)
        return list(merged)

    def _advance_cursors(self, state: _BatchState) -> Dict[int, List[int]]:
        """Read one new item per active vector; returns item -> accessing vectors."""
        new_items: Dict[int, List[int]] = {}
        for v in np.flatnonzero(state.active):
            if (
                self.max_items_accessed is not None
                and state.lists[v].num_accessed >= self.max_items_accessed
            ):
                state.active[v] = False
                continue
            item = state.lists[v].next_item()
            if item is None:
                state.active[v] = False
                continue
            state.taus[v] = null_aware_boundary(
                state.lists[v].boundary_vector(), state.W[v],
                self.evaluator.profile, self._null_columns,
            )
            new_items.setdefault(item, []).append(v)
        return new_items

    # --------------------------------------------------------------- expansion
    def _expand_with_item(
        self, state: _BatchState, item: int, cols: np.ndarray
    ) -> None:
        """One vectorised round of Algorithm 4 for one newly accessed item.

        ``cols`` are the weight vectors that accessed ``item`` this round: the
        extension gate (``max(utility, upper-exp) ≥ η_lo``) is evaluated
        against exactly those columns, mirroring the sequential algorithm, and
        an extension is materialised when any of them passes.  Extensions
        created for one vector stay visible to all: their exact utilities
        tighten every vector's η_lo and they compete in every vector's final
        ranking.
        """
        slot = state.slot_of.setdefault(item, len(state.slot_of))
        values = self.evaluator.catalog.features[item]
        null = np.isnan(values)
        contrib = np.where(null, 0.0, values)

        rows = np.flatnonzero(
            (state.q_sizes < state.phi) & ~(state.q_slots == slot).any(axis=1)
        )
        if rows.size == 0:
            return

        ext_sums = state.q_sums[rows] + contrib
        ext_mins = np.where(
            null, state.q_mins[rows], np.minimum(state.q_mins[rows], contrib)
        )
        ext_maxs = np.where(
            null, state.q_maxs[rows], np.maximum(state.q_maxs[rows], contrib)
        )
        ext_sizes = state.q_sizes[rows] + 1

        raw = self._raw_vectors(state, ext_sums, ext_mins, ext_maxs, ext_sizes)
        util_cols = raw @ state.Wn[cols].T  # own utilities, gate columns only
        bound_cols = self._padded_bounds(
            state,
            ext_sums @ state.Wn_sum[cols].T,
            ext_sums @ state.Wn_avg[cols].T,
            ext_mins, ext_maxs, ext_sizes, cols,
        )
        passes = np.maximum(util_cols, bound_cols) >= state.eta_lo[cols][None, :]
        kept = np.flatnonzero(passes.any(axis=1))
        if kept.size == 0:
            return

        new_rows: List[int] = []
        new_tuples: List[Tuple[int, ...]] = []
        for r in kept:
            package_items = tuple(sorted(state.q_items[rows[r]] + (item,)))
            if package_items in state.discovered:
                continue
            state.discovered.add(package_items)
            new_rows.append(r)
            new_tuples.append(package_items)
        if not new_rows:
            return
        new_idx = np.asarray(new_rows, dtype=int)

        # Fold the new candidates' utilities (under every vector) into η_lo.
        rep_mask = np.array([self._reportable(t) for t in new_tuples])
        if rep_mask.any():
            state.reportable.extend(
                t for t, keep in zip(new_tuples, rep_mask) if keep
            )
            state.observe(raw[new_idx[rep_mask]] @ state.Wn.T)

        # Queue the still-growable new candidates; the end-of-round bound
        # recomputation prunes any that cannot reach a surviving top-k.
        grow = np.flatnonzero(ext_sizes[new_idx] < state.phi)
        if grow.size:
            g = new_idx[grow]
            slots = state.q_slots[rows[g]].copy()
            slots[np.arange(g.size), ext_sizes[g] - 1] = slot
            state.append_queue(
                [new_tuples[i] for i in grow],
                ext_sums[g], ext_mins[g], ext_maxs[g], ext_sizes[g], slots,
            )

    # ------------------------------------------------- pruning and termination
    def _prune_and_terminate(self, state: _BatchState) -> None:
        """Recompute queue bounds against the moved τs; prune, beam, terminate."""
        act = np.flatnonzero(state.active)
        bounds = self._padded_bounds(
            state,
            state.q_su[:, act], state.q_sa[:, act],
            state.q_mins, state.q_maxs, state.q_sizes, act,
        )
        keep = (bounds >= state.eta_lo[act][None, :]).any(axis=1)
        keep[0] = True  # the empty package always stays
        eta_up = bounds[keep].max(axis=0)
        state.active[act[eta_up <= state.eta_lo[act]]] = False
        if not keep.all():
            bounds = bounds[keep]
            state.shrink_queue(keep)
        if self.beam_width is not None:
            # beam_width is per vector (as in the sequential searcher); the
            # shared queue gets the batch's pooled budget so minority vectors
            # are not squeezed N times harder than they would be alone.
            shared_cap = self.beam_width * state.W.shape[0]
            if len(state.q_items) - 1 > shared_cap:
                scored = bounds.max(axis=1)
                scored[0] = np.inf  # pin the empty package
                top = np.argsort(-scored, kind="stable")[: shared_cap + 1]
                state.shrink_queue(np.sort(top))

    # ------------------------------------------------------------------ bounds
    def _padded_bounds(
        self,
        state: _BatchState,
        su: np.ndarray,
        sa: np.ndarray,
        mins: np.ndarray,
        maxs: np.ndarray,
        sizes: np.ndarray,
        cols: np.ndarray,
    ) -> np.ndarray:
        """Vectorised Algorithm 3 with ``force_first`` (≥ 1 copy of τ).

        Padding a candidate with r copies of the boundary item τ_v decomposes
        by aggregation type: sum features contribute ``su + r·a(v)``, avg
        features ``(sa + r·b(v)) / (size + r)``, and min/max features are
        constant in r once one τ is added (``min(mins, τ)`` / ``max(maxs,
        τ)``; the ±inf empty-state sentinels make the no-value case collapse
        to τ itself).  Set-monotone vectors take the full padding r = φ−size;
        the rest take the maximum over r, which matches the sequential
        first-non-positive-gain stop whenever the gains are non-increasing
        (Lemma 3) and is a valid — merely looser — upper bound otherwise.
        Rows already at size φ stay at −inf: no completion containing an
        unaccessed item exists for them.

        NaN entries of τ mark features where a *null* contribution dominates
        the boundary value (see :func:`null_aware_boundary`): they add nothing
        to the sum/avg parts and leave the min/max running aggregates — and
        hence their "no value yet" sentinels — untouched, exactly like
        ``AggregationState.add`` treats a null.
        """
        tau_c = state.taus[cols]  # (V, m)
        wn_c = state.Wn[cols]
        tau_filled = np.where(np.isnan(tau_c), 0.0, tau_c)
        a = np.einsum("vj,vj->v", tau_filled, state.Wn_sum[cols])
        b = np.einsum("vj,vj->v", tau_filled, state.Wn_avg[cols])

        mm = np.zeros_like(su)
        for j in state.min_feats:
            padded = np.minimum.outer(mins[:, j], tau_c[:, j])  # no value -> τ
            if self._null_columns[j]:
                # Nullable min features, resolved per candidate exactly like
                # the sequential _upper_exp: a positive weight keeps the
                # candidate's minimum once one exists (a null pad beats
                # lowering it toward τ), a negative weight skips the feature
                # entirely while no value exists (aggregate stays 0).
                has_value = np.isfinite(mins[:, j])[:, None]
                keep = np.where(has_value, mins[:, j][:, None], 0.0)
                padded = np.where(
                    (wn_c[:, j] > 0)[None, :],
                    np.where(has_value, keep, padded),
                    np.where(has_value, padded, 0.0),
                )
            mm += padded * wn_c[:, j][None, :]
        for j in state.max_feats:
            # NaN τ entries (nullable max under a negative weight) keep the
            # candidate's maximum — or, with no value yet, an aggregate of 0.
            tau_j = np.where(np.isnan(tau_c[:, j]), -np.inf, tau_c[:, j])
            padded = np.maximum.outer(maxs[:, j], tau_j)
            padded[~np.isfinite(padded)] = 0.0
            mm += padded * wn_c[:, j][None, :]

        remaining = state.phi - sizes  # (C,)
        best = np.full(su.shape, -np.inf)
        mono = state.set_mono[cols]
        for r in range(1, state.phi + 1):
            valid = r <= remaining
            if not valid.any():
                break
            val = (
                su + r * a[None, :]
                + (sa + r * b[None, :]) / (sizes + r)[:, None]
                + mm
            )
            np.maximum(best, val, out=best, where=valid[:, None] & ~mono[None, :])
            final = remaining == r
            if final.any() and mono.any():
                np.copyto(best, val, where=final[:, None] & mono[None, :])
        return best

    # ----------------------------------------------------------------- helpers
    def _raw_vectors(
        self,
        state: _BatchState,
        sums: np.ndarray,
        mins: np.ndarray,
        maxs: np.ndarray,
        sizes: np.ndarray,
    ) -> np.ndarray:
        """Unnormalised aggregate vectors for a block of candidate states."""
        raw = np.where(state.sum_mask, sums, 0.0)
        if state.avg_mask.any():
            sizes_col = np.maximum(sizes, 1)[:, None]
            raw = np.where(state.avg_mask, sums / sizes_col, raw)
        for j in state.min_feats:
            raw[:, j] = np.where(np.isfinite(mins[:, j]), mins[:, j], 0.0)
        for j in state.max_feats:
            raw[:, j] = np.where(np.isfinite(maxs[:, j]), maxs[:, j], 0.0)
        return raw

    def _reportable(self, package_items: Tuple[int, ...]) -> bool:
        if not package_items:
            return False
        if self.predicates is None:
            return True
        return self.predicates.satisfied_by(
            Package(package_items), self.evaluator.catalog
        )

    # ------------------------------------------------------------------ results
    def _collect(self, state: _BatchState) -> List[PackageSearchResult]:
        """Rank the discovered reportable candidates per vector.

        Canonical package vectors are computed once; per vector the utilities
        are accumulated feature by feature (bit-identical to
        :func:`canonical_package_utilities`, without materialising a
        candidates × vectors matrix) and only the candidates that can reach
        rank k — the k best by utility plus everything tied with the k-th —
        are sorted, so the collect phase stays cheap even when the search
        discovered far more candidates than it reports.
        """
        reportable = state.reportable
        count = len(reportable)
        vectors = canonical_package_vectors(self.evaluator, reportable)
        id_rank = np.empty(count, dtype=int)
        id_rank[sorted(range(count), key=lambda i: reportable[i])] = np.arange(count)
        results = []
        for v in range(state.W.shape[0]):
            utilities = np.zeros(count)
            for j in range(self.evaluator.num_features):
                utilities += vectors[:, j] * state.W[v, j]
            if count > state.k:
                kth = -np.partition(-utilities, state.k - 1)[state.k - 1]
                contenders = np.flatnonzero(utilities >= kth)
            else:
                contenders = np.arange(count)
            order = contenders[
                np.lexsort((id_rank[contenders], -utilities[contenders]))
            ][: state.k]
            results.append(
                PackageSearchResult(
                    packages=[Package(reportable[i]) for i in order],
                    utilities=[float(utilities[i]) for i in order],
                    items_accessed=state.lists[v].num_accessed,
                    candidates_generated=len(state.discovered),
                )
            )
        return results
