"""Online serving engine: many concurrent elicitation sessions, shared work.

The paper's system elicits preferences from one user at a time; this package
is the serving layer that carries the same machinery to many users at once,
the first step toward the production north star in ROADMAP.md.  The key
observation is that per-user state (the preference DAG, click counters, RNG)
is tiny, while the expensive artifacts — the constrained sample pool over
``Pw`` and the per-sample ``Top-k-Pkg`` searches — depend only on the
*constraint set* the feedback induces.  Sessions whose feedback prefixes are
identical therefore share one pool and one top-k result, keyed by a canonical
:meth:`~repro.sampling.base.ConstraintSet.fingerprint`.

* :class:`RecommendationEngine` — request/response facade
  (``create_session`` / ``recommend`` / ``feedback`` / ``close``) over the
  shared pool repository, a shared top-k result cache, and batched sampling
  across pending sessions.
* :class:`PoolRepository` / :class:`ShardedPoolRepository` — the
  fingerprint-partitioned pool state layer: pool keys consistent-hash across
  N shards, each owning its pools, LRU budget, pinned set and fill
  construction, with fills grouped per shard and runnable in parallel via a
  :class:`ShardBackend` (inline, threads, or worker processes).  Each fill is
  described by a picklable :class:`~repro.sampling.fillspec.FillSpec` —
  plain data resolved by the module-level ``build_sampler`` — which is what
  lets :class:`ProcessShardBackend` ship fills across the process boundary
  and escape the GIL.  Fills are key-deterministic, so shard count, backend,
  and placement never change what is served.
* :class:`WarmStartPlanner` — precomputes and pins the empty-prefix pool and
  the top-K first-click pools at engine start so cold sessions never sample.
* :class:`PoolAdapter` + :class:`ConstraintSimilarityIndex` (approximate pool
  reuse) — on a repository miss, find live donor pools whose constraint sets
  are near the target (prefix / one-click-apart / high-overlap),
  importance-reweight them with the §7 noise-model likelihood ratio, and
  serve the adapted pool when its effective sample size clears a configured
  floor — trading a full sampling run for one matrix pass
  (``EngineConfig(pool_adaptation=AdaptationConfig(...))``).
* :class:`SessionManager` — bounded active-session table with TTL expiry and
  LRU eviction; evicted sessions are transparently swapped out to a
  :class:`SessionStore` (JSON files or SQLite in WAL mode) and restored on
  their next request.  Swap-out snapshots reference pools by fingerprint
  (stored once per key in the store's pool table) — snapshot compaction.
* :class:`EventLogStore` + :class:`EventLog` — the event-sourced store: an
  append-only, CRC-framed, fsync-batched log of ``session_created`` /
  ``recommend_served`` / ``feedback`` events is the source of truth; a
  swap-out appends a ``(log offset, pool reference)`` checkpoint instead of
  a blob, restore *replays* the click history through the deterministic
  elicitation path (bit-identical to never having swapped out), crash
  recovery truncates the torn tail and replays the intact prefix, and one
  :meth:`EventLogStore.compact` sweep drives both log-segment retention and
  pool-table garbage collection.  :func:`mine_click_prefixes` +
  :meth:`RecommendationEngine.warm_start_from_log` frequency-rank the
  *observed* click prefixes to warm depth-2+ pools no enumeration could
  foresee.
* :class:`AsyncRecommendationServer` + :class:`MicroBatchDispatcher` — the
  asyncio front-end: concurrent ``recommend`` requests accumulate in a
  micro-batch window (max size / max wait, with a ``max_pending``
  backpressure cap) and dispatch together through ``recommend_many``, so
  concurrency feeds the batched sampler and the across-session top-k walk
  instead of serialising on them.
* :class:`~repro.simulation.traffic.TrafficSimulator` /
  :class:`~repro.simulation.traffic.AsyncTrafficSimulator` (in the simulation
  package) — closed- and open-loop load generators used by the serving
  benchmarks.
"""

from repro.core.noise import NoiseModel
from repro.service.adaptation import (
    AdaptationConfig,
    AdaptationStats,
    ConstraintSimilarityIndex,
    DonorCandidate,
    PoolAdapter,
)
from repro.service.async_server import AsyncRecommendationServer
from repro.service.dispatcher import (
    DispatcherClosedError,
    DispatcherOverloadedError,
    DispatcherStats,
    MicroBatchDispatcher,
)
from repro.service.eventlog import (
    EventLog,
    EventLogCorruptionError,
    EventLogStore,
    LogPosition,
    PrefixStat,
    ReplayDivergenceError,
    RetentionReport,
    mine_click_prefixes,
)
from repro.sampling.fillspec import FillContext, FillSpec, build_sampler, execute_fill
from repro.service.pool_cache import CacheStats, LruCache, SamplePoolCache
from repro.service.pool_repository import (
    InlineShardBackend,
    LogWarmStartReport,
    PoolFillJob,
    PoolRepository,
    PoolShard,
    ProcessShardBackend,
    SHARD_BACKEND_NAMES,
    ShardBackend,
    ShardedPoolRepository,
    ThreadShardBackend,
    WarmStartPlanner,
    WarmStartReport,
    build_shard_backend,
    parse_shard_backend,
)
from repro.service.store import (
    JsonSessionStore,
    MemorySessionStore,
    SessionStore,
    SqliteSessionStore,
)
from repro.service.session_manager import SessionEntry, SessionManager
from repro.service.engine import (
    EngineConfig,
    EngineStats,
    PoolUnavailableError,
    RecommendationEngine,
    SessionExpiredError,
    SessionNotFoundError,
)

__all__ = [
    "AdaptationConfig",
    "AdaptationStats",
    "ConstraintSimilarityIndex",
    "DonorCandidate",
    "NoiseModel",
    "PoolAdapter",
    "PoolUnavailableError",
    "AsyncRecommendationServer",
    "DispatcherClosedError",
    "DispatcherOverloadedError",
    "DispatcherStats",
    "MicroBatchDispatcher",
    "CacheStats",
    "LruCache",
    "SamplePoolCache",
    "FillContext",
    "FillSpec",
    "InlineShardBackend",
    "LogWarmStartReport",
    "PoolFillJob",
    "PoolRepository",
    "PoolShard",
    "ProcessShardBackend",
    "SHARD_BACKEND_NAMES",
    "ShardBackend",
    "ShardedPoolRepository",
    "ThreadShardBackend",
    "WarmStartPlanner",
    "WarmStartReport",
    "build_sampler",
    "build_shard_backend",
    "execute_fill",
    "parse_shard_backend",
    "SessionStore",
    "MemorySessionStore",
    "JsonSessionStore",
    "SqliteSessionStore",
    "EventLog",
    "EventLogCorruptionError",
    "EventLogStore",
    "LogPosition",
    "PrefixStat",
    "ReplayDivergenceError",
    "RetentionReport",
    "mine_click_prefixes",
    "SessionEntry",
    "SessionManager",
    "EngineConfig",
    "EngineStats",
    "RecommendationEngine",
    "SessionNotFoundError",
    "SessionExpiredError",
]
