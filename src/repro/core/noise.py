"""Noisy-feedback model (§7).

A user's online interaction is noisy: clicks can be accidental, or the user
may change their mind.  The paper adopts the standard model in which each
feedback preference is independently *correct* with probability ψ.  Two places
consume this model:

* the samplers: a candidate weight vector violating ``x`` feedback preferences
  is rejected with probability ``1 - (1 - ψ)^x`` (the probability that at
  least one of the violated preferences is correct) instead of always;
* the simulated user: with probability ``1 - ψ`` the click goes to a random
  presented package instead of the truly best one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_probability


@dataclass(frozen=True)
class NoiseModel:
    """Independent per-feedback correctness with probability ``psi``.

    ``psi = 1`` is the noise-free setting (every feedback is a hard
    constraint); lower values soften the constraints accordingly.
    """

    psi: float = 1.0

    def __post_init__(self) -> None:
        require_probability(self.psi, "psi")

    # -------------------------------------------------------------- sampling
    def rejection_probability(self, num_violations: int) -> float:
        """Probability that a sample violating ``num_violations`` feedbacks is rejected.

        Equals ``1 - (1 - ψ)^x``: the chance that at least one of the violated
        feedback preferences was actually correct.
        """
        if num_violations < 0:
            raise ValueError(
                f"num_violations must be >= 0, got {num_violations}"
            )
        if num_violations == 0:
            return 0.0
        return 1.0 - (1.0 - self.psi) ** num_violations

    def should_reject(self, num_violations: int, rng: RngLike = None) -> bool:
        """Sample the rejection decision for a weight vector."""
        probability = self.rejection_probability(num_violations)
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return bool(ensure_rng(rng).random() < probability)

    # ------------------------------------------------------------------ users
    def corrupt_choice(self, best_index: int, num_options: int, rng: RngLike = None) -> int:
        """The index the (noisy) user actually clicks.

        With probability ψ the truly best option is clicked; otherwise a
        uniformly random presented option is clicked instead.
        """
        if num_options <= 0:
            raise ValueError(f"num_options must be > 0, got {num_options}")
        if not 0 <= best_index < num_options:
            raise ValueError(
                f"best_index must be within [0, {num_options}), got {best_index}"
            )
        generator = ensure_rng(rng)
        if self.psi >= 1.0 or generator.random() < self.psi:
            return best_index
        return int(generator.integers(0, num_options))

    @property
    def is_noise_free(self) -> bool:
        """Whether the model degenerates to hard constraints (ψ = 1)."""
        return self.psi >= 1.0
