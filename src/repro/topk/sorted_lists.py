"""Per-feature sorted item lists with round-robin access (§4, Algorithm 2).

This module is the *access structure* of the paper's upper/lower-bound scheme
for ``Top-k-Pkg``.  The searchers never scan the catalog: they pull items one
at a time from per-feature sorted lists, and everything they know about the
not-yet-seen part of the catalog is summarised by one vector.

**Sorted access (Algorithm 2).**  ``Top-k-Pkg`` accesses items "in their
descending utility order" per feature: for a feature with a positive weight
the list is sorted by decreasing value, for a negative weight by increasing
value (a sorted column can be read in either direction, so only one physical
ordering per feature is kept; zero-weight features get no list at all since
they cannot influence utility).  The lists are consumed round-robin so no
single feature runs far ahead of the others.

**The boundary vector τ and why it bounds.**  τ holds, per feature, the value
of the last accessed item of that feature's list.  Because each list is read
in desirability order, *every unaccessed item is feature-wise dominated by
τ*: on each feature its value is no more desirable than τ's.  An imaginary
item with feature vector τ therefore upper-bounds the utility contribution of
any unaccessed item, which is exactly what the search needs to bound
undiscovered packages:

* the **upper bound** ``η_up`` (``upper-exp``, Algorithm 3) pads a candidate
  package with copies of the τ item — no completion of the candidate using
  unaccessed items can do better;
* the **lower bound** ``η_lo`` is the k-th best utility among packages
  already discovered (exact values, no bounding needed);
* the search stops the moment ``η_up ≤ η_lo``: the best still-undiscovered
  package provably cannot crack the current top-k, usually long before the
  lists are exhausted.

As the walk advances, τ only moves toward less desirable values, so ``η_up``
tightens monotonically while ``η_lo`` rises — the two bounds close in on each
other from both sides.

One subtlety: a *null* feature value contributes nothing to any aggregate,
and "contributing nothing" can be more desirable than τ itself (e.g. on a
negative-weight sum feature).  The searchers therefore post-process τ with
:func:`repro.topk.package_search.null_aware_boundary` before padding with it;
this module only reports the raw per-list boundary values.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.items import ItemCatalog
from repro.utils.validation import require_vector


class FilteredOrderSource:
    """Per-feature sort orders, optionally restricted to eligible items.

    A callable ``(feature, descending) -> order`` suitable as the
    ``order_provider`` of :class:`SortedItemLists`.  Without a mask it simply
    forwards to ``catalog.argsort_feature`` (stored or cached orders).  With
    an eligibility mask it filters each order to the eligible items —
    ``order[mask[order]]`` preserves the original relative order, so the
    filtered list is exactly the sorted list of the eligible sub-catalog —
    using only index arithmetic, never feature-row reads.  Filtered orders
    are cached so each (feature, direction) pair is filtered at most once
    per searcher.
    """

    def __init__(
        self, catalog: ItemCatalog, eligible_mask: Optional[np.ndarray] = None
    ) -> None:
        self.catalog = catalog
        self.eligible_mask = eligible_mask
        self._filtered: Dict[tuple, np.ndarray] = {}

    def __call__(self, feature_index: int, descending: bool) -> np.ndarray:
        order = self.catalog.argsort_feature(feature_index, descending=descending)
        if self.eligible_mask is None:
            return order
        key = (feature_index, bool(descending))
        filtered = self._filtered.get(key)
        if filtered is None:
            order = np.asarray(order, dtype=np.int64)
            filtered = order[self.eligible_mask[order]]
            self._filtered[key] = filtered
        return filtered


class SortedItemLists:
    """Round-robin access over per-feature desirability-sorted item lists.

    One instance is one *cursor* over the catalog for one weight vector: it
    remembers, per active feature, how deep that feature's list has been
    read, which items have already been produced (an item surfacing in a
    second list is skipped but still advances that list's boundary), and the
    current boundary value vector τ.  The sequential searcher owns a single
    cursor; the batch searcher advances one cursor per weight vector in
    lockstep while sharing all candidate-package state between them.

    Parameters
    ----------
    catalog:
        The item catalog.
    weights:
        The weight vector ``w``; the sign of each component decides the sort
        direction of the corresponding list.  Features with zero weight do not
        get a list (they cannot influence utility).
    order_provider:
        Optional ``(feature, descending) -> order`` callable supplying the
        sorted orders — e.g. a :class:`FilteredOrderSource` restricting the
        lists to predicate-eligible items.  Defaults to the catalog's own
        (stored or cached) orders.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        weights: np.ndarray,
        order_provider: Optional[Callable[[int, bool], np.ndarray]] = None,
    ) -> None:
        weights = require_vector(weights, "weights", length=catalog.num_features)
        self.catalog = catalog
        self.weights = weights
        self.active_features: List[int] = [
            j for j in range(catalog.num_features) if weights[j] != 0.0
        ]
        # One ordering per active feature: best item for that feature first.
        if order_provider is None:
            order_provider = lambda j, descending: catalog.argsort_feature(  # noqa: E731
                j, descending=descending
            )
        self._orders: Dict[int, np.ndarray] = {}
        self._limits: Dict[int, int] = {}
        for j in self.active_features:
            order = order_provider(j, weights[j] > 0)
            self._orders[j] = order
            self._limits[j] = len(order)
        self._positions: Dict[int, int] = {j: 0 for j in self.active_features}
        self._last_value: Dict[int, Optional[float]] = {j: None for j in self.active_features}
        self._accessed: set = set()
        self._cursor = 0

    # ------------------------------------------------------------------ basics
    @property
    def num_accessed(self) -> int:
        """Number of distinct items accessed so far."""
        return len(self._accessed)

    def accessed_items(self) -> List[int]:
        """Indices of all items accessed so far (unordered)."""
        return list(self._accessed)

    def exhausted(self) -> bool:
        """Whether every list has been fully read."""
        return all(
            self._positions[j] >= self._limits[j] for j in self.active_features
        )

    # ------------------------------------------------------------------ access
    def next_item(self) -> Optional[int]:
        """Access the next *new* item in round-robin order over the lists.

        Items already returned from another list are skipped (but still move
        that list's boundary value forward).  Returns ``None`` when all lists
        are exhausted.
        """
        if not self.active_features:
            return None
        while not self.exhausted():
            feature = self.active_features[self._cursor % len(self.active_features)]
            self._cursor += 1
            position = self._positions[feature]
            if position >= self._limits[feature]:
                continue
            item_index = int(self._orders[feature][position])
            self._positions[feature] = position + 1
            value = self.catalog.features[item_index, feature]
            self._last_value[feature] = 0.0 if np.isnan(value) else float(value)
            if item_index in self._accessed:
                # Already produced via another list; keep scanning.
                continue
            self._accessed.add(item_index)
            return item_index
        return None

    # ---------------------------------------------------------------- boundary
    def boundary_vector(self) -> np.ndarray:
        """The boundary value vector τ.

        For each active feature, τ carries the value of the last accessed item
        in that feature's list (or the best possible value if the list has not
        been read yet); inactive (zero-weight) features are set to 0 since they
        cannot contribute utility either way.  An imaginary item with feature
        vector τ therefore upper-bounds the utility contribution of any
        unaccessed item.
        """
        tau = np.zeros(self.catalog.num_features)
        for j in self.active_features:
            if self._last_value[j] is None:
                order = self._orders[j]
                if len(order) == 0:
                    # Empty (fully filtered-out) list: no item can contribute.
                    tau[j] = 0.0
                    continue
                best_value = self.catalog.features[int(order[0]), j]
                tau[j] = 0.0 if np.isnan(best_value) else float(best_value)
            else:
                tau[j] = self._last_value[j]
        return tau

    def exhausted_boundary_vector(self) -> np.ndarray:
        """τ once all items are accessed: the *worst* value per active feature.

        Used to signal that no unaccessed item remains: extending a package
        with this vector can never look better than extending it with a real
        remaining item (there are none).
        """
        tau = np.zeros(self.catalog.num_features)
        for j in self.active_features:
            order = np.asarray(self._orders[j], dtype=np.int64)
            if order.size == 0:
                continue
            # Worst value among the items this list can produce (which under
            # predicate filtering is the eligible subset, not the catalog).
            values = self.catalog.features[order, j]
            values = np.where(np.isnan(values), 0.0, values)
            tau[j] = float(values.min()) if self.weights[j] > 0 else float(values.max())
        return tau
