"""Noise-model importance reweighting of sample pools (§7 applied to reuse).

A pool sampled under constraint set ``C_donor`` is a valid *proposal* for the
posterior under a different constraint set ``C_target`` once the §7 noise
model is in force: each feedback preference is independently correct only
with probability ψ, so the target's soft posterior keeps mass on samples that
violate some target constraints — a sample violating ``x`` of them retains
the factor ``(1 − ψ)^x`` (the probability that every violated preference was
itself noise).  Instead of resampling from scratch, the donor pool can be
**importance-reweighted**:

``q'_i = q_i · (1 − ψ)^{x_i}``   where ``x_i = |{d ∈ C_target : w_i · d < 0}|``

Two degenerate cases anchor the scheme:

* ψ = 1 and ``C_target = C_donor``: every donor sample is valid, every factor
  is ``(1 − 1)^0 = 1`` — reweighting is byte-identical reuse;
* ψ = 1 and ``C_target ⊃ C_donor``: violators get weight 0 — reweighting
  reduces to the §3.4 maintenance survival rule (without the top-up).

The quality of the adapted pool is measured by its Kish effective sample size
(:func:`~repro.sampling.ens.ens_from_weights`); the serving layer's
:class:`~repro.service.adaptation.PoolAdapter` only serves adapted pools
whose ESS clears a configured floor.

This module is pure sampling math — no serving-layer state.  It also provides
*deterministic residual resampling* (to hand weight-agnostic consumers a
uniform pool) and the incremental *soft maintenance* rule (downweight the
violators of one new preference instead of dropping them).
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import ConstraintSet, SamplePool
from repro.sampling.ens import ens_from_weights
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_probability, require_vector

__all__ = [
    "violation_weight_factors",
    "importance_reweight",
    "downweight_violators",
    "residual_resample",
    "pool_effective_sample_size",
    "ess_deficit",
]


def violation_weight_factors(
    samples: np.ndarray, constraints: ConstraintSet, psi: float
) -> np.ndarray:
    """Per-row noise-model likelihood factors ``(1 − ψ)^x`` under ``constraints``.

    ``x`` is the number of constraints each row violates.  At ψ = 1 the
    factors are the hard validity indicator (``0^0 = 1`` for valid rows);
    at ψ = 0 feedback carries no information and every factor is 1.
    """
    require_probability(psi, "psi")
    counts = constraints.violation_counts(samples)
    return np.power(1.0 - psi, counts)


def importance_reweight(
    pool: SamplePool, target_constraints: ConstraintSet, psi: float
) -> SamplePool:
    """Reweight a donor pool toward the posterior of ``target_constraints``.

    Returns a new pool with the same samples and ``weights × (1 − ψ)^x``
    where ``x`` counts each sample's violated target constraints.  The input
    pool is never mutated (donor pools stay live in the repository).
    """
    factors = violation_weight_factors(pool.samples, target_constraints, psi)
    return SamplePool(
        pool.samples.copy(), pool.weights * factors, dict(pool.stats)
    )


def downweight_violators(
    pool: SamplePool, direction: np.ndarray, psi: float
) -> SamplePool:
    """Soft §3.4 maintenance: scale violators of one new preference by ``1 − ψ``.

    The incremental form of :func:`importance_reweight` — applying it once
    per arriving preference direction multiplies each sample's weight by
    ``(1 − ψ)^x`` overall, without ever dropping (or resampling) a row.
    """
    require_probability(psi, "psi")
    direction = require_vector(direction, "direction", length=pool.num_features)
    violating = pool.samples @ direction < 0.0
    weights = pool.weights.copy()
    weights[violating] *= 1.0 - psi
    return SamplePool(pool.samples.copy(), weights, dict(pool.stats))


def residual_resample(
    pool: SamplePool, count: int, rng: RngLike = None
) -> SamplePool:
    """Draw an unweighted pool of ``count`` samples by residual resampling.

    Each sample is first replicated ``floor(count · p_i)`` times (the
    deterministic part — low-variance, order-preserving), then the remaining
    slots are drawn from the normalised residuals.  With a seeded ``rng`` the
    result is fully deterministic, which is what lets the serving layer derive
    the resampling stream from the pool key (same determinism discipline as
    repository fills).
    """
    if pool.size == 0:
        raise ValueError("cannot resample an empty pool")
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    probabilities = pool.normalised_weights()
    expected = count * probabilities
    copies = np.floor(expected).astype(int)
    remainder = count - int(copies.sum())
    if remainder > 0:
        residual = expected - copies
        total = residual.sum()
        if total <= 0:  # count·p_i all integral: spread uniformly
            residual = np.full(pool.size, 1.0 / pool.size)
        else:
            residual = residual / total
        extra = ensure_rng(rng).choice(
            pool.size, size=remainder, replace=True, p=residual
        )
        np.add.at(copies, extra, 1)
    indices = np.repeat(np.arange(pool.size), copies)
    stats = dict(pool.stats)
    stats["residual_resampled_from"] = pool.size
    return SamplePool.unweighted(pool.samples[indices], stats)


def ess_deficit(pool_or_weights, target_ess: float) -> int:
    """Fewest fresh unit-weight draws lifting the pool's Kish ESS to ``target_ess``.

    Appending ``d`` unit-weight samples to a pool with weight sums
    ``S1 = Σ w_i`` and ``S2 = Σ w_i²`` gives ``ESS' = (S1 + d)² / (S2 + d)``
    (fresh draws from the current posterior carry weight 1 after the survivors
    are normalised so their mean weight is 1).  The smallest integer ``d``
    with ``ESS' ≥ target_ess`` solves the quadratic
    ``d² + (2·S1 − t)·d + (S1² − t·S2) ≥ 0``.  Returns 0 when the pool
    already meets the target; callers cap the result at the full pool size
    (at which point a from-scratch fill is cheaper anyway).
    """
    weights = (
        pool_or_weights.weights
        if isinstance(pool_or_weights, SamplePool)
        else np.asarray(pool_or_weights, dtype=float)
    )
    target = float(target_ess)
    if target <= 0.0:
        return 0
    if ens_from_weights(weights) >= target:
        return 0
    # Normalise survivor weights to mean 1 so fresh draws (weight 1) are on
    # the same scale; ESS is scale-invariant so this changes nothing else.
    total = float(np.sum(weights))
    if total <= 0.0:
        # No surviving mass at all: the target must be met entirely by fresh
        # draws, each contributing one full effective sample.
        return int(np.ceil(target))
    scaled = weights * (weights.shape[0] / total)
    s1 = float(np.sum(scaled))
    s2 = float(np.sum(scaled * scaled))
    b = 2.0 * s1 - target
    c = s1 * s1 - target * s2
    disc = b * b - 4.0 * c
    deficit = int(np.ceil((-b + np.sqrt(max(disc, 0.0))) / 2.0))
    deficit = max(deficit, 0)
    # Guard the ceil against float fuzz at the root.
    while (s1 + deficit) ** 2 < target * (s2 + deficit):
        deficit += 1
    return deficit


def pool_effective_sample_size(pool_or_weights) -> float:
    """Kish ESS of a pool (or raw weight array); 0.0 when all weights vanish.

    Unlike :meth:`SamplePool.effective_sample_size` — which treats an all-zero
    pool as uniform, consistent with :meth:`SamplePool.normalised_weights` —
    this returns 0.0 for vanished weights, which is the conservative reading
    an acceptance gate needs (an all-zero adapted pool carries no information
    about the target posterior).
    """
    weights = (
        pool_or_weights.weights
        if isinstance(pool_or_weights, SamplePool)
        else pool_or_weights
    )
    return ens_from_weights(weights)
