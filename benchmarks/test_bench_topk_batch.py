"""Benchmark: vectorised batch ``Top-k-Pkg`` vs sequential per-sample search.

Not a paper figure — this measures the PR's tentpole: answering the per-sample
top-k package queries for a whole pool of posterior weight samples with one
shared sorted-list walk (:class:`BatchTopKPackageSearcher`) instead of one
sequential :class:`TopKPackageSearcher` run per sample.

Both searchers run *exact* (no beam, no item caps) over catalogs drawn by the
experiment harness, with pools of weight vectors concentrated around a hidden
utility — the shape a real posterior has after a few clicks.  The suite

* sweeps pool size (the §4 hot-path axis) and catalog size/dimensionality,
* asserts the batch results match the sequential ones exactly (bit-identical
  utilities — the equivalence contract of ``tests/test_topk_batch.py``), and
* asserts the acceptance floor: ≥ 5× speedup on a 150-sample pool.

The regenerated table lands in ``results/bench_topk_batch.txt``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.experiments.harness import ExperimentScale, build_evaluator
from repro.topk.batch_search import BatchTopKPackageSearcher
from repro.topk.package_search import TopKPackageSearcher

#: Acceptance floor asserted on the 150-sample pool configuration.
MIN_SPEEDUP = 5.0

K = 5

#: (num_items, num_features, max_package_size, pool_size) per measured point.
CONFIGS = [
    (200, 4, 3, 25),
    (200, 4, 3, 150),
    (400, 6, 3, 60),
]


@dataclass
class BatchPoint:
    """One measured (catalog, pool) comparison."""

    num_items: int
    num_features: int
    phi: int
    pool_size: int
    sequential_seconds: float
    batch_seconds: float
    identical: bool

    @property
    def speedup(self) -> float:
        return self.sequential_seconds / self.batch_seconds


def _pool(num_features: int, pool_size: int, rng: np.random.Generator) -> np.ndarray:
    """A posterior-shaped pool: samples concentrated around a hidden utility."""
    hidden = rng.uniform(-1.0, 1.0, num_features)
    return np.clip(hidden + rng.normal(0.0, 0.35, (pool_size, num_features)), -1.0, 1.0)


def _measure(num_items: int, num_features: int, phi: int, pool_size: int) -> BatchPoint:
    scale = ExperimentScale(
        num_tuples=num_items, num_packages=500, num_samples=200,
        num_preferences=200, num_features=num_features, num_gaussians=1,
        max_package_size=phi, seed=0,
    )
    evaluator = build_evaluator("UNI", scale, num_features=num_features)
    pool = _pool(num_features, pool_size, np.random.default_rng(1))

    batch_searcher = BatchTopKPackageSearcher(evaluator)
    start = time.perf_counter()
    batch_results = batch_searcher.search_many(pool, K)
    batch_seconds = time.perf_counter() - start

    sequential_searcher = TopKPackageSearcher(evaluator)
    start = time.perf_counter()
    sequential_results = sequential_searcher.search_many(pool, K)
    sequential_seconds = time.perf_counter() - start

    identical = all(
        s.utilities == b.utilities
        for s, b in zip(sequential_results, batch_results)
    )
    return BatchPoint(
        num_items=num_items, num_features=num_features, phi=phi,
        pool_size=pool_size, sequential_seconds=sequential_seconds,
        batch_seconds=batch_seconds, identical=identical,
    )


@pytest.fixture(scope="module")
def batch_points() -> List[BatchPoint]:
    from bench_utils import record_ci_metric, write_results

    points = [_measure(*config) for config in CONFIGS]
    lines = [
        "Batch Top-k-Pkg — one shared sorted-list walk vs per-sample search",
        f"k={K}, exact settings (no beam, no item caps); pools concentrated "
        "around a hidden utility (posterior shape)",
        "",
        f"{'items':>6} {'m':>3} {'phi':>4} {'pool':>5} "
        f"{'sequential_s':>13} {'batch_s':>9} {'speedup':>8} {'identical':>10}",
    ]
    for p in points:
        lines.append(
            f"{p.num_items:>6} {p.num_features:>3} {p.phi:>4} {p.pool_size:>5} "
            f"{p.sequential_seconds:>13.3f} {p.batch_seconds:>9.3f} "
            f"{p.speedup:>7.1f}x {str(p.identical):>10}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_results("bench_topk_batch.txt", text)
    gated = next(p for p in points if p.pool_size == 150)
    record_ci_metric(
        "topk_batch_vs_sequential_speedup",
        gated.speedup,
        MIN_SPEEDUP,
        source="benchmarks/test_bench_topk_batch.py",
        description=(
            "Batch Top-k-Pkg wall time over sequential per-sample search "
            "on a 150-sample pool (exact settings)"
        ),
    )
    return points


def test_batch_results_match_sequential_exactly(batch_points):
    """Utilities must be bit-identical for every pool vector in every config."""
    for point in batch_points:
        assert point.identical, (
            f"batch/sequential mismatch at items={point.num_items} "
            f"m={point.num_features} pool={point.pool_size}"
        )


def test_batch_speedup_on_150_sample_pool(batch_points):
    """The acceptance floor: ≥ 5x over sequential search on a 150-sample pool."""
    point = next(p for p in batch_points if p.pool_size == 150)
    assert point.speedup >= MIN_SPEEDUP, (
        f"batch speedup {point.speedup:.2f}x below the {MIN_SPEEDUP}x floor "
        f"({point.sequential_seconds:.3f}s vs {point.batch_seconds:.3f}s)"
    )


def test_batch_speedup_grows_with_pool_size(batch_points):
    """Amortisation: the shared walk wins more as the pool gets larger."""
    small = next(p for p in batch_points if p.pool_size == 25)
    large = next(p for p in batch_points if p.pool_size == 150)
    assert large.speedup > small.speedup


def test_batch_wins_across_dimensionalities(batch_points):
    """The win is not an artefact of one (catalog, dimensionality) point."""
    for point in batch_points:
        assert point.speedup > 1.0
