"""Benchmark for §5.4 (sample quality) plus a baseline-contrast micro-study.

Regenerates the top-5 lists per (sampler, semantics) and asserts the paper's
observation that the samplers largely agree and that the semantics are
correlated.  Also quantifies the skyline baseline's drawback (the skyline
package set is much larger than a top-k list), which motivates the whole
approach in the paper's introduction.
"""

import numpy as np
import pytest

from repro.baselines.skyline import skyline_packages
from repro.core.items import ItemCatalog
from repro.core.packages import PackageEvaluator
from repro.core.profiles import AggregateProfile
from repro.experiments.sample_quality import run_sample_quality_study, summarise
from repro.experiments.harness import format_table


@pytest.fixture(scope="module")
def quality_result(scale):
    from bench_utils import write_results

    # 20 preferences keeps the valid region large enough for *all three*
    # samplers to finish within their attempt budgets — the point of §5.4 is
    # comparing the samplers' top-k lists, so every sampler must participate.
    result = run_sample_quality_study(
        k=5,
        num_samples=400,
        num_preferences=20,
        num_features=4,
        num_gaussians=2,
        num_packages=400,
        scale=scale,
        seed=0,
    )
    table = format_table(["sampler", "semantics", "top-5 / agreement"], summarise(result))
    header = "Section 5.4 — top-5 lists per sampler and semantics"
    print("\n" + header)
    print(table)
    write_results("sec54_sample_quality.txt", header + "\n" + table)
    assert result.sampler_agreement >= 0.5
    return result


def test_quality_shape_samplers_agree(quality_result):
    """Given enough samples, RS / IS / MS produce very similar top-5 lists."""
    assert quality_result.sampler_agreement >= 0.5


def test_quality_shape_semantics_correlated(quality_result):
    """EXP, TKP and MPO overlap substantially (they are correlated, not identical)."""
    assert quality_result.semantics_agreement >= 0.3


def test_quality_all_sampler_semantics_combinations_present(quality_result):
    samplers = {s for s, _ in quality_result.top_lists}
    semantics = {m for _, m in quality_result.top_lists}
    assert samplers == {"RS", "IS", "MS"}
    assert semantics == {"EXP", "TKP", "MPO"}


def test_bench_quality_study(benchmark, scale, quality_result):
    result = benchmark.pedantic(
        lambda: run_sample_quality_study(
            k=5, num_samples=150, num_preferences=15, num_features=4,
            num_gaussians=2, num_packages=200, scale=scale, seed=1,
        ),
        rounds=1, iterations=1,
    )
    assert result.top_lists


def test_bench_skyline_explosion(benchmark):
    """The introduction's motivation: skyline package sets are impractically large."""
    rng = np.random.default_rng(0)
    catalog = ItemCatalog(rng.random((40, 2)))
    evaluator = PackageEvaluator(catalog, AggregateProfile(["sum", "avg"]), 2)

    results = benchmark.pedantic(
        lambda: skyline_packages(evaluator, package_size=2, directions=[-1.0, 1.0]),
        rounds=1, iterations=1,
    )
    print(f"\nSkyline baseline: {len(results)} skyline packages of size 2 "
          f"from a 40-item catalog (vs a top-5 list)")
    assert len(results) > 5
