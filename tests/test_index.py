"""Tests for the weight-space grid and quad-tree indexes."""

import numpy as np
import pytest

from repro.index.grid import GridCell, GridTooLargeError, WeightSpaceGrid
from repro.index.quadtree import QuadTree


class TestGridCell:
    def test_center_and_dimension(self):
        cell = GridCell((0.0, 0.0), (1.0, 2.0))
        assert np.allclose(cell.center, [0.5, 1.0])
        assert cell.dimension == 2

    def test_max_min_dot(self):
        cell = GridCell((-1.0, -1.0), (1.0, 1.0))
        direction = np.array([1.0, -2.0])
        assert cell.max_dot(direction) == pytest.approx(3.0)
        assert cell.min_dot(direction) == pytest.approx(-3.0)

    def test_can_satisfy(self):
        cell = GridCell((0.1, 0.1), (0.5, 0.5))
        assert cell.can_satisfy(np.array([1.0, 1.0]))
        assert not cell.can_satisfy(np.array([-1.0, -1.0]))

    def test_contains(self):
        cell = GridCell((0.0, 0.0), (1.0, 1.0))
        assert cell.contains(np.array([0.5, 0.5]))
        assert not cell.contains(np.array([1.5, 0.5]))

    def test_split_produces_2_pow_d_children(self):
        cell = GridCell((0.0, 0.0), (1.0, 1.0))
        children = cell.split()
        assert len(children) == 4
        # Children partition the parent: their centres are inside the parent.
        for child in children:
            assert cell.contains(child.center)


class TestWeightSpaceGrid:
    def test_cell_count(self):
        grid = WeightSpaceGrid(2, cells_per_dim=3)
        assert len(grid) == 9
        assert len(grid.cells) == 9

    def test_too_large_raises(self):
        with pytest.raises(GridTooLargeError):
            WeightSpaceGrid(10, cells_per_dim=10)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            WeightSpaceGrid(0)
        with pytest.raises(ValueError):
            WeightSpaceGrid(2, cells_per_dim=0)
        with pytest.raises(ValueError):
            WeightSpaceGrid(2, bounds=[(0.0, 1.0)])
        with pytest.raises(ValueError):
            WeightSpaceGrid(1, bounds=[(1.0, 0.0)])

    def test_paper_figure3_example(self):
        """Figure 3: a 3×3 grid loses exactly the top-right cell for that constraint.

        The constraint used in the figure invalidates weight vectors above a
        line through the upper-right region; with direction d = (-1, -1) scaled
        to cut off only the top-right cell, eight cells remain.
        """
        grid = WeightSpaceGrid(2, cells_per_dim=3)
        # Valid region: w · d >= 0 with d chosen so only cells whose best corner
        # has w1 + w2 > 4/3 are eliminated (top-right cell spans [1/3, 1]^2).
        direction = np.array([-1.0, -1.0]) / (4.0 / 3.0)
        removed = grid.prune(direction + np.array([1e-9, 1e-9]))
        assert removed >= 1
        assert grid.feasible_fraction() < 1.0

    def test_prune_keeps_satisfiable_cells(self):
        grid = WeightSpaceGrid(2, cells_per_dim=4)
        removed = grid.prune(np.array([1.0, 0.0]))
        # Only cells whose entire w1 range is strictly negative are removed
        # (the [-1, -0.5] column); cells touching w1 = 0 can still satisfy.
        assert removed == 4
        for cell in grid.active_cells:
            assert cell.can_satisfy(np.array([1.0, 0.0]))

    def test_approximate_center_moves_into_valid_region(self):
        grid = WeightSpaceGrid(2, cells_per_dim=6)
        assert np.allclose(grid.approximate_center(), [0.0, 0.0])
        grid.prune(np.array([1.0, 0.0]))
        center = grid.approximate_center()
        assert center[0] > 0.1

    def test_approximate_center_when_everything_pruned(self):
        grid = WeightSpaceGrid(1, cells_per_dim=2, bounds=[(0.0, 1.0)])
        grid.prune(np.array([-1.0]))
        grid.active_cells = []  # simulate contradictory feedback
        assert np.allclose(grid.approximate_center(), [0.5])

    def test_prune_all_accumulates(self):
        grid = WeightSpaceGrid(2, cells_per_dim=4)
        removed = grid.prune_all([np.array([1.0, 0.0]), np.array([0.0, 1.0])])
        # 4 cells fall to the first constraint, 3 more to the second.
        assert removed == 7
        assert grid.feasible_fraction() == pytest.approx(9 / 16)


class TestQuadTree:
    def test_leaf_count(self):
        tree = QuadTree(2, depth=2)
        assert len(tree.leaves(active_only=False)) == 16

    def test_depth_zero_single_leaf(self):
        tree = QuadTree(3, depth=0)
        assert len(tree.leaves()) == 1
        assert tree.root.is_leaf

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            QuadTree(0)
        with pytest.raises(ValueError):
            QuadTree(2, depth=-1)
        with pytest.raises(ValueError):
            QuadTree(8, depth=5)

    def test_prune_matches_flat_grid_semantics(self):
        tree = QuadTree(2, depth=2)
        direction = np.array([1.0, 0.0])
        pruned = tree.prune(direction)
        # Only the leftmost column of leaves (w1 strictly negative) is pruned.
        assert pruned == 4
        for leaf in tree.leaves():
            assert leaf.cell.can_satisfy(direction)

    def test_prune_all_and_active_fraction(self):
        tree = QuadTree(2, depth=2)
        tree.prune_all([np.array([1.0, 0.0]), np.array([0.0, 1.0])])
        assert tree.active_fraction() == pytest.approx(9 / 16)

    def test_approximate_center_in_valid_region(self):
        tree = QuadTree(2, depth=3)
        tree.prune(np.array([0.0, 1.0]))
        center = tree.approximate_center()
        assert center[1] > 0.1

    def test_center_falls_back_when_all_pruned(self):
        tree = QuadTree(1, depth=1, bounds=[(0.0, 1.0)])
        for leaf in tree.leaves():
            leaf.active = False
        assert np.allclose(tree.approximate_center(), [0.5])

    def test_subtree_pruning_counts_leaves_once(self):
        tree = QuadTree(2, depth=2)
        first = tree.prune(np.array([1.0, 0.0]))
        second = tree.prune(np.array([1.0, 0.0]))
        assert first == 4
        assert second == 0  # already pruned leaves are not double counted
