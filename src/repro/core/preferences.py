"""Pairwise package preferences elicited from implicit user feedback.

A click on one of the presented packages yields pairwise preferences
``p_clicked ≻ p_other`` for every unclicked package in the same round (§3.3).
Every preference defines a half-space constraint on the weight vector:
``w`` satisfies ``p1 ≻ p2`` iff ``w · (p1 - p2) >= 0``.

:class:`PreferenceStore` keeps the preferences in a directed acyclic graph
(edge ``p1 → p2`` for ``p1 ≻ p2``), detects cycles, and applies *transitive
reduction* (Aho, Garey & Ullman) so that redundant constraints are never
checked during sampling — the optimisation of §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.packages import Package, PackageEvaluator
from repro.utils.validation import require_vector


class PreferenceCycleError(ValueError):
    """Raised when adding a preference would create a cycle in the DAG.

    The paper resolves cycles by re-presenting the cyclic packages to the user
    (§3.3); at the library level the caller decides how to react, so we raise
    and report the offending cycle.
    """

    def __init__(self, cycle: Sequence[Tuple[int, ...]]):
        self.cycle = list(cycle)
        super().__init__(
            "adding this preference would create a cycle through packages: "
            + " ≻ ".join(str(p) for p in self.cycle)
        )


_placeholder_counter = 0


def _next_placeholder_package() -> Package:
    """A unique synthetic package id for vector-only preferences.

    Placeholder packages use negative item indices so they can never collide
    with real catalog items.
    """
    global _placeholder_counter
    _placeholder_counter += 1
    return Package((-_placeholder_counter,))


@dataclass(frozen=True)
class Preference:
    """A single pairwise preference ``preferred ≻ other``.

    The normalised feature vectors of both packages are stored so the
    half-space direction ``preferred_vector - other_vector`` is available
    without re-aggregating.
    """

    preferred: Package
    other: Package
    preferred_vector: Tuple[float, ...]
    other_vector: Tuple[float, ...]

    @classmethod
    def from_packages(
        cls, evaluator: PackageEvaluator, preferred: Package, other: Package
    ) -> "Preference":
        """Build a preference, computing both feature vectors via ``evaluator``."""
        if preferred == other:
            raise ValueError("a preference requires two distinct packages")
        return cls(
            preferred=preferred,
            other=other,
            preferred_vector=tuple(evaluator.vector(preferred).tolist()),
            other_vector=tuple(evaluator.vector(other).tolist()),
        )

    @classmethod
    def from_vectors(
        cls,
        preferred_vector: np.ndarray,
        other_vector: np.ndarray,
        preferred: Optional[Package] = None,
        other: Optional[Package] = None,
    ) -> "Preference":
        """Build a preference directly from two feature vectors.

        Used by experiments that generate random preference constraints without
        materialising actual packages; synthetic placeholder packages are
        created when none are supplied.
        """
        preferred_vector = require_vector(preferred_vector, "preferred_vector")
        other_vector = require_vector(
            other_vector, "other_vector", length=preferred_vector.shape[0]
        )
        if preferred is None:
            preferred = _next_placeholder_package()
        if other is None:
            other = _next_placeholder_package()
        return cls(
            preferred=preferred,
            other=other,
            preferred_vector=tuple(preferred_vector.tolist()),
            other_vector=tuple(other_vector.tolist()),
        )

    @property
    def direction(self) -> np.ndarray:
        """Half-space normal: ``w`` satisfies the preference iff ``w · direction >= 0``."""
        return np.asarray(self.preferred_vector) - np.asarray(self.other_vector)

    def is_satisfied_by(self, weights: np.ndarray) -> bool:
        """Whether the weight vector ``weights`` satisfies this preference."""
        return float(np.asarray(weights, dtype=float) @ self.direction) >= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Preference({self.preferred.items} ≻ {self.other.items})"


class PreferenceStore:
    """A growing set of pairwise preferences organised as a DAG.

    Parameters
    ----------
    num_features:
        Dimensionality of package feature vectors.
    on_cycle:
        ``"raise"`` (default) raises :class:`PreferenceCycleError` when a new
        preference closes a cycle; ``"drop"`` silently ignores the conflicting
        preference (modelling a user who is asked to re-confirm and declines).
    """

    def __init__(self, num_features: int, on_cycle: str = "raise") -> None:
        if num_features <= 0:
            raise ValueError(f"num_features must be > 0, got {num_features}")
        if on_cycle not in ("raise", "drop"):
            raise ValueError(f"on_cycle must be 'raise' or 'drop', got {on_cycle!r}")
        self.num_features = num_features
        self.on_cycle = on_cycle
        self._preferences: List[Preference] = []
        # DAG: node = package id tuple, edges preferred -> other.
        self._successors: Dict[Tuple[int, ...], Set[Tuple[int, ...]]] = {}
        self._vectors: Dict[Tuple[int, ...], np.ndarray] = {}
        self._dropped = 0

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._preferences)

    @property
    def preferences(self) -> List[Preference]:
        """All accepted preferences, in insertion order."""
        return list(self._preferences)

    @property
    def num_packages(self) -> int:
        """Number of distinct packages mentioned in the feedback."""
        return len(self._vectors)

    @property
    def num_dropped(self) -> int:
        """Number of preferences dropped due to cycles (``on_cycle='drop'``)."""
        return self._dropped

    # ------------------------------------------------------------------ adding
    def add(self, preference: Preference) -> bool:
        """Add a single preference; returns True if accepted, False if dropped."""
        direction = preference.direction
        if direction.shape[0] != self.num_features:
            raise ValueError(
                f"preference has {direction.shape[0]} features, "
                f"store expects {self.num_features}"
            )
        src = preference.preferred.package_id
        dst = preference.other.package_id
        if src == dst:
            raise ValueError("a preference cannot relate a package to itself")
        cycle = self._find_path(dst, src)
        if cycle is not None:
            if self.on_cycle == "drop":
                self._dropped += 1
                return False
            raise PreferenceCycleError(cycle + [dst])
        self._preferences.append(preference)
        self._successors.setdefault(src, set()).add(dst)
        self._successors.setdefault(dst, set())
        self._vectors[src] = np.asarray(preference.preferred_vector)
        self._vectors[dst] = np.asarray(preference.other_vector)
        return True

    def add_click_feedback(
        self,
        evaluator: PackageEvaluator,
        clicked: Package,
        presented: Iterable[Package],
    ) -> List[Preference]:
        """Record a click: ``clicked ≻ p`` for every other presented package.

        Returns the list of preferences that were accepted (cycle-dropped
        preferences are omitted).
        """
        added: List[Preference] = []
        for package in presented:
            if package == clicked:
                continue
            preference = Preference.from_packages(evaluator, clicked, package)
            if self.add(preference):
                added.append(preference)
        return added

    # ---------------------------------------------------------------- querying
    def directions(self, reduced: bool = True) -> np.ndarray:
        """Matrix of half-space normals, one row per (optionally reduced) preference."""
        prefs = self.reduced_preferences() if reduced else self._preferences
        if not prefs:
            return np.zeros((0, self.num_features))
        return np.stack([p.direction for p in prefs])

    def satisfies(self, weights: np.ndarray, reduced: bool = True) -> bool:
        """Whether ``weights`` satisfies every stored preference."""
        directions = self.directions(reduced=reduced)
        if directions.shape[0] == 0:
            return True
        return bool(np.all(directions @ np.asarray(weights, dtype=float) >= 0.0))

    def count_violations(self, weights: np.ndarray, reduced: bool = False) -> int:
        """Number of stored preferences violated by ``weights``.

        Violation counts feed the noise model of §7, which needs the number of
        violated *raw* feedback items, so the default is the unreduced set.
        """
        directions = self.directions(reduced=reduced)
        if directions.shape[0] == 0:
            return 0
        return int(np.sum(directions @ np.asarray(weights, dtype=float) < 0.0))

    # ---------------------------------------------------- transitive reduction
    def reduced_preferences(self) -> List[Preference]:
        """Preferences remaining after transitive reduction of the DAG (§3.3).

        An edge ``p1 → p3`` is redundant when the DAG also contains a longer
        path ``p1 → ... → p3``; satisfaction of the intermediate constraints
        implies satisfaction of the redundant one (transitivity of ≻ for
        linear utilities), so it need not be checked during sampling.
        """
        redundant: Set[Tuple[Tuple[int, ...], Tuple[int, ...]]] = set()
        for src, dsts in self._successors.items():
            for dst in dsts:
                if self._reachable_without_edge(src, dst):
                    redundant.add((src, dst))
        kept: List[Preference] = []
        seen_edges: Set[Tuple[Tuple[int, ...], Tuple[int, ...]]] = set()
        for pref in self._preferences:
            edge = (pref.preferred.package_id, pref.other.package_id)
            if edge in redundant or edge in seen_edges:
                continue
            seen_edges.add(edge)
            kept.append(pref)
        return kept

    def _reachable_without_edge(
        self, src: Tuple[int, ...], dst: Tuple[int, ...]
    ) -> bool:
        """Whether ``dst`` is reachable from ``src`` without using edge (src, dst)."""
        stack = [
            nxt
            for nxt in self._successors.get(src, ())
            if nxt != dst
        ]
        visited: Set[Tuple[int, ...]] = set(stack)
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            for nxt in self._successors.get(node, ()):
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append(nxt)
        return False

    def _find_path(
        self, src: Tuple[int, ...], dst: Tuple[int, ...]
    ) -> Optional[List[Tuple[int, ...]]]:
        """A path from ``src`` to ``dst`` in the DAG, or None if unreachable."""
        if src not in self._successors:
            return None
        stack: List[Tuple[Tuple[int, ...], List[Tuple[int, ...]]]] = [(src, [src])]
        visited: Set[Tuple[int, ...]] = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for nxt in self._successors.get(node, ()):
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PreferenceStore(num_preferences={len(self)}, "
            f"num_packages={self.num_packages})"
        )
