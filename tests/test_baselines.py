"""Tests for the skyline and hard-constraint baselines."""

import numpy as np
import pytest

from repro.baselines.hard_constraint import BudgetConstraint, HardConstraintRecommender
from repro.baselines.skyline import skyline_items, skyline_of_vectors, skyline_packages
from repro.core.items import ItemCatalog
from repro.core.packages import PackageEvaluator
from repro.core.profiles import AggregateProfile


class TestSkylineOfVectors:
    def test_simple_two_dimensional_skyline(self):
        vectors = np.array([
            [0.9, 0.1],
            [0.1, 0.9],
            [0.5, 0.5],
            [0.4, 0.4],   # dominated by (0.5, 0.5)
            [0.9, 0.05],  # dominated by (0.9, 0.1)
        ])
        skyline = skyline_of_vectors(vectors, np.array([1.0, 1.0]))
        assert skyline == [0, 1, 2]

    def test_directions_flip_domination(self):
        vectors = np.array([[0.2, 0.8], [0.4, 0.9]])
        # Smaller is better on both features: the first row dominates.
        skyline = skyline_of_vectors(vectors, np.array([-1.0, -1.0]))
        assert skyline == [0]

    def test_duplicate_points_all_kept(self):
        vectors = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert skyline_of_vectors(vectors, np.array([1.0, 1.0])) == [0, 1]

    def test_invalid_directions_rejected(self):
        with pytest.raises(ValueError):
            skyline_of_vectors(np.ones((2, 2)), np.array([1.0, 0.5]))

    def test_no_skyline_point_dominated(self):
        rng = np.random.default_rng(0)
        vectors = rng.random((200, 3))
        directions = np.array([1.0, -1.0, 1.0])
        skyline = set(skyline_of_vectors(vectors, directions))
        oriented = vectors * directions
        for index in skyline:
            dominated = np.any(
                np.all(oriented >= oriented[index], axis=1)
                & np.any(oriented > oriented[index], axis=1)
            )
            assert not dominated


class TestSkylineItems:
    def test_skyline_items_subset_of_catalog(self, small_random_catalog):
        skyline = skyline_items(small_random_catalog)
        assert all(0 <= i < small_random_catalog.num_items for i in skyline)
        assert len(skyline) >= 1


class TestSkylinePackages:
    @pytest.fixture
    def tiny_evaluator(self):
        rng = np.random.default_rng(2)
        catalog = ItemCatalog(rng.random((8, 2)))
        return PackageEvaluator(catalog, AggregateProfile(["sum", "avg"]), 3)

    def test_fixed_size_skyline_packages(self, tiny_evaluator):
        results = skyline_packages(tiny_evaluator, package_size=2, directions=[-1.0, 1.0])
        assert results
        for package, vector in results:
            assert package.size == 2
            assert np.allclose(vector, tiny_evaluator.vector(package))

    def test_skyline_count_grows_with_size_interest(self, tiny_evaluator):
        """The baseline's drawback: the skyline set is large relative to top-k."""
        results = skyline_packages(tiny_evaluator, package_size=2, directions=[-1.0, 1.0])
        assert len(results) >= 3  # already more than a user wants to sift through

    def test_invalid_package_size(self, tiny_evaluator):
        with pytest.raises(ValueError):
            skyline_packages(tiny_evaluator, package_size=0)

    def test_max_packages_guard(self, tiny_evaluator):
        with pytest.raises(RuntimeError):
            skyline_packages(tiny_evaluator, package_size=2, max_packages=3)


class TestHardConstraintRecommender:
    @pytest.fixture
    def setup(self):
        rng = np.random.default_rng(1)
        catalog = ItemCatalog(rng.random((12, 2)))
        evaluator = PackageEvaluator(catalog, AggregateProfile(["sum", "avg"]), 3)
        objective = np.array([0.0, 1.0])  # maximise quality
        budgets = [BudgetConstraint(feature_index=0, upper_bound=0.5)]  # cost cap
        return evaluator, objective, budgets

    def test_greedy_respects_budget(self, setup):
        evaluator, objective, budgets = setup
        recommender = HardConstraintRecommender(evaluator, objective, budgets)
        result = recommender.recommend()
        assert result is not None
        package, utility = result
        vector = evaluator.vector(package)
        assert vector[0] <= 0.5 + 1e-9
        assert utility == pytest.approx(float(vector @ objective))

    def test_exhaustive_at_least_as_good_as_greedy(self, setup):
        evaluator, objective, budgets = setup
        recommender = HardConstraintRecommender(evaluator, objective, budgets)
        greedy = recommender.recommend()
        exact = recommender.best_package_exhaustive()
        assert exact is not None
        assert exact[1] >= greedy[1] - 1e-9

    def test_infeasible_budget_returns_none(self, setup):
        evaluator, objective, _ = setup
        impossible = [BudgetConstraint(feature_index=0, upper_bound=0.0),
                      BudgetConstraint(feature_index=1, upper_bound=0.0)]
        recommender = HardConstraintRecommender(evaluator, objective, impossible)
        assert recommender.recommend() is None
        assert recommender.best_package_exhaustive() is None

    def test_loose_budget_admits_many_candidates(self, setup):
        """The paper's critique: a too-high budget leaves a huge candidate set."""
        evaluator, objective, _ = setup
        tight = HardConstraintRecommender(
            evaluator, objective, [BudgetConstraint(0, 0.2)]
        ).feasible_count()
        loose = HardConstraintRecommender(
            evaluator, objective, [BudgetConstraint(0, 1.0)]
        ).feasible_count()
        assert loose > tight

    def test_budget_constraint_validation(self):
        with pytest.raises(ValueError):
            BudgetConstraint(feature_index=-1, upper_bound=0.5)
        with pytest.raises(ValueError):
            BudgetConstraint(feature_index=0, upper_bound=-0.5)

    def test_objective_length_validated(self, setup):
        evaluator, _, budgets = setup
        with pytest.raises(ValueError):
            HardConstraintRecommender(evaluator, np.array([1.0]), budgets)
