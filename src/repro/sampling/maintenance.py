"""Sample maintenance against newly received feedback (§3.4, Algorithm 1).

When a new preference ``ρ := p1 ≻ p2`` arrives, the previously generated
sample pool does not have to be regenerated: samples that still satisfy ρ
remain correctly distributed (Lemma 1) and only the violators must be replaced.
Finding the violators — all ``w`` with ``w · (p2 - p1) > 0`` — is a top-k-style
problem over the pool, and the paper evaluates three strategies (Figure 7):

* **Naive** — scan every sample in the pool and test it against ρ.
* **Threshold-algorithm (TA) based** — keep one list of samples per feature,
  sorted by that feature's value; walk the lists in round-robin order of
  decreasing possible score ``w · q`` and stop as soon as the boundary value
  vector τ proves no unseen sample can violate ρ.  Very fast when few samples
  violate the new feedback, but pays a large overhead when many do.
* **Hybrid (Algorithm 1)** — start with TA and fall back to scanning the rest
  of the current list once ``C_processed + C_remain ≥ (1 + γ)·|S|``.

:class:`SampleMaintainer` wires a strategy together with a sampler so the
violators can also be *replaced* under the updated constraint set.  Under the
§7 noise model the maintainer additionally supports **soft maintenance**
(:meth:`SampleMaintainer.soft_apply_feedback`): instead of dropping the
violators, their importance weights are scaled by ``1 − ψ`` — the incremental
form of noise-model importance reweighting
(:func:`~repro.sampling.reweight.downweight_violators`) — so the pool keeps
its size without any resampling and downstream weighted top-k scoring
accounts for the discounted samples.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.reweight import (
    ess_deficit,
    importance_reweight,
    pool_effective_sample_size,
)
from repro.utils.validation import (
    require_matrix,
    require_probability,
    require_vector,
)


def partial_refill_split(
    pool: SamplePool,
    constraints: ConstraintSet,
    psi: float,
    count: int,
    min_ess_fraction: float,
) -> tuple:
    """Split a stale pool into ψ-reweighted survivors plus an ESS fill deficit.

    The hybrid of §3.4 maintenance and §7 reweighting the serving layer's
    ``_build_pool`` fuses: instead of choosing between *keep the survivors,
    top up the violators* (hard maintenance) and *reweight everything, accept
    or reject wholesale* (adaptation), reweight the stale pool under the §7
    noise model and compute how many fresh unit-weight draws are needed to
    lift its Kish ESS to ``min_ess_fraction × count``.  Returns
    ``(reweighted_pool, deficit)`` with ``deficit`` capped at ``count``;
    returns ``(None, count)`` when no mass survives reweighting (the caller
    should fall back to a full from-scratch fill).
    """
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    require_probability(min_ess_fraction, "min_ess_fraction")
    reweighted = importance_reweight(pool, constraints, psi)
    if pool_effective_sample_size(reweighted) <= 0.0:
        return None, count
    deficit = ess_deficit(reweighted, min_ess_fraction * count)
    return reweighted, min(deficit, count)


@dataclass
class MaintenanceResult:
    """Outcome of locating the samples that violate one new preference.

    Attributes
    ----------
    violating_indices:
        Sorted indices (into the pool) of samples violating the new feedback.
    accesses:
        Number of individual sample accesses the strategy performed; the work
        metric compared across strategies in Figure 7.
    strategy:
        Short name of the strategy that produced the result.
    fell_back:
        For the hybrid strategy: whether the TA phase aborted and fell back to
        scanning (always False for the other strategies).
    """

    violating_indices: np.ndarray
    accesses: int
    strategy: str
    fell_back: bool = False

    @property
    def num_violations(self) -> int:
        """Number of violating samples found."""
        return int(self.violating_indices.shape[0])


class MaintenanceStrategy(abc.ABC):
    """Strategy interface: find pool samples violating one new preference."""

    short_name: str = "base"

    @abc.abstractmethod
    def find_violations(self, samples: np.ndarray, direction: np.ndarray) -> MaintenanceResult:
        """Indices of samples violating the preference with half-space ``direction``.

        ``direction`` follows the :class:`ConstraintSet` convention
        (``d = p_preferred - p_other``): a sample ``w`` violates the preference
        iff ``w · d < 0`` (equivalently ``w · (p2 - p1) > 0`` as in the paper).
        """


class NaiveMaintenance(MaintenanceStrategy):
    """Scan every sample in the pool and test it against the new preference."""

    short_name = "naive"

    def find_violations(self, samples: np.ndarray, direction: np.ndarray) -> MaintenanceResult:
        samples = require_matrix(samples, "samples")
        direction = require_vector(direction, "direction", length=samples.shape[1])
        violating: List[int] = []
        accesses = 0
        for index in range(samples.shape[0]):
            accesses += 1
            if float(samples[index] @ direction) < 0.0:
                violating.append(index)
        return MaintenanceResult(
            np.asarray(sorted(violating), dtype=int), accesses, self.short_name
        )


class ThresholdMaintenance(MaintenanceStrategy):
    """TA-style search for violating samples over per-feature sorted lists.

    The lists are built once per pool (`prepare`) and reused for every new
    preference, mirroring the "preprocessed sample lists" of §5.5.
    """

    short_name = "ta"

    def __init__(self) -> None:
        self._ascending_orders: Optional[np.ndarray] = None
        self._samples: Optional[np.ndarray] = None

    def prepare(self, samples: np.ndarray) -> None:
        """Precompute per-feature sorted orderings of the pool."""
        samples = require_matrix(samples, "samples")
        self._samples = samples
        self._ascending_orders = np.argsort(samples, axis=0, kind="stable")

    def _ensure_prepared(self, samples: np.ndarray) -> None:
        if self._samples is None or self._samples is not samples:
            self.prepare(samples)

    def find_violations(self, samples: np.ndarray, direction: np.ndarray) -> MaintenanceResult:
        return self._run(samples, direction, gamma=None)

    # The hybrid strategy reuses the same walking logic with a fall-back.
    def _run(
        self, samples: np.ndarray, direction: np.ndarray, gamma: Optional[float]
    ) -> MaintenanceResult:
        samples = require_matrix(samples, "samples")
        direction = require_vector(direction, "direction", length=samples.shape[1])
        self._ensure_prepared(samples)
        num_samples, num_features = samples.shape
        # Violation condition: w · direction < 0, i.e. w · q > 0 for q = -direction.
        query = -direction
        active_features = [j for j in range(num_features) if query[j] != 0.0]
        if not active_features:
            # The two packages have identical feature vectors: nothing can violate.
            return MaintenanceResult(np.zeros(0, dtype=int), 0, self._name(gamma))

        # Per active feature, the order of samples by decreasing contribution
        # query[j] * w[j]: descending values when query[j] > 0, ascending otherwise.
        orders = {}
        for j in active_features:
            ascending = self._ascending_orders[:, j]
            orders[j] = ascending[::-1] if query[j] > 0 else ascending
        positions = {j: 0 for j in active_features}
        boundary = {j: None for j in active_features}

        seen: Set[int] = set()
        violating: Set[int] = set()
        accesses = 0
        fell_back = False
        feature_cycle = list(active_features)
        cursor = 0

        while True:
            # Pick the next list (round-robin) that still has unread entries.
            attempts = 0
            while attempts < len(feature_cycle):
                j = feature_cycle[cursor % len(feature_cycle)]
                cursor += 1
                attempts += 1
                if positions[j] < num_samples:
                    break
            else:
                break  # every list exhausted
            if positions[j] >= num_samples:
                break

            index = int(orders[j][positions[j]])
            positions[j] += 1
            boundary[j] = samples[index, j]
            if index not in seen:
                seen.add(index)
                accesses += 1
                if float(samples[index] @ query) > 0.0:
                    violating.add(index)

            # Threshold test: the best possible score of an unseen sample is
            # bounded by the boundary value vector τ of the last accessed
            # entries (using the per-feature extreme for lists not touched yet).
            tau_score = 0.0
            for f in active_features:
                if boundary[f] is None:
                    column = samples[:, f]
                    tau_value = column.max() if query[f] > 0 else column.min()
                else:
                    tau_value = boundary[f]
                tau_score += query[f] * tau_value
            if tau_score <= 0.0:
                break

            if gamma is not None:
                processed = sum(positions.values())
                remaining_in_current = num_samples - positions[j]
                if processed + remaining_in_current >= (1.0 + gamma) * num_samples:
                    # Fall back: scan the remainder of the current list directly.
                    fell_back = True
                    for pos in range(positions[j], num_samples):
                        index = int(orders[j][pos])
                        if index in seen:
                            continue
                        seen.add(index)
                        accesses += 1
                        if float(samples[index] @ query) > 0.0:
                            violating.add(index)
                    break

        return MaintenanceResult(
            np.asarray(sorted(violating), dtype=int),
            accesses,
            self._name(gamma),
            fell_back=fell_back,
        )

    @staticmethod
    def _name(gamma: Optional[float]) -> str:
        return "ta" if gamma is None else "hybrid"


class HybridMaintenance(ThresholdMaintenance):
    """Algorithm 1: TA-based search with a γ-controlled fall-back to scanning."""

    short_name = "hybrid"

    def __init__(self, gamma: float = 0.025) -> None:
        super().__init__()
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.gamma = gamma

    def find_violations(self, samples: np.ndarray, direction: np.ndarray) -> MaintenanceResult:
        return self._run(samples, direction, gamma=self.gamma)


@dataclass
class SampleMaintainer:
    """Maintain a sample pool against incoming feedback (replace violators only).

    Parameters
    ----------
    strategy:
        How violating samples are located (naive / TA / hybrid).
    sampler:
        Sampler used to draw replacement samples under the updated constraints;
        optional — without it, violators are simply dropped.
    """

    strategy: MaintenanceStrategy
    sampler: Optional[Sampler] = None

    def apply_feedback(
        self,
        pool: SamplePool,
        direction: np.ndarray,
        updated_constraints: Optional[ConstraintSet] = None,
        replace: bool = True,
    ) -> tuple:
        """Apply one new preference to the pool.

        Returns ``(new_pool, maintenance_result)``.  When ``replace`` is true
        and a sampler is configured, the violating samples are replaced by
        fresh draws that satisfy ``updated_constraints`` so the pool keeps its
        size; otherwise violators are dropped.
        """
        direction = require_vector(direction, "direction", length=pool.num_features)
        result = self.strategy.find_violations(pool.samples, direction)
        if result.num_violations == 0:
            return pool, result
        keep_mask = np.ones(pool.size, dtype=bool)
        keep_mask[result.violating_indices] = False
        surviving = pool.subset(keep_mask)
        if not replace or self.sampler is None:
            return surviving, result
        if updated_constraints is None:
            raise ValueError(
                "updated_constraints is required when replacing violating samples"
            )
        replacement = self.sampler.sample(result.num_violations, updated_constraints)
        return surviving.concatenate(replacement), result

    def soft_apply_feedback(
        self, pool: SamplePool, direction: np.ndarray, psi: float
    ) -> tuple:
        """Weighted (§7) maintenance: downweight the violators instead of dropping.

        The configured strategy still *locates* the violating samples (so the
        Figure-7 access accounting applies unchanged), but each violator's
        importance weight is multiplied by ``1 − ψ`` — the probability the new
        preference was itself noise — rather than being replaced or removed.
        The pool keeps its size, no sampler is invoked, and at ψ = 1 the
        result carries the same surviving mass as hard maintenance (violators
        get weight 0 instead of disappearing).  Returns
        ``(new_pool, maintenance_result)``.
        """
        require_probability(psi, "psi")
        direction = require_vector(direction, "direction", length=pool.num_features)
        result = self.strategy.find_violations(pool.samples, direction)
        if result.num_violations == 0:
            return pool, result
        # Scale exactly the indices the strategy located (recomputing the
        # violation mask would throw away the TA/hybrid access savings).
        weights = pool.weights.copy()
        weights[result.violating_indices] *= 1.0 - psi
        return (
            SamplePool(pool.samples.copy(), weights, dict(pool.stats)),
            result,
        )
