"""Effective Number of Samples (ENS) — sampler-quality metric (Equation 3).

The paper compares samplers with the classic ENS of Kong, Liu & Wong:

``ENS(P, Q) = N / (1 + χ²(P, Q))``

where ``P`` is the target (the constrained posterior), ``Q`` the proposal the
samples were actually drawn from and χ² the chi-square divergence between the
two.  Theorems 1 and 2 establish the ordering ``ENS(RS) ≤ ENS(IS) ≤ ENS(MS)``.

The χ² divergence between a truncated Gaussian mixture and an arbitrary
proposal has no closed form, so this module provides:

* :func:`ens_from_weights` — the standard self-normalised estimator computed
  from realised importance weights (exact for rejection/MCMC pools whose
  weights are all 1: it returns the pool size);
* :func:`chi_square_distance` — a Monte-Carlo estimate of the χ² divergence
  from densities evaluated on a common evaluation sample;
* :func:`effective_number_of_samples` — Equation 3 assembled from the above.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sampling.base import ConstraintSet, SamplePool
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.utils.validation import require_matrix


def ens_from_weights(weights: np.ndarray) -> float:
    """Kish / self-normalised ENS estimate ``(Σ q)² / Σ q²`` from importance weights.

    Equals the number of samples when all weights are equal (rejection or MCMC
    pools) and degrades toward 1 as the weights become more unbalanced.
    """
    weights = np.asarray(weights, dtype=float).ravel()
    if weights.size == 0:
        return 0.0
    if (weights < 0).any():
        raise ValueError("importance weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        return 0.0
    return float(total**2 / np.square(weights).sum())


def pool_ens(pool: SamplePool) -> float:
    """ENS of a sample pool (convenience wrapper over :func:`ens_from_weights`)."""
    return ens_from_weights(pool.weights)


def chi_square_distance(
    target_density: Callable[[np.ndarray], np.ndarray],
    proposal_density: Callable[[np.ndarray], np.ndarray],
    evaluation_points: np.ndarray,
) -> float:
    """Monte-Carlo estimate of ``χ²(P, Q) = ∫ (P - Q)² / Q``.

    ``evaluation_points`` should be drawn from the proposal ``Q`` so the
    integral can be estimated as ``E_Q[((P - Q)/Q)²] = E_Q[(P/Q - 1)²]``.
    """
    points = require_matrix(evaluation_points, "evaluation_points")
    if points.shape[0] == 0:
        raise ValueError("at least one evaluation point is required")
    p = np.atleast_1d(np.asarray(target_density(points), dtype=float))
    q = np.atleast_1d(np.asarray(proposal_density(points), dtype=float))
    q = np.where(q <= 0, np.finfo(float).tiny, q)
    ratio = p / q
    return float(np.mean((ratio - 1.0) ** 2))


def effective_number_of_samples(
    num_samples: int,
    target_density: Callable[[np.ndarray], np.ndarray],
    proposal_density: Callable[[np.ndarray], np.ndarray],
    evaluation_points: np.ndarray,
) -> float:
    """Equation 3: ``ENS = N / (1 + χ²(P, Q))`` via Monte-Carlo χ² estimation."""
    if num_samples < 0:
        raise ValueError(f"num_samples must be non-negative, got {num_samples}")
    chi2 = chi_square_distance(target_density, proposal_density, evaluation_points)
    return num_samples / (1.0 + chi2)


def truncated_posterior_density(
    prior: GaussianMixture,
    constraints: ConstraintSet,
    normalisation_samples: int = 20_000,
    rng=None,
) -> Callable[[np.ndarray], np.ndarray]:
    """Unnormalised-then-renormalised density of the constrained posterior.

    The posterior is the prior truncated to the valid region (Lemma 1).  The
    normalising constant (the prior mass of the valid region) is estimated by
    Monte Carlo with ``normalisation_samples`` prior draws.

    Returns a callable mapping ``(n, m)`` points to density values.
    """
    draws = prior.sample(normalisation_samples, rng=rng)
    valid_fraction = float(constraints.valid_mask(draws).mean()) if draws.size else 1.0
    valid_fraction = max(valid_fraction, 1e-12)

    def density(points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        base = np.atleast_1d(prior.pdf(points))
        mask = constraints.valid_mask(points)
        return np.where(mask, base / valid_fraction, 0.0)

    return density
