"""The :class:`Telemetry` facade the serving layers hold.

One object bundles the three telemetry surfaces:

* a :class:`~repro.obs.metrics.MetricsRegistry` (always live — counters are
  cheap and the consolidated ``engine.observe()`` tree reads them even when
  tracing is off);
* a :class:`~repro.obs.tracing.Tracer` plus sink, gated by ``enabled``;
* labeled **alarms**: ``alarm("replay_divergence", ...)`` increments
  ``repro_alarms_total{kind="replay_divergence"}`` and emits a structured
  trace event that is always kept by the sampler.

Every instrumentation site in the serving code is written against this
facade and guards with ``telemetry.enabled`` (or calls ``span()``, which
returns a shared no-op context manager when disabled), so a disabled
instance costs one attribute check — the property the telemetry-overhead
bench holds to its ≤5% ceiling.

Components that expose legacy stats objects register them as *observables*
(``register_observable("dispatcher", fn)``); ``engine.observe()`` folds
them into one tree next to the registry snapshot.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import InMemoryTraceSink, TraceSink, Tracer

__all__ = ["Telemetry"]


@contextmanager
def _noop_span() -> Iterator[None]:
    yield None


class Telemetry:
    """Registry + tracer + alarms behind one ``enabled`` switch.

    ``Telemetry()`` is on; ``Telemetry.disabled()`` builds the inert
    instance the engine defaults to.  The registry works either way —
    ``alarm()`` always counts, it just skips the trace event when tracing
    is off.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        sink: Optional[TraceSink] = None,
        slow_ms: float = 50.0,
        sample_every: int = 10,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = registry or MetricsRegistry()
        self.sink = sink or InMemoryTraceSink()
        self.tracer = Tracer(
            self.sink, slow_ms=slow_ms, sample_every=sample_every
        )
        self._alarms = self.registry.counter(
            "repro_alarms_total",
            "Alarm events by kind (replay divergence, shed, ESS gate, ...)",
            labels=("kind",),
        )
        self._observables: Dict[str, Callable[[], Any]] = {}

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    # -- tracing -----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a traced span, or a shared no-op context when disabled."""
        if not self.enabled:
            return _noop_span()
        return self.tracer.span(name, **attrs)

    def annotate(self, **attrs: Any) -> None:
        if self.enabled:
            self.tracer.annotate(**attrs)

    def record_child(self, name: str, duration_seconds: float, **attrs):
        if self.enabled:
            return self.tracer.record_child(name, duration_seconds, **attrs)
        return None

    def drain_traces(self):
        """Drain and return captured traces (in-memory sinks only)."""
        drain = getattr(self.sink, "drain", None)
        return drain() if drain is not None else []

    # -- alarms ------------------------------------------------------------

    def alarm(self, kind: str, **attrs: Any) -> None:
        """Count an alarm and emit a structured, always-kept trace event.

        Inside an open trace the alarm becomes a child span (and pins the
        whole trace past sampling); outside one it is emitted as its own
        single-span trace, so alarms are never lost to request sampling.
        """
        self._alarms.labels(kind=kind).inc()
        if not self.enabled:
            return
        if self.tracer.current is not None:
            self.tracer.record_child(f"alarm.{kind}", 0.0, **attrs)
            self.tracer.mark_keep()
        else:
            span = self.tracer.start_span(f"alarm.{kind}", **attrs)
            self.tracer.mark_keep()
            self.tracer.end_span(span)

    def alarm_count(self, kind: str) -> float:
        return self._alarms.labels(kind=kind).value

    # -- consolidated observation -----------------------------------------

    def register_observable(self, name: str, fn: Callable[[], Any]) -> None:
        """Expose a legacy stats surface under ``engine.observe()[name]``."""
        self._observables[name] = fn

    def observables(self) -> Dict[str, Any]:
        return {name: fn() for name, fn in sorted(self._observables.items())}

    # -- export ------------------------------------------------------------

    def prometheus_text(self) -> str:
        return self.registry.render_prometheus()

    def describe(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "tracer": self.tracer.describe(),
            "sink": type(self.sink).__name__,
            "observables": sorted(self._observables),
        }
