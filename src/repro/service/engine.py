"""The multi-session recommendation engine (request/response facade).

:class:`RecommendationEngine` serves many concurrent preference-elicitation
sessions over one shared catalog.  Per-session state stays tiny (preference
DAG, counters, RNG); the expensive artifacts are shared across sessions:

* **Sample pools** — keyed by the canonical fingerprint of the session's
  constraint set and owned by a fingerprint-partitioned
  :class:`~repro.service.pool_repository.PoolRepository`: every pool lookup
  routes by key to its owning shard, each shard has its own LRU budget and
  pinned (warm) set, and cache fills for different shards are independent
  work items the shard backend can run in parallel.  On a cache miss the
  engine first *maintains* the session's pre-feedback pool (§3.4: keep the
  still-valid samples, top up the rest) instead of resampling from scratch.
  Fills are **key-deterministic**: the fill sampler's RNG derives from the
  engine seed plus the pool key, so a pool's contents do not depend on shard
  placement, shard count, or fill order — 1-shard and N-shard engines serve
  bit-identical rounds, and a snapshot can reference a pool by fingerprint
  alone.
* **Top-k results** — for a given pool, ``k`` and semantics the ranked
  "exploit" packages are identical for every session, so they are cached too;
  only the random exploration packages are drawn per session.  When the
  top-k cache *misses* (heterogeneous sessions whose constraint sets differ),
  the per-sample ``Top-k-Pkg`` queries run through the vectorised
  :class:`~repro.topk.batch_search.BatchTopKPackageSearcher`: one shared
  sorted-list walk for the whole sample pool instead of one Python search
  per weight sample.
* **Sampling work** — :meth:`recommend_many` groups pending sessions by
  constraint fingerprint and hands every missing pool to the repository as
  one :meth:`~repro.service.pool_repository.ShardedPoolRepository.fill_many`
  batch, grouped per shard.
* **Warm starts** — :meth:`warm_start` (or
  ``EngineConfig.warm_start_first_clicks``) precomputes and pins the
  empty-prefix pool and the top-K first-click pools via
  :class:`~repro.service.pool_repository.WarmStartPlanner`, so cold sessions
  never sample.

Session lifecycle (bounded active set, TTL expiry, LRU swap-out to a durable
store, snapshot/restore) is delegated to
:class:`~repro.service.session_manager.SessionManager`.  Swap-out snapshots
reference their pool by fingerprint (the pool payload is stored once per
distinct key in the session store's pool table) instead of embedding
``num_samples × m`` floats per session — snapshot compaction.
"""

from __future__ import annotations

import hashlib
import tempfile
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.elicitation import (
    ElicitationConfig,
    PackageRecommender,
    RecommendationRound,
)
from repro.core.items import ItemCatalog
from repro.core.packages import Package, PackageEvaluator
from repro.core.predicates import PredicateSet
from repro.core.preferences import Preference
from repro.core.profiles import AggregateProfile
from repro.core.ranking import rank_from_samples
from repro.obs import Telemetry
from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.batch import BatchRejectionSampler
from repro.sampling.fillspec import (
    FillContext,
    FillSpec,
    PriorSpec,
    derive_fill_seed,
    register_fill_context,
)
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.importance import ImportanceSampler
from repro.sampling.maintenance import partial_refill_split
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reweight import residual_resample
from repro.service.adaptation import (
    AdaptationConfig,
    ConstraintSimilarityIndex,
    PoolAdapter,
)
from repro.service.eventlog import (
    EVENT_FEEDBACK,
    EVENT_RECOMMEND_SERVED,
    EventLogStore,
    REPLAY_PAYLOAD_KIND,
    ReplayDivergenceError,
)
from repro.service.pool_cache import LruCache
from repro.service.pool_repository import (
    PoolFillJob,
    PoolRepository,
    ShardedPoolRepository,
    WarmStartPlanner,
    WarmStartReport,
    build_shard_backend,
    parse_shard_backend,
)
from repro.topk.batch_search import BatchTopKPackageSearcher, CandidateCarryover
from repro.service.session_manager import (
    SessionEntry,
    SessionExpiredError,
    SessionManager,
    SessionNotFoundError,
)
from repro.service.store import SessionStore
from repro.utils.rng import ensure_rng

__all__ = [
    "EngineConfig",
    "EngineStats",
    "PoolUnavailableError",
    "RecommendationEngine",
    "SessionNotFoundError",
    "SessionExpiredError",
]


class PoolUnavailableError(RuntimeError):
    """Serving this round would require a pool fill (degraded mode refuses).

    Raised by :meth:`RecommendationEngine.recommend_cached` when the
    session's pool is neither materialised nor resolvable from the pool
    repository by exact fingerprint match — the only paths that avoid
    sampling.  The micro-batch dispatcher's ``shed_mode="degrade"`` catches
    it and sheds the request instead.
    """

#: Snapshot schema version written by :meth:`RecommendationEngine.snapshot`.
#: Version 2 added pool-by-reference payloads (``pool: {"key": ...}`` without
#: samples); version-1 payloads (pool always embedded) restore unchanged.
SNAPSHOT_VERSION = 2

#: Snapshot versions :meth:`RecommendationEngine.restore` accepts.
SUPPORTED_SNAPSHOT_VERSIONS = (1, 2)

#: Event-log replay payload versions :meth:`RecommendationEngine.restore`
#: accepts (the ``kind == "eventlog-replay"`` payloads an
#: :class:`~repro.service.eventlog.EventLogStore` emits).
SUPPORTED_REPLAY_VERSIONS = (1,)


@dataclass
class EngineConfig:
    """Serving-layer configuration wrapped around an elicitation config.

    Attributes
    ----------
    elicitation:
        Per-session recommender configuration (its ``seed`` is replaced by a
        per-session seed derived from ``seed`` below).
    max_active_sessions:
        In-memory session capacity; LRU sessions beyond it are swapped out to
        the session store (or dropped when no store is configured).
    session_ttl_seconds:
        Idle time after which a session expires permanently; ``None`` never
        expires.
    pool_cache_size:
        Total pool-storage budget of the pool repository, split across its
        shards; ``0`` disables pool sharing entirely (every session samples
        for itself — the per-user baseline).
    pool_shards:
        Number of partitions the repository consistent-hashes pool keys
        across.  Results are bit-identical for any shard count; sharding
        changes *where* fills run, never what they produce.
    pool_shard_backend:
        ``"inline"`` (sequential, default), ``"thread"`` (one worker per
        shard; fills for different shards overlap but share the GIL), or
        ``"process"`` (a persistent worker-process pool — fills escape the
        GIL entirely; see
        :class:`~repro.service.pool_repository.ProcessShardBackend`).  A
        ``":N"`` suffix overrides the worker count, e.g. ``"process:4"``.
    topk_cache_size:
        Capacity of the shared top-k result cache; ``0`` disables it.
    use_batch_sampler:
        Fill pools with vectorised block rejection sampling (with per-set
        MCMC fallback) instead of the configured per-session sampler kind.
    batch_block_size / batch_max_blocks:
        Candidate-block parameters of the batch fill samplers.
    maintain_on_miss:
        On a pool-cache miss after feedback, keep the still-valid samples of
        the session's previous pool and only top up the deficit (§3.4) rather
        than resampling the full pool.
    pool_adaptation:
        When not ``None``, enable approximate pool reuse: on a pool-repository
        miss a :class:`~repro.service.adaptation.PoolAdapter` looks for live
        donor pools whose constraint sets are near the target (prefix /
        one-click-apart / high-overlap, via a similarity index over the keys
        this engine has derived), importance-reweights the nearest donors with
        the §7 noise-model likelihood ratio (weight ``∝ (1 − ψ)^x`` for ``x``
        violated target preferences) and serves the best adapted pool when its
        effective sample size clears ``min_ess_fraction × num_samples`` —
        skipping the sampling entirely.  Requires ``pool_cache_size > 0``
        (donors live in the repository).  Adapted pools are marked in their
        ``stats`` and carry distinct content digests; they are never mistaken
        for exact key-deterministic builds.
    batch_search_across_sessions:
        In :meth:`RecommendationEngine.recommend_many`, answer the top-k
        queries of *all* top-k-cache-missing sessions in one concatenated
        :meth:`~repro.topk.batch_search.BatchTopKPackageSearcher.search_pools`
        call — one shared sorted-list walk across every distinct pool in the
        batch — instead of one batch search per pool.  Requires the pool and
        top-k caches plus ``use_batch_search`` in the elicitation config;
        without them the per-session path is used.
    search_carryover:
        Cross-round candidate carryover (incremental search): the engine's
        batch searcher keeps a bounded
        :class:`~repro.topk.batch_search.CandidateCarryover` cache of the
        candidate packages each pool-key's search discovered, and a session's
        post-click search is seeded from its pre-click key's candidates.
        Seeds are *hints* — every carried candidate is re-scored under the
        new weight vectors and the η/τ bound machinery runs unchanged — so
        results are exact (bit-identical to an uncached search); only the
        sorted-list walk shortens.  Default on.
    partial_refill:
        ESS-deficit partial refill (incremental sampling): on a pool miss
        after feedback, instead of the all-or-nothing choice between §3.4
        hard maintenance and full resampling, reweight the stale pool's
        samples under the §7 noise model ψ, compute the Kish-ESS deficit
        against ``refill_min_ess_fraction × num_samples``, and draw only
        that many fresh key-deterministic samples.  Changes pool *content*
        (a reweighted-survivor mix rather than the maintained/fresh build),
        so it defaults off; the content is deterministic given the session
        history, and checkpoints carry a refill audit record so replay can
        detect tampering.  Requires a resolvable ψ (``refill_psi`` or the
        elicitation ``noise_psi``).
    refill_psi:
        Noise probability used by the partial-refill reweighting; ``None``
        falls back to the elicitation config's ``noise_psi``.
    refill_min_ess_fraction:
        Partial refill tops the reweighted survivors up until their Kish ESS
        reaches this fraction of ``num_samples`` (in ``(0, 1]``).
    refill_max_pool_multiple:
        Merged refill pools larger than this multiple of ``num_samples`` are
        residual-resampled back down to ``num_samples`` (deterministically,
        by pool key) to bound memory; must be ``>= 1``.
    warm_start_first_clicks:
        When not ``None``, run :meth:`RecommendationEngine.warm_start` at
        construction: pin the empty-prefix pool plus the pools of the top
        ``warm_start_first_clicks`` first-click choices (``0`` warms the
        empty-prefix pool only).
    catalog_backing:
        ``"materialized"`` (default) serves from the catalog as constructed.
        ``"mmap"`` ensures the engine serves from a memory-mapped columnar
        store: a catalog that is already mmap-backed is used as-is; a
        materialized one is written to a temporary columnar store at engine
        construction and reopened through ``np.memmap``.  Either way the
        engine's fill context then references the catalog by content digest
        (store path shipped, not arrays), so process-shard workers mmap the
        shared store instead of receiving catalog copies — results are
        bit-identical across backings.
    seed:
        Engine-level seed; all per-session seeds and per-key fill seeds
        derive from it.
    """

    elicitation: ElicitationConfig = field(default_factory=ElicitationConfig)
    max_active_sessions: int = 10_000
    session_ttl_seconds: Optional[float] = None
    pool_cache_size: int = 512
    pool_shards: int = 1
    pool_shard_backend: str = "inline"
    topk_cache_size: int = 2_048
    use_batch_sampler: bool = True
    batch_block_size: int = 2_048
    batch_max_blocks: int = 64
    maintain_on_miss: bool = True
    pool_adaptation: Optional[AdaptationConfig] = None
    batch_search_across_sessions: bool = True
    search_carryover: bool = True
    partial_refill: bool = False
    refill_psi: Optional[float] = None
    refill_min_ess_fraction: float = 0.5
    refill_max_pool_multiple: float = 2.0
    warm_start_first_clicks: Optional[int] = None
    catalog_backing: str = "materialized"
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.catalog_backing not in ("materialized", "mmap"):
            raise ValueError(
                f"catalog_backing must be 'materialized' or 'mmap', "
                f"got {self.catalog_backing!r}"
            )
        if self.max_active_sessions <= 0:
            raise ValueError(
                f"max_active_sessions must be > 0, got {self.max_active_sessions}"
            )
        if self.pool_cache_size < 0 or self.topk_cache_size < 0:
            raise ValueError("cache sizes must be >= 0")
        if self.pool_shards <= 0:
            raise ValueError(f"pool_shards must be > 0, got {self.pool_shards}")
        # Accepts "inline" / "thread" / "process", each optionally suffixed
        # ":N" to override the worker count; unknown names raise here with
        # the valid list.
        parse_shard_backend(self.pool_shard_backend)
        if (
            self.warm_start_first_clicks is not None
            and self.warm_start_first_clicks < 0
        ):
            raise ValueError(
                f"warm_start_first_clicks must be >= 0 or None, "
                f"got {self.warm_start_first_clicks}"
            )
        if self.warm_start_first_clicks is not None and self.pool_cache_size == 0:
            raise ValueError(
                "warm_start_first_clicks requires pool_cache_size > 0 "
                "(warm pools are pinned in the pool repository)"
            )
        if self.pool_adaptation is not None and self.pool_cache_size == 0:
            raise ValueError(
                "pool_adaptation requires pool_cache_size > 0 "
                "(donor pools are found among live repository keys)"
            )
        if not 0.0 < self.refill_min_ess_fraction <= 1.0:
            raise ValueError(
                f"refill_min_ess_fraction must be in (0, 1], "
                f"got {self.refill_min_ess_fraction}"
            )
        if self.refill_max_pool_multiple < 1.0:
            raise ValueError(
                f"refill_max_pool_multiple must be >= 1, "
                f"got {self.refill_max_pool_multiple}"
            )
        if self.refill_psi is not None and not 0.0 <= self.refill_psi <= 1.0:
            raise ValueError(
                f"refill_psi must be in [0, 1] or None, got {self.refill_psi}"
            )
        if self.partial_refill and self.refill_noise_psi is None:
            raise ValueError(
                "partial_refill requires a noise model: set refill_psi or "
                "the elicitation config's noise_psi"
            )

    @property
    def sharing_enabled(self) -> bool:
        """Whether any engine-level pool management is active."""
        return (
            self.pool_cache_size > 0
            or self.topk_cache_size > 0
            or self.use_batch_sampler
        )

    @property
    def refill_noise_psi(self) -> Optional[float]:
        """The ψ partial refill reweights under (explicit, else elicitation's)."""
        return (
            self.refill_psi
            if self.refill_psi is not None
            else self.elicitation.noise_psi
        )


@dataclass
class EngineStats:
    """A point-in-time view of the engine's counters."""

    sessions_created: int
    sessions_active: int
    sessions_expired: int
    sessions_swapped_out: int
    sessions_restored: int
    swap_writes_skipped: int
    rounds_served: int
    feedback_events: int
    pools_sampled: int
    pools_maintained: int
    pools_adapted: int
    pools_warmed: int
    topk_batched_pools: int
    pool_cache: dict
    pool_repository: dict
    topk_cache: dict
    adaptation: dict = field(default_factory=dict)
    sessions_replayed: int = 0
    eventlog: dict = field(default_factory=dict)
    #: Total pools the engine built (sampled + maintained + adapted +
    #: partial-refilled); warm-start pins fill through the repository
    #: directly and are counted by ``pools_warmed`` alone.
    pools_built: int = 0
    pools_partial_refilled: int = 0
    candidates_carried: int = 0
    carryover: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "sessions_created": self.sessions_created,
            "sessions_active": self.sessions_active,
            "sessions_expired": self.sessions_expired,
            "sessions_swapped_out": self.sessions_swapped_out,
            "sessions_restored": self.sessions_restored,
            "swap_writes_skipped": self.swap_writes_skipped,
            "rounds_served": self.rounds_served,
            "feedback_events": self.feedback_events,
            "pools_sampled": self.pools_sampled,
            "pools_maintained": self.pools_maintained,
            "pools_adapted": self.pools_adapted,
            "pools_warmed": self.pools_warmed,
            "topk_batched_pools": self.topk_batched_pools,
            "pool_cache": dict(self.pool_cache),
            "pool_repository": dict(self.pool_repository),
            "topk_cache": dict(self.topk_cache),
            "adaptation": dict(self.adaptation),
            "sessions_replayed": self.sessions_replayed,
            "eventlog": dict(self.eventlog),
            "pools_built": self.pools_built,
            "pools_partial_refilled": self.pools_partial_refilled,
            "candidates_carried": self.candidates_carried,
            "carryover": dict(self.carryover),
        }


class RecommendationEngine:
    """Serve many elicitation sessions over one catalog with shared caches.

    Parameters
    ----------
    catalog / profile:
        The item catalog and aggregate profile every session recommends over.
    config:
        Engine configuration (defaults are reasonable for tests and demos).
    store:
        Optional durable :class:`SessionStore` for swap-out and restarts;
        reference snapshots persist their pool payloads to its pool table.
    predicates:
        Optional package-schema predicates applied by every session.
    catalog_predicate:
        Optional item-eligibility predicate
        (:class:`repro.data.columnar.CatalogPredicate`) pushed down into
        every searcher the engine builds: the sorted-list walks and random
        draws of every session see only eligible items.
    clock:
        Monotonic time source used for TTL/LRU bookkeeping (injectable).
    pool_repository:
        Optional externally built :class:`PoolRepository`; by default a
        :class:`ShardedPoolRepository` is constructed from the config
        (``pool_cache_size`` / ``pool_shards`` / ``pool_shard_backend``).
    telemetry:
        Optional :class:`~repro.obs.Telemetry` facade.  When given, the
        engine threads request traces through serving (dispatcher admission
        → recommend → pool provisioning → batch search → event-log append),
        observes latency histograms, and fires labeled alarms; the default
        is a disabled instance whose per-site cost is one attribute check
        (alarm counters still count either way).
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        profile: AggregateProfile,
        config: Optional[EngineConfig] = None,
        store: Optional[SessionStore] = None,
        predicates: Optional[PredicateSet] = None,
        clock: Callable[[], float] = time.monotonic,
        pool_repository: Optional[PoolRepository] = None,
        catalog_predicate=None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        # catalog_backing="mmap": serve from a memory-mapped columnar store.
        # A catalog that already is one is used as-is; a materialized one is
        # written out once (temporary store, lives as long as the engine) and
        # reopened through np.memmap — the data and sort orders the sessions
        # consume are then shared pages, not per-engine arrays.
        self._catalog_store_tmp: Optional[tempfile.TemporaryDirectory] = None
        if (
            self.config.catalog_backing == "mmap"
            and catalog.backing_kind != "mmap"
        ):
            from repro.data.columnar import open_catalog_store, write_catalog_store

            self._catalog_store_tmp = tempfile.TemporaryDirectory(
                prefix="repro-catalog-"
            )
            write_catalog_store(catalog, self._catalog_store_tmp.name)
            catalog = open_catalog_store(self._catalog_store_tmp.name)
        self.catalog = catalog
        self.profile = profile
        self.store = store
        self.predicates = predicates
        self.catalog_predicate = catalog_predicate
        self.clock = clock
        # Log-backed store: sessions persist as events, restore is replay.
        self.event_log: Optional[EventLogStore] = (
            store if isinstance(store, EventLogStore) else None
        )
        if self.event_log is not None and not self.config.sharing_enabled:
            # With sharing disabled each session samples its pool from its own
            # RNG, so replaying clicks without re-running those sampling draws
            # would desynchronise the RNG stream — replay restore requires the
            # provider path, where pool fills never touch session randomness.
            raise ValueError(
                "EventLogStore requires pool sharing "
                "(pool_cache_size > 0, topk_cache_size > 0, or "
                "use_batch_sampler): replay restore relies on pool fills "
                "that do not consume session RNG"
            )
        elicitation = self.config.elicitation
        self._seed_rng = ensure_rng(self.config.seed)
        # One prior shared by every session: pools are only interchangeable
        # across sessions when they target the same prior distribution.
        self.prior = GaussianMixture.default_prior(
            catalog.num_features,
            elicitation.num_prior_components,
            elicitation.prior_spread,
            rng=self._seed_rng,
        )
        # Root of every per-key fill seed.  With a seeded engine this is the
        # seed itself, so fills are reproducible across engine instances (the
        # basis of restore-by-reference); an unseeded engine draws a random
        # root once, keeping its fills internally consistent but private.
        self._fill_seed_root = (
            self.config.seed
            if self.config.seed is not None
            else int(self._seed_rng.integers(0, 2**63 - 1))
        )
        # The engine's shareable fill state as plain data, registered in the
        # process-local context registry.  Inline and thread fills resolve it
        # right back out of the registry; a process backend ships it to its
        # workers once via their initializer.  Registration is idempotent by
        # content, so many engines over one prior share one entry.
        if self.catalog.backing_kind == "mmap" and self.catalog.store_path:
            # Reference the catalog by content: workers resolve the digest to
            # the store path and mmap it locally — no arrays over the pipe.
            self._fill_context = FillContext(
                prior=PriorSpec.from_mixture(self.prior),
                catalog_path=self.catalog.store_path,
                catalog_digest=self.catalog.content_digest(),
            )
        else:
            self._fill_context = FillContext(
                prior=PriorSpec.from_mixture(self.prior)
            )
        self._fill_context_digest = register_fill_context(self._fill_context)
        if pool_repository is not None:
            self.pool_repository = pool_repository
        else:
            self.pool_repository = ShardedPoolRepository(
                spec_factory=self._fill_spec,
                num_shards=self.config.pool_shards,
                capacity=self.config.pool_cache_size,
                backend=build_shard_backend(
                    self.config.pool_shard_backend, self.config.pool_shards
                ),
            )
        attach_telemetry = getattr(self.pool_repository, "attach_telemetry", None)
        if attach_telemetry is not None:
            attach_telemetry(self.telemetry)
        if self.event_log is not None:
            self.event_log.attach_telemetry(self.telemetry)
        # Approximate pool reuse (optional): the adapter serves repository
        # misses from reweighted near-miss donor pools; the similarity index
        # it consults is fed by _pool_key, the single choke point every layer
        # derives keys through.
        self.pool_adapter: Optional[PoolAdapter] = None
        if self.config.pool_adaptation is not None:
            self.pool_adapter = PoolAdapter(
                self.pool_repository,
                ConstraintSimilarityIndex(
                    capacity=self.config.pool_adaptation.index_capacity
                ),
                self.config.pool_adaptation,
                seed_root=self._fill_seed_root,
                telemetry=self.telemetry,
            )
        self._topk_cache = LruCache(self.config.topk_cache_size)
        # Engine-level batch searcher for across-session search batching:
        # same construction as every session's own searcher (identical
        # evaluator, predicates and bounded-work caps), so a ranked list it
        # produces is the one the session would have computed itself.
        self.evaluator = PackageEvaluator(
            catalog, profile, elicitation.max_package_size
        )
        self.batch_searcher = BatchTopKPackageSearcher(
            self.evaluator,
            predicates=predicates,
            beam_width=elicitation.search_beam_width,
            max_items_accessed=elicitation.search_items_cap,
            carryover=(
                CandidateCarryover() if self.config.search_carryover else None
            ),
            catalog_predicate=catalog_predicate,
        )
        self.sessions = SessionManager(
            max_active=self.config.max_active_sessions,
            ttl_seconds=self.config.session_ttl_seconds,
            store=store,
            snapshot_fn=self._swap_out_snapshot if store is not None else None,
            restore_fn=self._restore_entry if store is not None else None,
            touch_fn=self._touch_record if self.event_log is not None else None,
            clock=clock,
        )
        self._session_counter = 0
        self._pool_build_counter = 0
        self._freshly_prefetched: set = set()
        self._freshly_searched: set = set()
        self.sessions_created = 0
        self.sessions_replayed = 0
        self.rounds_served = 0
        self.feedback_events = 0
        self.pools_sampled = 0
        self.pools_maintained = 0
        self.pools_adapted = 0
        self.pools_warmed = 0
        self.pools_built = 0
        self.pools_partial_refilled = 0
        self.topk_batched_pools = 0
        # Hot-path instruments, resolved once (registry lookups take a lock).
        registry = self.telemetry.registry
        self._round_latency = registry.histogram(
            "repro_round_latency_seconds", "Per-round serve latency"
        )
        self._requests_total = registry.counter(
            "repro_requests_total", "Serving API calls", labels=("api",)
        )
        if self.config.warm_start_first_clicks is not None:
            self.warm_start(self.config.warm_start_first_clicks)

    #: One-shot guard for the :attr:`pool_cache` deprecation warning (class
    #: level: the alias is deprecated once per process, not once per engine).
    _pool_cache_warned = False

    @property
    def pool_cache(self) -> PoolRepository:
        """Deprecated alias for :attr:`pool_repository` (pre-sharding name)."""
        if not RecommendationEngine._pool_cache_warned:
            RecommendationEngine._pool_cache_warned = True
            warnings.warn(
                "engine.pool_cache is deprecated and will be removed: the "
                "pool store has been the sharded pool repository since the "
                "sharding refactor — use engine.pool_repository",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.pool_repository

    def close_repository(self) -> None:
        """Release the pool repository's shard backend (thread pool, if any)."""
        close = getattr(self.pool_repository, "close", None)
        if close is not None:
            close()

    # =============================================================== lifecycle
    def create_session(
        self,
        session_id: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> str:
        """Open a new elicitation session and return its id.

        ``seed`` fixes the session's private randomness (exploration packages,
        per-session sampler); by default one is derived from the engine seed.
        """
        self.sessions.sweep_expired()
        if session_id is None:
            # Skip over ids taken by restored/explicitly-named sessions.
            while True:
                self._session_counter += 1
                session_id = f"sess-{self._session_counter:06d}"
                if session_id not in self.sessions:
                    break
        elif session_id in self.sessions:
            raise ValueError(f"session id {session_id!r} already exists")
        if seed is None:
            seed = int(self._seed_rng.integers(0, 2**31 - 1))
        entry = self._new_entry(session_id, int(seed))
        if self.event_log is not None:
            # Logged before the session can serve or be evicted: the created
            # event (and its seed) is everything replay needs to start from.
            self.event_log.log_session_created(
                session_id, seed=int(seed), created_at=entry.created_at
            )
        self.sessions.add(entry)
        self.sessions_created += 1
        return session_id

    def _new_entry(self, session_id: str, seed: int) -> SessionEntry:
        session_config = replace(self.config.elicitation, seed=seed)
        recommender = PackageRecommender(
            self.catalog,
            self.profile,
            config=session_config,
            prior=self.prior,
            predicates=self.predicates,
            catalog_predicate=self.catalog_predicate,
        )
        now = self.clock()
        entry = SessionEntry(
            session_id=session_id,
            recommender=recommender,
            seed=seed,
            created_at=now,
            last_access=now,
        )
        if self.config.sharing_enabled:
            recommender.set_pool_provider(
                lambda constraints, count, stale, _entry=entry: self._provide_pool(
                    _entry, constraints, count, stale
                )
            )
        return entry

    def close(self, session_id: str) -> bool:
        """Terminate a session (active or swapped out); returns whether it existed."""
        return self.sessions.remove(session_id)

    def _acquire(self, session_id: str, sweep: bool = True) -> SessionEntry:
        # Acquire first so an expired *target* raises SessionExpiredError
        # (a prior sweep would degrade it to SessionNotFoundError), then
        # opportunistically expire the rest of the table.  Batched callers
        # pass sweep=False and sweep once — a per-acquire sweep would make
        # recommend_many O(batch x active).
        entry = self.sessions.acquire(session_id)
        if sweep:
            self.sessions.sweep_expired()
        return entry

    # ============================================================ pool sourcing
    def _pool_key(self, constraints: ConstraintSet, count: int) -> str:
        key = f"n{count}:{constraints.fingerprint()}"
        if self.pool_adapter is not None:
            # Every key the engine ever derives is registered, so the
            # similarity index can decode live repository keys back to
            # constraint structure when hunting donors.
            self.pool_adapter.index.register(key, constraints, count)
        return key

    def _fill_spec(
        self, key: str, constraints: ConstraintSet, count: int
    ) -> FillSpec:
        """The picklable description of one pool fill (the repository seam).

        This is the repository's determinism contract in data form: the spec
        carries the *derived* RNG seed (engine seed root + key) and a digest
        reference to the engine's registered fill context, so a pool built
        for ``key`` is the same array no matter which shard builds it, in
        what order, under which backend, or in which process — sharded and
        unsharded engines are bit-identical, re-fills after eviction
        reproduce the evicted pool, and restore-by-reference can rebuild a
        missing pool exactly (for pools that were built fresh; maintained
        pools depend on their sessions' history and are persisted, not
        re-derived).
        """
        elicitation = self.config.elicitation
        return FillSpec.for_fill(
            key,
            constraints,
            count,
            sampler=(
                "batch" if self.config.use_batch_sampler else elicitation.sampler
            ),
            seed_root=self._fill_seed_root,
            context_digest=self._fill_context_digest,
            noise_psi=elicitation.noise_psi,
            block_size=self.config.batch_block_size,
            max_blocks=self.config.batch_max_blocks,
        )

    def _fill_sampler(self, key: str) -> Sampler:
        """A fill sampler whose RNG derives from the engine seed and the key.

        The pre-FillSpec sampler construction, kept for the deprecated
        sampler-factory path (constructed identically to what
        :func:`~repro.sampling.fillspec.build_sampler` resolves from a spec,
        so both paths fill bit-identically).
        """
        rng = np.random.default_rng(derive_fill_seed(self._fill_seed_root, key))
        elicitation = self.config.elicitation
        if self.config.use_batch_sampler:
            return BatchRejectionSampler(
                self.prior,
                rng=rng,
                noise_probability=elicitation.noise_psi,
                block_size=self.config.batch_block_size,
                max_blocks=self.config.batch_max_blocks,
            )
        sampler_cls = {
            "rejection": RejectionSampler,
            "importance": ImportanceSampler,
            "mcmc": MetropolisHastingsSampler,
        }[elicitation.sampler]
        return sampler_cls(
            self.prior, rng=rng, noise_probability=elicitation.noise_psi
        )

    def _stamp_pool(self, pool: SamplePool) -> SamplePool:
        """Tag a freshly built pool with a unique build generation.

        The top-k cache keys on (pool key, build); a pool evicted from the
        repository and later rebuilt gets a new generation, so stale top-k
        results computed from the evicted pool can never be served against
        the rebuilt one.
        """
        self._pool_build_counter += 1
        pool.stats["pool_build"] = self._pool_build_counter
        return pool

    def _provide_pool(
        self,
        entry: SessionEntry,
        constraints: ConstraintSet,
        count: int,
        stale: Optional[SamplePool],
    ) -> SamplePool:
        key = self._pool_key(constraints, count)
        if key in self._freshly_prefetched:
            # The first fetch of a pool this engine's own prefetch just built
            # is the miss that caused the build, not a cache win — count it
            # honestly so hit_rate/samples_saved reflect genuinely shared work.
            self._freshly_prefetched.discard(key)
            pool = self.pool_repository.peek(key)
            if pool is not None:
                self.pool_repository.record_miss(key)
                entry.pool_key = key
                return pool
        pool = self.pool_repository.get(key)
        if pool is None:
            with self.telemetry.span("pool.build", key=key, count=count):
                pool = self._stamp_pool(
                    self._build_pool(key, constraints, count, stale)
                )
            self.pool_repository.put(key, pool)
        entry.pool_key = key
        return pool

    def _build_pool(
        self,
        key: str,
        constraints: ConstraintSet,
        count: int,
        stale: Optional[SamplePool],
    ) -> SamplePool:
        self.pools_built += 1
        adapted = self._adapt_pool(key, constraints, count)
        if adapted is not None:
            self.telemetry.annotate(path="adapted")
            return adapted
        refill = self._partial_refill_plan(constraints, count, stale)
        if refill is not None:
            surviving, deficit = refill
            self.telemetry.annotate(path="refill")
            fresh = (
                self._traced_fill(key, constraints, deficit)
                if deficit > 0
                else None
            )
            return self._finish_partial_refill(key, surviving, fresh, count, deficit)
        surviving, deficit = self._maintenance_split(constraints, count, stale)
        if surviving is not None:
            self.pools_maintained += 1
            self.telemetry.annotate(path="maintained")
            if deficit <= 0:
                return surviving
            return surviving.concatenate(
                self._traced_fill(key, constraints, deficit)
            )
        self.pools_sampled += 1
        self.telemetry.annotate(path="sampled")
        return self._traced_fill(key, constraints, count)

    def _traced_fill(
        self, key: str, constraints: ConstraintSet, count: int
    ) -> SamplePool:
        """One repository fill, recorded as a ``pool.fill`` child span."""
        pool = self.pool_repository.fill_one(key, constraints, count)
        self._record_fill_span(key, pool)
        return pool

    def _record_fill_span(self, key: str, pool: SamplePool) -> None:
        """Reconstruct a finished fill as a child span of the open trace.

        Fills execute wherever the shard backend put them — inline, a worker
        thread, or a worker process — so they cannot open spans themselves;
        the engine rebuilds the span from the stats the fill returned
        (``fill_seconds``, and ``fill_worker_pid`` for process fills).
        """
        if not self.telemetry.enabled:
            return
        attrs = {"key": key, "count": pool.size}
        sampler = pool.stats.get("sampler")
        if sampler is not None:
            attrs["sampler"] = sampler
        worker_pid = pool.stats.get("fill_worker_pid")
        if worker_pid is not None:
            attrs["worker_pid"] = int(worker_pid)
        self.telemetry.record_child(
            "pool.fill", float(pool.stats.get("fill_seconds", 0.0)), **attrs
        )

    def _annotate_search(self) -> None:
        """Attach the batch searcher's last walk statistics to the open span.

        Covers the measurement the self-tuning roadmap item needs: rows vs
        deduplicated rows (cross-pool dedup rate), items accessed by the
        sorted-list walk, and how many carried candidates seeded it.
        """
        stats = self.batch_searcher.last_search_stats
        if stats:
            self.telemetry.annotate(**stats)

    def _partial_refill_plan(
        self,
        constraints: ConstraintSet,
        count: int,
        stale: Optional[SamplePool],
    ):
        """ψ-reweighted survivors + ESS fill deficit, or ``None`` for the old path.

        The hybrid of §3.4 maintenance and §7 reweighting: keep *every* stale
        sample at its noise-model importance weight ``(1 − ψ)^x`` and sample
        only the fresh draws needed to lift the pool's Kish ESS back over
        ``refill_min_ess_fraction × count``.  Falls back (returns ``None``)
        when disabled, when there is no stale pool to refill, or when no
        stale mass survives reweighting (a from-scratch fill is then both
        cheaper and statistically necessary).
        """
        if not self.config.partial_refill:
            return None
        psi = self.config.refill_noise_psi
        if psi is None or stale is None or stale.size == 0:
            return None
        if constraints.is_empty():
            return None
        surviving, deficit = partial_refill_split(
            stale, constraints, psi, count, self.config.refill_min_ess_fraction
        )
        if surviving is None:
            return None
        return surviving, deficit

    def _finish_partial_refill(
        self,
        key: str,
        surviving: SamplePool,
        fresh: Optional[SamplePool],
        count: int,
        deficit: int,
    ) -> SamplePool:
        """Merge reweighted survivors with the deficit fill, digest-stably.

        Both sides are scaled to mean weight 1 before merging — the scale the
        ESS-deficit arithmetic assumed (survivor importance weights are only
        defined up to a constant; fresh draws from the target posterior carry
        unit weight) — so the merged pool's Kish ESS is the one the deficit
        was solved for.  Oversized merges are residual-resampled back to
        ``count`` with a key-derived RNG, keeping the content a deterministic
        function of (engine seed, pool key, session history).
        """
        self.pools_partial_refilled += 1
        pool = self._unit_mean_weights(surviving)
        if fresh is not None:
            pool = pool.concatenate(self._unit_mean_weights(fresh))
        cap = int(np.ceil(self.config.refill_max_pool_multiple * count))
        if pool.size > cap:
            pool = residual_resample(pool, count, rng=self._refill_rng(key))
        pool.stats["partial_refill"] = {
            "deficit": int(deficit),
            "survivors": int(surviving.size),
        }
        return pool

    @staticmethod
    def _unit_mean_weights(pool: SamplePool) -> SamplePool:
        """The same pool with weights scaled to mean 1 (ESS-invariant)."""
        total = float(np.sum(pool.weights))
        if total <= 0.0:
            return pool
        return SamplePool(
            pool.samples, pool.weights * (pool.size / total), dict(pool.stats)
        )

    def _refill_rng(self, key: str) -> np.random.Generator:
        """Key-derived RNG for refill downsampling (same discipline as fills)."""
        digest = hashlib.blake2b(
            f"pool-refill:{self._fill_seed_root}:{key}".encode(), digest_size=16
        ).digest()
        return np.random.default_rng(int.from_bytes(digest, "big"))

    def _adapt_pool(
        self, key: str, constraints: ConstraintSet, count: int
    ) -> Optional[SamplePool]:
        """Approximate pool reuse: reweight a near-miss donor instead of filling.

        Tried *before* §3.4 maintenance: where maintenance still samples the
        deficit, a successfully adapted pool skips sampling entirely (the
        ESS gate decides whether that trade is statistically safe).  Returns
        ``None`` when adaptation is disabled, no donor qualifies, or every
        candidate's effective sample size falls below the configured floor.
        """
        if self.pool_adapter is None:
            return None
        pool = self.pool_adapter.adapt(key, constraints, count)
        if pool is not None:
            self.pools_adapted += 1
        return pool

    def _maintenance_split(
        self,
        constraints: ConstraintSet,
        count: int,
        stale: Optional[SamplePool],
    ):
        """(surviving samples, deficit) of the §3.4 maintenance path, if usable."""
        if stale is None or not self.config.maintain_on_miss or stale.size == 0:
            return None, count
        surviving = stale.subset(constraints.valid_mask(stale.samples))
        if surviving.size > count:
            surviving = surviving.subset(np.arange(count))
        return surviving, count - surviving.size

    # ================================================================ warm start
    def warm_start(self, first_clicks: Optional[int] = None) -> WarmStartReport:
        """Precompute and pin the always-hot pools so cold sessions never sample.

        Pins the empty-prefix pool, parks its ranked top-k list in the top-k
        cache, and pins the pools of the top ``first_clicks`` first-click
        choices (default: the elicitation ``k``) — see
        :class:`~repro.service.pool_repository.WarmStartPlanner`.
        """
        report = WarmStartPlanner(self, first_clicks=first_clicks).warm()
        return report

    def warm_start_from_log(
        self, store: Optional[EventLogStore] = None, top_n: int = 8
    ):
        """Warm the most frequently *observed* click-prefix pools from a log.

        Mines the event log's feedback histories for the constraint-set
        prefixes real sessions passed through, frequency-ranks them, and
        fills + pins the pools of the top ``top_n`` — reaching depth-2+
        prefixes that exhaustive first-click enumeration cannot (observed
        prefixes sidestep the combinatorics).  ``store`` defaults to this
        engine's own event-log store.
        """
        if store is None:
            store = self.event_log
        if store is None:
            raise ValueError(
                "warm_start_from_log requires an EventLogStore (pass one, or "
                "construct the engine with one as its session store)"
            )
        return WarmStartPlanner(self).warm_from_log(store, top_n=top_n)

    # ================================================================ serving
    def recommend(self, session_id: str) -> RecommendationRound:
        """Serve one recommendation round for a session."""
        if not self.telemetry.enabled:
            entry = self._acquire(session_id)
            return self._serve_round(entry)
        self._requests_total.labels(api="recommend").inc()
        with self.telemetry.span("engine.recommend", session_id=session_id):
            entry = self._acquire(session_id)
            return self._serve_round(entry)

    def recommend_many(
        self, session_ids: Sequence[str]
    ) -> List[RecommendationRound]:
        """Serve one round for many sessions, batching the missing pools.

        Sessions are grouped by constraint fingerprint; each distinct missing
        pool is handed to the pool repository as one fill batch (maintenance
        first, then per-shard fill groups the shard backend may run in
        parallel) before the per-session rounds are produced.
        """
        if not self.telemetry.enabled:
            return self._recommend_many(session_ids)
        self._requests_total.labels(api="recommend_many").inc()
        with self.telemetry.span(
            "engine.recommend_many", sessions=len(session_ids)
        ):
            return self._recommend_many(session_ids)

    def _recommend_many(
        self, session_ids: Sequence[str]
    ) -> List[RecommendationRound]:
        entries: List[SessionEntry] = []
        fresh_topk_keys: set = set()
        try:
            for session_id in session_ids:
                # Pin before acquiring: the acquire itself may restore from
                # the store and enforce capacity, and neither this session
                # nor the previously acquired ones may be swapped out before
                # their rounds are served.
                self.sessions.pin(session_id)
                entries.append(self._acquire(session_id, sweep=False))
            if self.config.pool_cache_size > 0:
                # Without the pool cache there is nowhere to park a
                # batch-built pool for the per-session providers to pick up,
                # so prefetching would only duplicate the sampling each
                # provider does anyway.
                self._prefetch_pools(entries)
                fresh_topk_keys = self._prefetch_topk(entries)
            return [self._serve_round(entry) for entry in entries]
        finally:
            # Serving normally consumes every freshly searched key; if a
            # serve raised mid-batch, drop the leftovers so they cannot skew
            # later hit/miss accounting or accumulate across failures.
            self._freshly_searched.difference_update(fresh_topk_keys)
            self.sessions.unpin(session_ids)
            self.sessions.sweep_expired()

    def _serve_round(self, entry: SessionEntry) -> RecommendationRound:
        if not self.telemetry.enabled:
            return self._serve_round_impl(entry)
        start = time.perf_counter()
        with self.telemetry.span(
            "engine.serve_round", session_id=entry.session_id
        ):
            round_ = self._serve_round_impl(entry)
        self._round_latency.observe(time.perf_counter() - start)
        return round_

    def _serve_round_impl(self, entry: SessionEntry) -> RecommendationRound:
        recommender = entry.recommender
        recommended: Optional[List[Package]] = None
        # The top-k cache is keyed by the pool key plus the pool's build
        # generation: the key alone only equals pool identity while pools
        # are shared, and the generation guards against serving top-k lists
        # computed from a pool that was evicted and rebuilt since.
        if self.config.topk_cache_size > 0 and self.config.pool_cache_size > 0:
            pool = recommender.sample_pool()  # ensures entry.pool_key is current
            if entry.pool_key is not None:
                key = self._topk_key(entry, pool)
                if key in self._freshly_searched:
                    # First fetch of a ranked list the across-session prefetch
                    # just computed: that is the miss that caused the search,
                    # not a cache win (same honesty rule as pool prefetches).
                    # Count the miss even if the entry was evicted between
                    # put and fetch — a get() would have counted one too.
                    self._freshly_searched.discard(key)
                    cached = self._topk_cache.peek(key)
                    self._topk_cache.record_miss()
                else:
                    cached = self._topk_cache.get(key)
                if cached is None:
                    recommended = self._session_top_k(entry, pool)
                    self._topk_cache.put(key, tuple(recommended))
                else:
                    recommended = list(cached)
                self.telemetry.annotate(
                    pool_key=entry.pool_key, topk_cached=cached is not None
                )
        round_ = recommender.recommend(recommended=recommended)
        entry.rounds_served += 1
        entry.dirty = True
        self.rounds_served += 1
        if self.event_log is not None:
            with self.telemetry.span("eventlog.append", kind="round_served"):
                self.event_log.log_round_served(
                    entry.session_id,
                    recommended=[
                        [int(i) for i in p.items] for p in round_.recommended
                    ],
                    random_packages=[
                        [int(i) for i in p.items] for p in round_.random_packages
                    ],
                )
        return round_

    def recommend_cached(self, session_id: str) -> RecommendationRound:
        """Serve one round from already-materialised state only (no pool fill).

        The degraded-mode serving path: if the session's pool is pending and
        its exact fingerprint key is not live in the pool repository — i.e.
        serving would trigger a sampling fill — raise
        :class:`PoolUnavailableError` instead of paying for it.  Top-k search
        over an available pool still runs (it is the ordinary serve cost);
        only *sampling* is refused.
        """
        entry = self._acquire(session_id)
        recommender = entry.recommender
        if recommender.pending_pool is None:
            if not self.config.sharing_enabled or self.config.pool_cache_size == 0:
                raise PoolUnavailableError(
                    f"session {session_id!r} has no materialised pool and no "
                    f"shared repository to resolve one from"
                )
            key = self._pool_key(
                recommender.constraints, recommender.config.num_samples
            )
            if key not in self.pool_repository:
                raise PoolUnavailableError(
                    f"pool {key!r} for session {session_id!r} is not cached; "
                    f"serving it would require a fill"
                )
        return self._serve_round(entry)

    def feedback(
        self, session_id: str, clicked: Union[int, Package]
    ) -> int:
        """Record a click for a session; returns the preferences added.

        ``clicked`` is either the package object or its index into the most
        recently served round's ``presented`` list.
        """
        entry = self._acquire(session_id)
        recommender = entry.recommender
        round_ = recommender.last_round
        if round_ is None:
            raise ValueError(
                f"session {session_id!r} has no served round to give feedback on"
            )
        if isinstance(clicked, (int, np.integer)):
            presented = round_.presented
            index = int(clicked)
            if not 0 <= index < len(presented):
                raise ValueError(
                    f"clicked index {index} out of range for "
                    f"{len(presented)} presented packages"
                )
            clicked = presented[index]
        added = recommender.feedback(clicked)
        # The click invalidates the session's pool key; remember the pre-click
        # key so the next round's search can seed from its candidates.
        entry.carry_key = entry.pool_key
        entry.feedback_events += 1
        entry.dirty = True
        self.feedback_events += 1
        if self.event_log is not None:
            self.event_log.log_feedback(
                session_id, clicked=[int(i) for i in clicked.items]
            )
        return added

    def _session_top_k(
        self, entry: SessionEntry, pool: SamplePool
    ) -> List[Package]:
        """A session's ranked top-k, seeded from its pre-click candidates.

        Identical construction to
        :meth:`PackageRecommender.current_top_k` — same searched sample rows,
        same searcher parameters, same weighted ranking — run through the
        engine's shared batch searcher so the session's previous round can
        seed the walk: ``carry_in`` is the pool key of the last round the
        session gave feedback on, ``carry_out`` parks this round's
        candidates for the post-click search.  Carried candidates are
        re-validated, so the ranked list is exactly the one the session
        would have computed itself.
        """
        if not self.telemetry.enabled:
            return self._session_top_k_impl(entry, pool)
        with self.telemetry.span(
            "search.topk", mode="session", pool_key=entry.pool_key
        ):
            self.batch_searcher.last_search_stats = None
            ranked = self._session_top_k_impl(entry, pool)
            self._annotate_search()
            return ranked

    def _session_top_k_impl(
        self, entry: SessionEntry, pool: SamplePool
    ) -> List[Package]:
        recommender = entry.recommender
        if (
            self.batch_searcher.carryover is None
            or not recommender.config.use_batch_search
            or entry.pool_key is None
        ):
            return recommender.current_top_k()
        indices = recommender.search_sample_indices(pool)
        results = self.batch_searcher.search_pools(
            [pool.samples[indices]],
            recommender.config.k,
            carry_in=[entry.carry_key],
            carry_out=[entry.pool_key],
        )[0]
        return rank_from_samples(
            results,
            recommender.config.k,
            recommender.config.semantics,
            sample_weights=pool.weights[indices],
        )

    def _topk_key_for(
        self, pool_key: Optional[str], pool: SamplePool, config: ElicitationConfig
    ):
        """Top-k cache key: pool identity (key + build) plus query shape."""
        build = pool.stats.get("pool_build")
        return (pool_key, build, config.k, config.semantics.value)

    def _topk_key(self, entry: SessionEntry, pool: SamplePool):
        return self._topk_key_for(entry.pool_key, pool, entry.recommender.config)

    # ================================================== batched top-k search
    def _prefetch_topk(self, entries: Sequence[SessionEntry]) -> set:
        """Answer every cache-missing top-k query of a batch in one walk.

        With the pools already prefetched, the remaining per-session cost of
        a heterogeneous batch is the ``Top-k-Pkg`` queries — one batch search
        per *distinct pool*.  This step concatenates the searched weight rows
        of every top-k-cache-missing pool into a single
        :meth:`~repro.topk.batch_search.BatchTopKPackageSearcher.search_pools`
        call (one shared sorted-list walk, cross-pool deduplication of
        repeated weight rows) and parks each pool's ranked list in the top-k
        cache for :meth:`_serve_round` to pick up.  Returns the cache keys it
        marked freshly searched, so the caller can clear any left unconsumed
        by a failed serve.
        """
        if (
            not self.config.batch_search_across_sessions
            or self.config.topk_cache_size <= 0
            or not self.config.elicitation.use_batch_search
        ):
            return set()
        if not self.telemetry.enabled:
            return self._prefetch_topk_impl(entries)
        with self.telemetry.span("engine.prefetch_topk"):
            fresh = self._prefetch_topk_impl(entries)
            self.telemetry.annotate(pools_searched=len(fresh))
            return fresh

    def _prefetch_topk_impl(self, entries: Sequence[SessionEntry]) -> set:
        groups: Dict[tuple, dict] = {}
        for entry in entries:
            recommender = entry.recommender
            pool = recommender.sample_pool()  # provider fetch; sets pool_key
            if entry.pool_key is None:
                continue
            key = self._topk_key(entry, pool)
            if key in groups or key in self._topk_cache:
                continue
            if len(groups) >= self._topk_cache.maxsize:
                # More distinct pools than the cache can hold: searching the
                # excess would only have its results evicted before their
                # sessions read them; leave them to the per-session path.
                continue
            indices = recommender.search_sample_indices(pool)
            groups[key] = {
                "matrix": pool.samples[indices],
                "weights": pool.weights[indices],
                "k": recommender.config.k,
                "semantics": recommender.config.semantics,
                # Carryover hints for the concatenated walk: seed this pool's
                # queries from the first grouped session's pre-click key and
                # park the discovered candidates under the pool key.
                "carry_in": entry.carry_key,
                "carry_out": entry.pool_key,
            }
        if not groups:
            return set()
        by_k: Dict[int, List[tuple]] = {}
        for key, group in groups.items():
            by_k.setdefault(group["k"], []).append(key)
        for k, keys in by_k.items():
            with self.telemetry.span(
                "search.topk", mode="batched", pools=len(keys), k=k
            ):
                per_pool = self.batch_searcher.search_pools(
                    [groups[key]["matrix"] for key in keys],
                    k,
                    carry_in=[groups[key]["carry_in"] for key in keys],
                    carry_out=[groups[key]["carry_out"] for key in keys],
                )
                self._annotate_search()
            for key, results in zip(keys, per_pool):
                group = groups[key]
                ranked = rank_from_samples(
                    results, k, group["semantics"], sample_weights=group["weights"]
                )
                self._topk_cache.put(key, tuple(ranked))
                self._freshly_searched.add(key)
                self.topk_batched_pools += 1
        return set(groups)

    # ======================================================== batched sampling
    def _prefetch_pools(self, entries: Sequence[SessionEntry]) -> None:
        """Fill every distinct missing pool for ``entries`` with batched work."""
        if not self.telemetry.enabled:
            return self._prefetch_pools_impl(entries)
        with self.telemetry.span("engine.prefetch_pools"):
            return self._prefetch_pools_impl(entries)

    def _prefetch_pools_impl(self, entries: Sequence[SessionEntry]) -> None:
        groups: Dict[str, dict] = {}
        for entry in entries:
            recommender = entry.recommender
            if recommender.pending_pool is not None:
                continue
            constraints = recommender.constraints
            count = recommender.config.num_samples
            key = self._pool_key(constraints, count)
            group = groups.setdefault(
                key, {"constraints": constraints, "count": count, "stale": None}
            )
            if group["stale"] is None and recommender.stale_pool is not None:
                group["stale"] = recommender.stale_pool
        jobs = []  # (key, constraints, mode, surviving, deficit, count)
        for key, group in groups.items():
            if key in self.pool_repository:
                continue
            self.pools_built += 1
            adapted = self._adapt_pool(key, group["constraints"], group["count"])
            if adapted is not None:
                self.pool_repository.put(key, self._stamp_pool(adapted))
                self._freshly_prefetched.add(key)
                continue
            refill = self._partial_refill_plan(
                group["constraints"], group["count"], group["stale"]
            )
            if refill is not None:
                surviving, deficit = refill
                jobs.append(
                    (key, group["constraints"], "refill", surviving, deficit,
                     group["count"])
                )
                continue
            surviving, deficit = self._maintenance_split(
                group["constraints"], group["count"], group["stale"]
            )
            jobs.append(
                (key, group["constraints"], "maintain", surviving, deficit,
                 group["count"])
            )
        if not jobs:
            return
        # One repository fill batch for every pending deficit: jobs group per
        # shard and (with a parallel backend) different shards fill at once.
        # Per-key seeding makes the result identical to per-session fills.
        fresh_by_key = self.pool_repository.fill_many(
            [
                PoolFillJob(key, constraints, deficit)
                for key, constraints, _mode, _surviving, deficit, _count in jobs
                if deficit > 0
            ]
        )
        if self.telemetry.enabled:
            self.telemetry.annotate(groups=len(groups), fills=len(fresh_by_key))
            for key, pool in fresh_by_key.items():
                self._record_fill_span(key, pool)
        for key, _constraints, mode, surviving, deficit, count in jobs:
            if mode == "refill":
                pool = self._finish_partial_refill(
                    key,
                    surviving,
                    fresh_by_key[key] if deficit > 0 else None,
                    count,
                    deficit,
                )
            elif surviving is not None:
                self.pools_maintained += 1
                pool = (
                    surviving
                    if deficit <= 0
                    else surviving.concatenate(fresh_by_key[key])
                )
            else:
                self.pools_sampled += 1
                pool = fresh_by_key[key]
            self.pool_repository.put(key, self._stamp_pool(pool))
            self._freshly_prefetched.add(key)

    def fill_shard_plan(self, session_ids: Sequence[str]) -> Dict[str, int]:
        """Which shard owns each session's next pool fill, for dispatch grouping.

        Returns ``{session_id: shard_index}`` for every *pool-missing*
        session in ``session_ids``: its next round's pool key is absent from
        the repository, so serving it will trigger a fill on the owning
        shard.  Sessions whose pool is already live (or pending), sessions
        not in memory (swapped out — planning must not force a restore), and
        repositories without shard routing are simply omitted.

        Purely advisory and side-effect free on session state: the
        micro-batch dispatcher uses it to order each window by owning shard
        so one ``recommend_many`` hands each shard a contiguous, already
        grouped ``fill_many`` batch.  Fills are key-deterministic, so any
        ordering serves bit-identical rounds — this only changes how evenly
        the fill work lands across shard workers.
        """
        plan: Dict[str, int] = {}
        shard_for = getattr(self.pool_repository, "shard_for", None)
        if shard_for is None:
            return plan
        for session_id in session_ids:
            entry = self.sessions.peek(session_id)
            if entry is None:
                continue
            recommender = entry.recommender
            if recommender.pending_pool is not None:
                continue
            count = recommender.config.num_samples
            key = f"n{count}:{recommender.constraints.fingerprint()}"
            if key in self.pool_repository:
                continue
            plan[session_id] = shard_for(key).index
        return plan

    # ======================================================= snapshot / restore
    def snapshot(self, session_id: str, embed_pool: bool = True) -> dict:
        """A JSON-serialisable snapshot of a session's full state.

        With ``embed_pool=True`` (default) the payload carries the full
        sample pool and restoring it — in this or a fresh engine over the
        same catalog and configuration — reproduces the session exactly:
        same pending pool, same RNG stream, same next recommendation.

        With ``embed_pool=False`` the payload references the pool by its
        repository key only (snapshot compaction: thousands of sessions
        sharing a pool persist it once).  The pool payload is written to the
        configured store's pool table; on restore the pool is resolved from
        the repository, then the store, and only re-sampled (deterministically
        by key) when both miss.
        """
        entry = self._acquire(session_id)
        return self._snapshot_entry(entry, embed_pool=embed_pool)

    def _swap_out_snapshot(self, entry: SessionEntry) -> dict:
        """SessionManager's snapshot_fn: swap-outs use compact pool references.

        With an event-log store, a replayable session's "snapshot" is just a
        checkpoint event — ``(log offset, pool reference)`` — because its
        whole history is already in the log.  Sessions imported from a blob
        (``entry.replayable`` False) keep writing full blobs: the log never
        saw their history.
        """
        if self.event_log is not None and entry.replayable:
            return self._checkpoint_entry(entry)
        return self._snapshot_entry(entry, embed_pool=False)

    def _touch_record(self, entry: SessionEntry) -> None:
        """SessionManager's touch_fn: clean swap-outs log true last access."""
        self.event_log.log_touch(entry.session_id, last_access=entry.last_access)

    def _pool_digest(self, pool: SamplePool) -> str:
        """Content hash of a pool's samples and weights.

        A fingerprint key does *not* uniquely identify pool content: a
        maintained pool depends on its session's history, and an evicted key
        re-fills to the fresh key-deterministic build.  Reference snapshots
        therefore carry the digest too, so restore can tell whether whatever
        currently sits under the key is the pool the snapshot captured.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.ascontiguousarray(pool.samples).tobytes())
        digest.update(np.ascontiguousarray(pool.weights).tobytes())
        return digest.hexdigest()

    def _pool_store_key(self, key: str, digest: str) -> str:
        """Pool-table key: fingerprint key plus content digest.

        Content-addressing makes the store's skip-if-exists deduplication
        sound — two different builds of one fingerprint get two entries,
        while the thousands of sessions sharing one build still share one.
        """
        return f"{key}#{digest}"

    def _pool_payload(
        self, entry: SessionEntry, pool: SamplePool, embed_pool: bool
    ) -> dict:
        """A snapshot/checkpoint pool payload: embedded floats or a reference."""
        if embed_pool or entry.pool_key is None:
            # Sessions outside the shared-pool world (sharing disabled, or a
            # pool installed without a key) cannot be resolved by reference.
            return {
                "key": entry.pool_key,
                "samples": pool.samples.tolist(),
                "weights": pool.weights.tolist(),
            }
        pool_digest = self._pool_digest(pool)
        self._persist_pool(self._pool_store_key(entry.pool_key, pool_digest), pool)
        payload = {"key": entry.pool_key, "digest": pool_digest}
        refill = pool.stats.get("partial_refill")
        if refill is not None:
            # Deficit-fill audit record: a partial-refill pool's content
            # depends on session history (the reweighted survivors), so it
            # can never be silently re-derived from the key alone.  Restore
            # verifies the resolved pool against this record and raises
            # ReplayDivergenceError on tampering or loss.
            payload["refill"] = {
                "deficit": int(refill.get("deficit", 0)),
                "survivors": int(refill.get("survivors", 0)),
                "size": int(pool.size),
            }
        return payload

    def _checkpoint_entry(self, entry: SessionEntry) -> dict:
        """The event-log checkpoint of a replayable session.

        No preferences, no RNG state, no last round: all of that replays
        from the log.  What cannot be replayed cheaply is the *materialised
        pool* (a maintained pool depends on history the §3.4 ladder would
        have to re-walk), so the checkpoint materialises it and carries the
        content-addressed reference; restore reattaches the exact build at
        the checkpoint's position in the event stream.
        """
        pool = entry.recommender.sample_pool()
        return {
            "kind": "eventlog-checkpoint",
            "session_id": entry.session_id,
            "seed": entry.seed,
            "created_at": entry.created_at,
            "rounds_served": entry.rounds_served,
            "feedback_events": entry.feedback_events,
            "pool": self._pool_payload(entry, pool, embed_pool=False),
        }

    def _snapshot_entry(self, entry: SessionEntry, embed_pool: bool = True) -> dict:
        recommender = entry.recommender
        # Materialise the pending pool first: after feedback the pool is
        # rebuilt lazily, and a snapshot without it could not reproduce the
        # next recommendation (the rebuild draws fresh randomness).  This
        # makes swap-out of a just-fed session pay one pool build inside the
        # evicting request — the price of the exact round-trip guarantee.
        pool = recommender.sample_pool()
        last_round = recommender.last_round
        pool_payload = self._pool_payload(entry, pool, embed_pool)
        return {
            "version": SNAPSHOT_VERSION,
            "session_id": entry.session_id,
            "seed": entry.seed,
            "created_at": entry.created_at,
            "rounds_served": entry.rounds_served,
            "feedback_events": entry.feedback_events,
            "rounds_presented": recommender.rounds_presented,
            "clicks_received": recommender.clicks_received,
            "preferences": [
                {
                    "preferred": list(p.preferred.items),
                    "other": list(p.other.items),
                    "preferred_vector": list(p.preferred_vector),
                    "other_vector": list(p.other_vector),
                }
                for p in recommender.preferences.preferences
            ],
            "last_round": (
                {
                    "recommended": [list(p.items) for p in last_round.recommended],
                    "random": [list(p.items) for p in last_round.random_packages],
                }
                if last_round is not None
                else None
            ),
            "rng_state": recommender.rng.bit_generator.state,
            "pool": pool_payload,
        }

    def _persist_pool(self, store_key: str, pool: SamplePool) -> None:
        """Write a pool payload to the store's pool table, once per content.

        ``store_key`` is content-addressed (:meth:`_pool_store_key`), so the
        existence probe — deliberately :meth:`SessionStore.has_pool`, not a
        full load — makes repeat swap-outs of pool-sharing sessions free.
        """
        if self.store is None or self.store.has_pool(store_key):
            return
        self.store.save_pool(
            store_key,
            {"samples": pool.samples.tolist(), "weights": pool.weights.tolist()},
        )

    def restore(self, payload: dict, replace_existing: bool = False) -> str:
        """Rebuild a session from a :meth:`snapshot` payload and register it.

        Also accepts the replay payloads an
        :class:`~repro.service.eventlog.EventLogStore` emits
        (``kind == "eventlog-replay"``): the session is rebuilt by replaying
        its logged rounds and clicks through the deterministic elicitation
        path.
        """
        version = payload.get("version")
        if payload.get("kind") == REPLAY_PAYLOAD_KIND:
            if version not in SUPPORTED_REPLAY_VERSIONS:
                raise ValueError(
                    f"unsupported replay payload version {version!r} "
                    f"(engine reads versions {SUPPORTED_REPLAY_VERSIONS})"
                )
        elif version not in SUPPORTED_SNAPSHOT_VERSIONS:
            raise ValueError(
                f"unsupported snapshot version {version!r} "
                f"(engine reads versions {SUPPORTED_SNAPSHOT_VERSIONS} and "
                f"writes version {SNAPSHOT_VERSION})"
            )
        session_id = payload["session_id"]
        if session_id in self.sessions:
            if not replace_existing:
                raise ValueError(
                    f"session id {session_id!r} already exists; "
                    f"pass replace_existing=True to overwrite"
                )
            self.sessions.remove(session_id)
        entry = self._restore_entry(payload)
        self.sessions.add(entry)
        return session_id

    def _restore_entry(self, payload: dict) -> SessionEntry:
        if payload.get("kind") == REPLAY_PAYLOAD_KIND:
            return self._replay_entry(payload)
        entry = self._new_entry(payload["session_id"], int(payload["seed"]))
        # A blob-restored session has history the event log never saw, so it
        # cannot be rebuilt by replay: keep writing full snapshot blobs on
        # swap-out.  (_replay_entry overrides this for log-native sessions.)
        entry.replayable = False
        recommender = entry.recommender
        entry.created_at = payload["created_at"]
        entry.rounds_served = payload["rounds_served"]
        entry.feedback_events = payload["feedback_events"]
        recommender.rounds_presented = payload["rounds_presented"]
        recommender.clicks_received = payload["clicks_received"]
        for item in payload["preferences"]:
            recommender.preferences.add(
                Preference.from_vectors(
                    np.asarray(item["preferred_vector"], dtype=float),
                    np.asarray(item["other_vector"], dtype=float),
                    preferred=Package(tuple(int(i) for i in item["preferred"])),
                    other=Package(tuple(int(i) for i in item["other"])),
                )
            )
        if payload["last_round"] is not None:
            recommender._last_round = RecommendationRound(
                [
                    Package(tuple(int(i) for i in items))
                    for items in payload["last_round"]["recommended"]
                ],
                [
                    Package(tuple(int(i) for i in items))
                    for items in payload["last_round"]["random"]
                ],
            )
        recommender.rng.bit_generator.state = payload["rng_state"]
        self._restore_pool(entry, payload["pool"])
        return entry

    def _restore_pool(self, entry: SessionEntry, pool_payload: Optional[dict]) -> None:
        """Re-attach a snapshot's pool: embedded, by reference, or deferred.

        Resolution order for reference payloads: the in-memory repository —
        *if* its pool's content digest matches the snapshot's (the same
        fingerprint can hold a different build after eviction + refill, and
        the session's saved RNG state only reproduces rounds against the
        exact pool it was snapshotted with) — then the store's pool table
        (content-addressed, written once per build), and finally nothing:
        the session's provider re-samples on next use, deterministically by
        key, which is exactly the "resampled only on repository miss"
        contract snapshot compaction trades the embedded floats for.
        """
        if pool_payload is None:  # tolerate pool-less external payloads
            return
        recommender = entry.recommender
        key = pool_payload.get("key")
        entry.pool_key = key
        if "samples" in pool_payload:  # embedded (v1, or v2 with embed_pool)
            pool = self._stamp_pool(
                SamplePool(
                    np.asarray(pool_payload["samples"], dtype=float),
                    np.asarray(pool_payload["weights"], dtype=float),
                    {"sampler": "snapshot"},
                )
            )
            recommender.set_pool(pool)
            if key is not None:
                self.pool_repository.put(key, pool)
            return
        digest = pool_payload.get("digest")
        pool = self.pool_repository.peek(key)
        if (
            pool is not None
            and digest is not None
            and self._pool_digest(pool) != digest
        ):
            pool = None  # same fingerprint, different build: not our pool
        if pool is None and self.store is not None:
            stored = None
            if digest is not None:
                stored = self.store.load_pool(self._pool_store_key(key, digest))
            if stored is None:
                stored = self.store.load_pool(key)  # digest-less payloads
            if stored is not None:
                pool = self._stamp_pool(
                    SamplePool(
                        np.asarray(stored["samples"], dtype=float),
                        np.asarray(stored["weights"], dtype=float),
                        {"sampler": "snapshot"},
                    )
                )
                if key not in self.pool_repository:
                    # Share it forward — but never clobber a different build
                    # other live sessions are currently working against.
                    self.pool_repository.put(key, pool)
        refill = pool_payload.get("refill")
        if refill is not None:
            # A partial-refill pool is history-dependent: the lazy
            # "re-sample by key on next use" fallback would produce a
            # *different* pool, so an unresolvable (or size-inconsistent)
            # deficit-fill record is divergence, not a cache miss.
            if pool is None:
                raise self._replay_divergence(
                    f"session {entry.session_id!r}: the checkpointed "
                    f"partial-refill pool {key!r} (digest "
                    f"{pool_payload.get('digest')!r}) cannot be resolved "
                    f"from the repository or the store — its deficit-fill "
                    f"record was tampered with or its payload was lost",
                    session_id=entry.session_id,
                    pool_key=key,
                )
            if int(refill.get("size", pool.size)) != pool.size:
                raise self._replay_divergence(
                    f"session {entry.session_id!r}: the resolved pool for "
                    f"{key!r} has {pool.size} samples but its deficit-fill "
                    f"record claims {refill.get('size')} — the checkpoint "
                    f"was tampered with",
                    session_id=entry.session_id,
                    pool_key=key,
                )
        if pool is not None:
            recommender.set_pool(pool)
        # else: leave the pool pending; the provider fills it lazily.

    def _replay_divergence(
        self, message: str, **attrs
    ) -> ReplayDivergenceError:
        """Fire the divergence alarm and hand back the error to raise.

        Divergence is the log-as-source-of-truth design failing its core
        promise, so beyond raising it must be *loud*: the labeled alarm
        counter increments and a structured trace event is emitted (kept
        past sampling) before the exception propagates.
        """
        self.telemetry.alarm("replay_divergence", message=message, **attrs)
        return ReplayDivergenceError(message)

    # ========================================================== replay restore
    def _replay_entry(self, payload: dict) -> SessionEntry:
        """Rebuild a session by replaying its event-log history.

        The logged ``recommended`` packages are injected into
        :meth:`PackageRecommender.recommend`, which re-draws the exploration
        packages from the session RNG exactly as the live session did — so
        after replay the RNG stream, preference DAG and last round are
        bit-identical to a session that never swapped out.  The re-drawn
        exploration packages are checked against the log
        (:class:`ReplayDivergenceError` on mismatch): replay is also an
        integrity audit of the deterministic path.

        Checkpoint pool reattachment is *phased*: the checkpointed pool is
        attached at the checkpoint's position in the event stream, so a
        click replayed after it parks it as the stale pool for §3.4
        maintenance — exactly the state a live session would be in.
        """
        base = payload.get("base")
        if base is not None:
            # A session imported from a snapshot blob: the blob is the base
            # state and only the suffix logged after it replays on top.
            entry = self._restore_entry(base)
        else:
            entry = self._new_entry(payload["session_id"], int(payload["seed"]))
            if payload.get("created_at") is not None:
                entry.created_at = payload["created_at"]
        recommender = entry.recommender
        checkpoint = payload.get("checkpoint")
        checkpoint_seq = int(payload.get("checkpoint_seq") or 0)
        pool_attached = checkpoint is None
        for event in payload.get("events") or ():
            if not pool_attached and int(event.get("seq", 0)) > checkpoint_seq:
                self._restore_pool(entry, checkpoint.get("pool"))
                pool_attached = True
            etype = event.get("type")
            if etype == EVENT_RECOMMEND_SERVED:
                recommended = [
                    Package(tuple(int(i) for i in items))
                    for items in event.get("recommended") or []
                ]
                round_ = recommender.recommend(
                    recommended=recommended if recommended else None
                )
                entry.rounds_served += 1
                replayed = [list(p.items) for p in round_.random_packages]
                logged = [
                    [int(i) for i in items] for items in event.get("random") or []
                ]
                if replayed != logged:
                    raise self._replay_divergence(
                        f"session {entry.session_id!r}: replayed exploration "
                        f"packages {replayed} differ from logged {logged} at "
                        f"seq {event.get('seq')} — the deterministic serving "
                        f"path changed since the log was written",
                        session_id=entry.session_id,
                        seq=event.get("seq"),
                    )
            elif etype == EVENT_FEEDBACK:
                clicked = Package(tuple(int(i) for i in event["clicked"]))
                try:
                    recommender.feedback(clicked)
                except ValueError as exc:
                    raise self._replay_divergence(
                        f"session {entry.session_id!r}: logged click "
                        f"{list(clicked.items)} rejected during replay at "
                        f"seq {event.get('seq')}: {exc}",
                        session_id=entry.session_id,
                        seq=event.get("seq"),
                    ) from exc
                entry.feedback_events += 1
        if not pool_attached:
            # No events after the checkpoint: the pool attaches as current.
            self._restore_pool(entry, checkpoint.get("pool"))
        entry.replayable = base is None
        self.sessions_replayed += 1
        return entry

    # ================================================================== stats
    def stats(self) -> EngineStats:
        """Current serving counters (sessions, rounds, cache efficiency)."""
        pool_stats = self.pool_repository.stats.as_dict()
        pool_stats["samples_saved"] = self.pool_repository.samples_saved
        describe = getattr(self.pool_repository, "describe", None)
        return EngineStats(
            sessions_created=self.sessions_created,
            sessions_active=len(self.sessions),
            sessions_expired=self.sessions.sessions_expired,
            sessions_swapped_out=self.sessions.sessions_swapped_out,
            sessions_restored=self.sessions.sessions_restored,
            swap_writes_skipped=self.sessions.swap_writes_skipped,
            rounds_served=self.rounds_served,
            feedback_events=self.feedback_events,
            pools_sampled=self.pools_sampled,
            pools_maintained=self.pools_maintained,
            pools_adapted=self.pools_adapted,
            pools_warmed=self.pools_warmed,
            topk_batched_pools=self.topk_batched_pools,
            pool_cache=pool_stats,
            pool_repository=describe() if describe is not None else {},
            topk_cache=self._topk_cache.stats.as_dict(),
            adaptation=(
                self.pool_adapter.stats.as_dict()
                if self.pool_adapter is not None
                else {}
            ),
            sessions_replayed=self.sessions_replayed,
            eventlog=(
                self.event_log.describe() if self.event_log is not None else {}
            ),
            pools_built=self.pools_built,
            pools_partial_refilled=self.pools_partial_refilled,
            candidates_carried=(
                self.batch_searcher.carryover.candidates_carried
                if self.batch_searcher.carryover is not None
                else 0
            ),
            carryover=(
                self.batch_searcher.carryover.as_dict()
                if self.batch_searcher.carryover is not None
                else {}
            ),
        )

    def metrics_snapshot(self) -> dict:
        """Plain-data snapshot of every registered telemetry instrument.

        Gauges mirroring the ad-hoc stats surfaces (cache hits/misses,
        session and pool counters) are synced *from those surfaces* at
        snapshot time — the dataclass counters stay the single source of
        truth, so the registry view can never diverge from
        :meth:`stats` no matter which path mutated a counter.  Live
        instruments (latency histograms, alarm and request counters) are
        reported as accumulated.
        """
        self._sync_metrics()
        return self.telemetry.registry.snapshot()

    def observe(self) -> dict:
        """One tree consolidating every observability surface of the stack.

        ``engine`` is :meth:`stats` (EngineStats, which already folds in
        adaptation, event-log, carryover and shard-repository describes),
        ``metrics`` is :meth:`metrics_snapshot`, ``telemetry`` describes
        the tracer/sampler, and every registered observable (the dispatcher
        registers itself as ``dispatcher``) appears under its own name.
        The legacy accessors (``engine.stats()``, ``dispatcher.stats``,
        ``adapter.stats`` …) keep working and report the same numbers.
        """
        tree = {
            "engine": self.stats().as_dict(),
            "metrics": self.metrics_snapshot(),
            "telemetry": self.telemetry.describe(),
        }
        tree.update(self.telemetry.observables())
        return tree

    def _sync_metrics(self) -> None:
        registry = self.telemetry.registry
        stats = self.stats()
        mirrors = {
            "repro_sessions_active": (
                "Sessions currently in memory", stats.sessions_active),
            "repro_sessions_created": (
                "Sessions created", stats.sessions_created),
            "repro_rounds_served": (
                "Recommendation rounds served", stats.rounds_served),
            "repro_feedback_events": (
                "Click feedback events", stats.feedback_events),
            "repro_pools_built": (
                "Pools built (sampled + maintained + adapted + refilled)",
                stats.pools_built),
            "repro_pool_cache_hits": (
                "Pool repository hits", stats.pool_cache["hits"]),
            "repro_pool_cache_misses": (
                "Pool repository misses", stats.pool_cache["misses"]),
            "repro_topk_cache_hits": (
                "Top-k cache hits", stats.topk_cache["hits"]),
            "repro_topk_cache_misses": (
                "Top-k cache misses", stats.topk_cache["misses"]),
        }
        for name, (help_text, value) in mirrors.items():
            registry.gauge(name, help_text).set(value)
