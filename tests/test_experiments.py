"""Smoke tests for the experiment harness (tiny scales, shape assertions only)."""

import numpy as np
import pytest

from repro.experiments.harness import (
    ExperimentScale,
    build_evaluator,
    default_profile,
    format_table,
    random_package_vectors,
    random_preference_directions,
)
from repro.experiments.fig4_sampling_example import run_sampling_example, summarise as fig4_rows
from repro.experiments.fig5_constraint_checking import (
    run_constraint_checking_experiment,
    summarise as fig5_rows,
)
from repro.experiments.fig6_overall_time import run_overall_time_experiment
from repro.experiments.fig7_maintenance import (
    run_gamma_sweep,
    run_maintenance_experiment,
)
from repro.experiments.fig8_elicitation import run_elicitation_effectiveness
from repro.experiments.sample_quality import run_sample_quality_study


SMOKE = ExperimentScale.smoke()


class TestHarness:
    def test_scales(self):
        assert ExperimentScale.paper().num_tuples == 100_000
        assert SMOKE.num_tuples == 200

    def test_default_profile_covers_all_features(self):
        profile = default_profile(6)
        assert profile.num_features == 6

    def test_build_evaluator(self):
        evaluator = build_evaluator("UNI", SMOKE)
        assert evaluator.catalog.num_items == SMOKE.num_tuples
        assert evaluator.num_features == SMOKE.num_features

    def test_random_package_vectors(self):
        evaluator = build_evaluator("UNI", SMOKE)
        packages, vectors = random_package_vectors(evaluator, 20, rng=0)
        assert len(packages) == 20
        assert vectors.shape == (20, SMOKE.num_features)

    def test_random_preferences_consistent_with_hidden_utility(self):
        evaluator = build_evaluator("UNI", SMOKE)
        _, vectors = random_package_vectors(evaluator, 30, rng=0)
        hidden = np.array([0.5, -0.5, 0.2])
        directions = random_preference_directions(vectors, 25, rng=0, consistent_with=hidden)
        assert directions.shape == (25, 3)
        assert np.all(directions @ hidden >= -1e-12)

    def test_random_preferences_require_two_packages(self):
        with pytest.raises(ValueError):
            random_preference_directions(np.ones((1, 3)), 5)

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "a" in text and "x" in text
        assert len(text.splitlines()) == 4


class TestFigureExperimentsSmoke:
    def test_fig4(self):
        results = run_sampling_example(
            num_valid_samples=20, num_packages=100, num_preferences=2,
            scale=SMOKE, seed=0,
        )
        assert set(results) == {"RS", "IS", "MS"}
        for entry in results.values():
            assert entry.valid_samples == 20
        assert len(fig4_rows(results)) == 3

    def test_fig5(self):
        results = run_constraint_checking_experiment(
            feature_values=(3,), sample_values=(30,), gaussian_values=(1,),
            scale=SMOKE, seed=0,
        )
        assert set(results) == {"features", "samples", "gaussians"}
        for points in results.values():
            for point in points:
                assert point.naive_evaluations >= point.pruned_evaluations
        assert len(fig5_rows(results)) == 3

    def test_fig6(self):
        points = run_overall_time_experiment(
            datasets=("UNI",), samplers=("RS", "MS"),
            sample_counts=(20,), feature_counts=(2,),
            k=2, num_preferences=4, topk_sample_budget=3,
            scale=SMOKE, seed=0,
        )
        assert len(points) == 4
        for point in points:
            if not point.skipped:
                assert point.total_seconds > 0

    def test_fig6_importance_skipped_in_high_dimensions(self):
        points = run_overall_time_experiment(
            datasets=("UNI",), samplers=("IS",),
            sample_counts=(), feature_counts=(7,),
            k=2, num_preferences=4, topk_sample_budget=2,
            scale=SMOKE, seed=0,
        )
        assert len(points) == 1
        assert points[0].skipped

    def test_fig7_buckets(self):
        buckets = run_maintenance_experiment(
            num_samples=200, num_preferences=30, scale=SMOKE, seed=0
        )
        assert sum(b.count for b in buckets) == 30
        for bucket in buckets:
            if bucket.count:
                assert bucket.naive_accesses == 200

    def test_fig7_gamma_sweep(self):
        points = run_gamma_sweep(
            gammas=(0.0, 0.05), num_samples=200, num_preferences=20,
            scale=SMOKE, seed=0,
        )
        assert len(points) == 2
        for point in points:
            assert point.hybrid_cost_ratio > 0
            assert point.ta_cost_ratio > 0

    def test_fig8(self):
        points = run_elicitation_effectiveness(
            feature_counts=(2,), num_users=2, num_players=60,
            k=2, num_random=2, num_samples=25, max_package_size=2,
            max_rounds=4, seed=0,
        )
        assert len(points) == 1
        assert points[0].mean_clicks <= 4

    def test_sample_quality(self):
        result = run_sample_quality_study(
            k=3, num_samples=80, num_preferences=10, num_features=3,
            num_gaussians=1, num_packages=60, scale=SMOKE, seed=0,
        )
        assert result.top_lists
        assert 0.0 <= result.sampler_agreement <= 1.0
        assert 0.0 <= result.semantics_agreement <= 1.0
