"""Batch/sequential ``Top-k-Pkg`` equivalence (the contract of the batch path).

The batch searcher must be a pure performance optimisation: for every weight
vector, its result has to match what the sequential searcher computes for
that vector alone.  The equivalence contract asserted here is exact:

* **Scores**: the utility lists are *bit-identical* (both searchers report
  through the same canonical scoring helper, so equality is ``==``, not
  ``allclose``).
* **Packages**: identical for every rank whose utility is strictly above the
  k-th utility value.  Packages tied *exactly at* the k-th utility are the
  one place the algorithms may legitimately differ: the paper's termination
  rule (``η_up ≤ η_lo``) stops as soon as no undiscovered package can beat
  the k-th best, which means boundary ties are reported in discovery order —
  and the two implementations discover in different orders.  Where the tie
  set is fully enumerated (small catalogs searched to exhaustion), both
  implementations break ties identically by package id and the package lists
  match outright.
* **Exactness**: both sides equal the brute-force oracle's utilities.
"""

import numpy as np
import pytest

from repro.core.items import ItemCatalog
from repro.core.packages import PackageEvaluator
from repro.core.predicates import MinCountPredicate, PredicateSet
from repro.core.profiles import AggregateProfile
from repro.topk.batch_search import BatchTopKPackageSearcher, CandidateCarryover
from repro.topk.bruteforce import brute_force_top_k_packages
from repro.topk.package_search import TopKPackageSearcher

AGGREGATIONS = ["sum", "avg", "max", "min"]


def random_instance(seed):
    """A random catalog/profile/weights instance, with nulls on some seeds."""
    rng = np.random.default_rng(seed)
    num_items = int(rng.integers(6, 15))
    num_features = int(rng.integers(2, 5))
    phi = int(rng.integers(2, 5))
    features = rng.random((num_items, num_features))
    if seed % 3 == 0:
        mask = rng.random((num_items, num_features)) < 0.15
        features[mask] = np.nan
        if np.isnan(features).all(axis=0).any():
            features[0] = rng.random(num_features)
    catalog = ItemCatalog(features)
    profile = AggregateProfile(
        [AGGREGATIONS[int(rng.integers(0, 4))] for _ in range(num_features)]
    )
    evaluator = PackageEvaluator(catalog, profile, phi)
    num_vectors = int(rng.integers(1, 8))
    k = int(rng.integers(1, 6))
    weights = rng.uniform(-1, 1, (num_vectors, num_features))
    if seed % 4 == 0:
        weights[0] = 0.0  # degenerate all-zero row
    if num_vectors > 2:
        weights[-1] = weights[0]  # duplicate row (exercises dedup)
    return evaluator, weights, k


def assert_equivalent(sequential_result, batch_result):
    """Exact-score equality plus package equality above the tie boundary."""
    assert sequential_result.utilities == batch_result.utilities
    utilities = sequential_result.utilities
    if not utilities:
        assert not batch_result.packages
        return
    boundary = utilities[-1]
    strict = sum(1 for value in utilities if value > boundary)
    assert (
        [p.items for p in sequential_result.packages[:strict]]
        == [p.items for p in batch_result.packages[:strict]]
    )


class TestPropertyEquivalence:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_instances_match_per_vector_search(self, seed):
        evaluator, weights, k = random_instance(seed)
        sequential = TopKPackageSearcher(evaluator)
        batch = BatchTopKPackageSearcher(evaluator)
        batch_results = batch.search_many(weights, k)
        assert len(batch_results) == weights.shape[0]
        for v in range(weights.shape[0]):
            assert_equivalent(sequential.search(weights[v], k), batch_results[v])

    @pytest.mark.parametrize("seed", range(0, 60, 5))
    def test_both_match_the_brute_force_oracle(self, seed):
        evaluator, weights, k = random_instance(seed)
        batch_results = BatchTopKPackageSearcher(evaluator).search_many(weights, k)
        sequential = TopKPackageSearcher(evaluator)
        for v in range(weights.shape[0]):
            expected = [u for _, u in brute_force_top_k_packages(evaluator, weights[v], k)]
            assert np.allclose(batch_results[v].utilities, expected, atol=1e-9)
            assert np.allclose(sequential.search(weights[v], k).utilities, expected, atol=1e-9)

    def test_search_many_matches_sequential_search_many(self):
        evaluator, weights, k = random_instance(7)
        sequential = TopKPackageSearcher(evaluator).search_many(weights, k)
        batch = BatchTopKPackageSearcher(evaluator).search_many(weights, k)
        for s, b in zip(sequential, batch):
            assert_equivalent(s, b)


class TestSearchPools:
    """The multi-pool entry point used for across-session search batching."""

    @pytest.mark.parametrize("seed", range(0, 30, 3))
    def test_concatenated_pools_match_per_pool_search(self, seed):
        evaluator, weights, k = random_instance(seed)
        rng = np.random.default_rng(seed + 1000)
        matrices = [
            weights,
            rng.uniform(-1, 1, (3, weights.shape[1])),
            weights[:1] + rng.normal(0, 0.1, (2, weights.shape[1])),
        ]
        searcher = BatchTopKPackageSearcher(evaluator)
        pooled = searcher.search_pools(matrices, k)
        assert len(pooled) == len(matrices)
        for matrix, results in zip(matrices, pooled):
            assert len(results) == matrix.shape[0]
            solo = searcher.search_many(matrix, k)
            for s, b in zip(solo, results):
                assert s.utilities == b.utilities

    def test_duplicate_rows_across_pools_share_results(self):
        evaluator, weights, k = random_instance(2)
        searcher = BatchTopKPackageSearcher(evaluator)
        pooled = searcher.search_pools([weights, weights.copy()], k)
        for a, b in zip(pooled[0], pooled[1]):
            assert a.utilities == b.utilities
            assert [p.items for p in a.packages] == [p.items for p in b.packages]

    def test_empty_pool_list(self):
        evaluator, _weights, k = random_instance(3)
        assert BatchTopKPackageSearcher(evaluator).search_pools([], k) == []

    def test_rejects_wrong_width_matrix(self):
        evaluator, weights, k = random_instance(4)
        searcher = BatchTopKPackageSearcher(evaluator)
        bad = np.zeros((2, weights.shape[1] + 1))
        with pytest.raises(ValueError, match="pool matrix"):
            searcher.search_pools([weights, bad], k)


class TestDegenerateCases:
    def test_single_vector_batch_equals_search(self):
        evaluator, weights, k = random_instance(1)
        row = weights[0]
        sequential = TopKPackageSearcher(evaluator).search(row, k)
        via_many = BatchTopKPackageSearcher(evaluator).search_many(row[None, :], k)
        via_single = BatchTopKPackageSearcher(evaluator).search(row, k)
        assert_equivalent(sequential, via_many[0])
        assert_equivalent(sequential, via_single)

    def test_all_zero_weight_rows(self):
        rng = np.random.default_rng(3)
        evaluator = PackageEvaluator(
            ItemCatalog(rng.random((8, 3))), AggregateProfile(["sum", "avg", "max"]), 3
        )
        weights = np.zeros((3, 3))
        weights[1] = rng.uniform(-1, 1, 3)
        batch_results = BatchTopKPackageSearcher(evaluator).search_many(weights, 4)
        sequential = TopKPackageSearcher(evaluator)
        for v in range(3):
            expected = sequential.search(weights[v], 4)
            # zero rows: utility 0 everywhere, deterministic smallest-id packages
            assert [p.items for p in expected.packages] == [
                p.items for p in batch_results[v].packages
            ]
            assert expected.utilities == batch_results[v].utilities

    def test_k_larger_than_feasible_package_count(self):
        rng = np.random.default_rng(4)
        evaluator = PackageEvaluator(
            ItemCatalog(rng.random((4, 2))), AggregateProfile(["sum", "min"]), 2
        )
        # 4 singletons + 6 pairs = 10 feasible packages, k far larger.
        weights = rng.uniform(-1, 1, (3, 2))
        batch_results = BatchTopKPackageSearcher(evaluator).search_many(weights, 50)
        sequential = TopKPackageSearcher(evaluator)
        for v in range(3):
            expected = sequential.search(weights[v], 50)
            assert len(batch_results[v].packages) == len(expected.packages) <= 10
            assert_equivalent(expected, batch_results[v])

    def test_exact_tie_handling_on_duplicate_items(self):
        # Identical items make utilities tie exactly; on a catalog this small
        # both searchers enumerate the full tie set, so the deterministic
        # package-id tie-break must make the result lists identical.
        features = np.array([[0.5, 0.2]] * 4 + [[0.3, 0.1]] * 2)
        evaluator = PackageEvaluator(
            ItemCatalog(features), AggregateProfile(["sum", "avg"]), 2
        )
        weights = np.array([[0.8, -0.3], [-0.2, 0.6], [0.5, 0.5]])
        batch_results = BatchTopKPackageSearcher(evaluator).search_many(weights, 6)
        sequential = TopKPackageSearcher(evaluator)
        for v in range(3):
            expected = sequential.search(weights[v], 6)
            assert [p.items for p in expected.packages] == [
                p.items for p in batch_results[v].packages
            ]
            assert expected.utilities == batch_results[v].utilities

    def test_beam_and_item_cap_modes_run(self):
        # Bounded-work anytime modes: results are well-formed (sorted, within
        # caps) even though a shared beam is not bit-compatible with the
        # sequential per-vector beam.
        evaluator, weights, k = random_instance(5)
        searcher = BatchTopKPackageSearcher(
            evaluator, beam_width=2, max_items_accessed=5
        )
        results = searcher.search_many(weights, k)
        assert len(results) == weights.shape[0]
        for result in results:
            assert result.items_accessed <= 5
            assert all(
                first >= second
                for first, second in zip(result.utilities, result.utilities[1:])
            )

    def test_empty_matrix_returns_no_results(self):
        evaluator, _, _ = random_instance(2)
        assert BatchTopKPackageSearcher(evaluator).search_many(
            np.zeros((0, evaluator.num_features)), 3
        ) == []

    def test_wrong_width_and_bad_k_rejected(self):
        evaluator, weights, _ = random_instance(2)
        searcher = BatchTopKPackageSearcher(evaluator)
        with pytest.raises(ValueError):
            searcher.search_many(np.ones((2, evaluator.num_features + 1)), 3)
        with pytest.raises(ValueError):
            searcher.search_many(weights, 0)

    def test_invalid_construction_rejected(self):
        evaluator, _, _ = random_instance(2)
        with pytest.raises(ValueError):
            BatchTopKPackageSearcher(evaluator, max_candidates=0)
        with pytest.raises(ValueError):
            BatchTopKPackageSearcher(evaluator, beam_width=0)
        with pytest.raises(ValueError):
            BatchTopKPackageSearcher(evaluator, max_items_accessed=0)


class TestPredicates:
    def test_predicates_filter_batch_results(self):
        rng = np.random.default_rng(9)
        evaluator = PackageEvaluator(
            ItemCatalog(rng.random((10, 3))), AggregateProfile(["sum", "avg", "max"]), 3
        )
        predicates = PredicateSet([MinCountPredicate(1, matching_items=[0, 1, 2])])
        weights = rng.uniform(-1, 1, (4, 3))
        batch_results = BatchTopKPackageSearcher(
            evaluator, predicates=predicates
        ).search_many(weights, 3)
        sequential = TopKPackageSearcher(evaluator, predicates=predicates)
        for v in range(4):
            for package in batch_results[v].packages:
                assert any(item in (0, 1, 2) for item in package)
            assert_equivalent(sequential.search(weights[v], 3), batch_results[v])


class TestNullSoundness:
    """The τ bound must dominate null-valued unaccessed items (fixed this PR).

    A null contributes nothing to any aggregate, which beats the boundary
    value τ for negative-weight sum/avg/max features and interacts with min
    features per candidate; without the null-aware boundary both searchers
    pruned true top-k packages on catalogs with nulls.
    """

    @pytest.mark.parametrize("seed", [9, 30, 78, 12, 15])
    def test_null_catalogs_stay_exact(self, seed):
        evaluator, weights, k = random_instance(seed * 3)  # *3 -> nulls present
        sequential = TopKPackageSearcher(evaluator)
        batch = BatchTopKPackageSearcher(evaluator)
        batch_results = batch.search_many(weights, k)
        for v in range(weights.shape[0]):
            expected = [u for _, u in brute_force_top_k_packages(evaluator, weights[v], k)]
            assert np.allclose(sequential.search(weights[v], k).utilities, expected, atol=1e-9)
            assert np.allclose(batch_results[v].utilities, expected, atol=1e-9)


class TestCandidateCarryover:
    """The carryover cache itself: bounded LRU of candidate item-tuples."""

    def test_store_fetch_lru_eviction(self):
        cache = CandidateCarryover(capacity=2)
        cache.store("a", [(0,), (1,)])
        cache.store("b", [(2,)])
        assert cache.fetch("a") == ((0,), (1,))  # refreshes "a"
        cache.store("c", [(3,)])  # evicts "b" (least recently used)
        assert "b" not in cache
        assert cache.fetch("b") == ()
        assert cache.fetch("a") == ((0,), (1,))
        assert len(cache) == 2
        stats = cache.as_dict()
        assert stats["evictions"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_per_key_truncation_and_discard(self):
        cache = CandidateCarryover(capacity=4, max_candidates_per_key=2)
        cache.store("a", [(0,), (1,), (2,), (3,)])
        assert cache.fetch("a") == ((0,), (1,))
        assert cache.discard("a") is True
        assert cache.discard("a") is False
        cache.store("b", [(5,)])
        cache.clear()
        assert len(cache) == 0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            CandidateCarryover(capacity=0)
        with pytest.raises(ValueError, match="max_candidates_per_key"):
            CandidateCarryover(max_candidates_per_key=0)


class TestCarryoverEquivalence:
    """Carried seeds must never change an exact search's results.

    Every test compares a searcher with a carryover cache (fed by a prior
    round's harvest) against a cold searcher on the same query; with exact
    settings (no beam / items cap) the results must match outright — seeds
    are re-validated and re-scored, so they only shorten the walk.
    """

    @pytest.mark.parametrize("seed", range(0, 40))
    def test_carried_search_matches_cold_search(self, seed):
        evaluator, weights, k = random_instance(seed)
        rng = np.random.default_rng(seed + 10_000)
        # Round 1 primes the cache; round 2 perturbs the weights (a "click"
        # moves the posterior a little) and must match a cold search exactly.
        perturbed = weights + rng.normal(0.0, 0.05, weights.shape)
        carry = BatchTopKPackageSearcher(evaluator, carryover=CandidateCarryover())
        cold = BatchTopKPackageSearcher(evaluator)
        carry.search_pools([weights], k, carry_in=[None], carry_out=["r1"])
        warm_results = carry.search_pools(
            [perturbed], k, carry_in=["r1"], carry_out=["r2"]
        )[0]
        cold_results = cold.search_pools([perturbed], k)[0]
        for warm, cold_result in zip(warm_results, cold_results):
            assert_equivalent(cold_result, warm)

    @pytest.mark.parametrize("seed", [0, 3, 9, 21, 30])
    def test_null_catalog_seeds_stay_exact(self, seed):
        # seed*3 -> random_instance sprinkles NaNs: carried seeds must rebuild
        # their aggregation states null-aware (masked sums/mins/maxs).
        evaluator, weights, k = random_instance(seed * 3)
        carry = BatchTopKPackageSearcher(evaluator, carryover=CandidateCarryover())
        cold = BatchTopKPackageSearcher(evaluator)
        carry.search_pools([weights], k, carry_in=[None], carry_out=["r1"])
        warm_results = carry.search_pools([weights], k, carry_in=["r1"])[0]
        for warm, cold_result in zip(cold.search_pools([weights], k)[0], warm_results):
            assert_equivalent(cold_result, warm)

    def test_k_larger_than_feasible_with_seeds(self):
        evaluator = PackageEvaluator(
            ItemCatalog(np.array([[1.0, 0.5], [0.4, 0.2]])),
            AggregateProfile(["sum", "sum"]),
            2,
        )
        carry = BatchTopKPackageSearcher(evaluator, carryover=CandidateCarryover())
        weights = np.array([[1.0, 1.0], [0.5, 2.0]])
        carry.search_pools([weights], 50, carry_in=[None], carry_out=["r1"])
        warm = carry.search_pools([weights], 50, carry_in=["r1"])[0]
        cold = BatchTopKPackageSearcher(evaluator).search_pools([weights], 50)[0]
        for w, c in zip(warm, cold):
            assert [p.items for p in w.packages] == [p.items for p in c.packages]
            assert len(w.packages) == 3  # {0}, {1}, {0,1}: all feasible packages
            assert w.utilities == c.utilities

    def test_all_candidates_invalidated_by_adversarial_shift(self):
        # Prime with one weight orthant, then search its negation: every
        # carried candidate is now deep below eta_lo and must be pruned
        # without corrupting the (exact) result.
        evaluator, weights, k = random_instance(7)
        carry = BatchTopKPackageSearcher(evaluator, carryover=CandidateCarryover())
        cold = BatchTopKPackageSearcher(evaluator)
        carry.search_pools([weights], k, carry_in=[None], carry_out=["r1"])
        flipped = -weights
        warm_results = carry.search_pools([flipped], k, carry_in=["r1"])[0]
        for warm, cold_result in zip(cold.search_pools([flipped], k)[0], warm_results):
            assert_equivalent(cold_result, warm)

    def test_corrupt_seeds_degrade_to_exact_search(self):
        evaluator, weights, k = random_instance(11)
        cache = CandidateCarryover()
        num_items = evaluator.catalog.num_items
        phi = evaluator.max_package_size
        cache.store(
            "bad",
            [
                (),  # empty
                (num_items + 5,),  # out-of-catalog item
                tuple(range(phi + 3)),  # oversized
                (-1,),  # negative index
                (0,),  # one genuinely valid seed
            ],
        )
        carry = BatchTopKPackageSearcher(evaluator, carryover=cache)
        warm_results = carry.search_pools([weights], k, carry_in=["bad"])[0]
        cold_results = BatchTopKPackageSearcher(evaluator).search_pools(
            [weights], k
        )[0]
        for warm, cold_result in zip(cold_results, warm_results):
            assert_equivalent(cold_result, warm)
        assert cache.candidates_invalidated == 4
        assert cache.candidates_carried == 1

    def test_evicted_entry_mid_session_degrades_to_miss(self):
        # A capacity-1 cache with two interleaved sessions: each store evicts
        # the other session's entry, so every carry_in is a miss — results
        # must still be exact and the misses visible in the stats.
        evaluator, weights, k = random_instance(13)
        cache = CandidateCarryover(capacity=1)
        carry = BatchTopKPackageSearcher(evaluator, carryover=cache)
        cold = BatchTopKPackageSearcher(evaluator)
        carry.search_pools([weights], k, carry_in=[None], carry_out=["s1-r1"])
        carry.search_pools([weights * 0.5], k, carry_in=[None], carry_out=["s2-r1"])
        assert "s1-r1" not in cache  # evicted by s2's store
        warm_results = carry.search_pools([weights], k, carry_in=["s1-r1"])[0]
        for warm, cold_result in zip(cold.search_pools([weights], k)[0], warm_results):
            assert_equivalent(cold_result, warm)
        assert cache.misses >= 1

    def test_search_many_ignores_the_cache(self):
        evaluator, weights, k = random_instance(17)
        cache = CandidateCarryover()
        carry = BatchTopKPackageSearcher(evaluator, carryover=cache)
        carry.search_many(weights, k)
        assert len(cache) == 0  # only search_pools with carry_out stores

    def test_carry_list_length_validation(self):
        evaluator, weights, k = random_instance(19)
        carry = BatchTopKPackageSearcher(evaluator, carryover=CandidateCarryover())
        with pytest.raises(ValueError, match="carry_in"):
            carry.search_pools([weights], k, carry_in=["a", "b"])
        with pytest.raises(ValueError, match="carry_out"):
            carry.search_pools([weights], k, carry_out=[])

    @pytest.mark.parametrize("seed", [2, 5, 8, 14])
    def test_truncated_walks_carry_is_anytime_improvement(self, seed):
        """Under an items cap, carried searches are never *worse*.

        Bit-identity only holds for exact searches: a bounded-work walk that
        hits ``max_items_accessed`` reports best-so-far, and seeding hands it
        packages the truncated cold walk may never reach.  The guarantee that
        remains — and that this test pins — is per-rank dominance: every
        utility of the carried result is >= the cold result's at that rank,
        because a seeded walk only prunes candidates provably below its own
        k-th best.
        """
        evaluator, weights, k = random_instance(seed)
        cap = max(2, evaluator.catalog.num_items // 2)
        carry = BatchTopKPackageSearcher(
            evaluator, max_items_accessed=cap, carryover=CandidateCarryover()
        )
        cold = BatchTopKPackageSearcher(evaluator, max_items_accessed=cap)
        carry.search_pools([weights], k, carry_in=[None], carry_out=["r1"])
        warm_results = carry.search_pools([weights], k, carry_in=["r1"])[0]
        cold_results = cold.search_pools([weights], k)[0]
        for warm, cold_result in zip(warm_results, cold_results):
            assert len(warm.utilities) >= len(cold_result.utilities)
            for warm_value, cold_value in zip(warm.utilities, cold_result.utilities):
                assert warm_value >= cold_value
