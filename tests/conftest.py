"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.items import ItemCatalog
from repro.core.packages import PackageEvaluator
from repro.core.profiles import AggregateProfile
from repro.sampling.gaussian_mixture import GaussianMixture


@pytest.fixture
def paper_example_catalog() -> ItemCatalog:
    """The three items of the paper's Figure 1: features (cost, rating)."""
    features = np.array(
        [
            [0.6, 0.2],  # t1
            [0.4, 0.4],  # t2
            [0.2, 0.4],  # t3
        ]
    )
    return ItemCatalog(features, feature_names=["cost", "rating"])


@pytest.fixture
def paper_example_evaluator(paper_example_catalog) -> PackageEvaluator:
    """Evaluator matching the paper's Example 1: profile (sum1, avg2), φ = 2."""
    profile = AggregateProfile(["sum", "avg"])
    return PackageEvaluator(paper_example_catalog, profile, max_package_size=2)


@pytest.fixture
def small_random_catalog() -> ItemCatalog:
    """A reproducible 30-item, 4-feature catalog for small-scale tests."""
    rng = np.random.default_rng(7)
    return ItemCatalog(rng.random((30, 4)))


@pytest.fixture
def small_evaluator(small_random_catalog) -> PackageEvaluator:
    """Evaluator over the small random catalog with a mixed profile."""
    profile = AggregateProfile(["sum", "avg", "max", "min"])
    return PackageEvaluator(small_random_catalog, profile, max_package_size=3)


@pytest.fixture
def default_prior() -> GaussianMixture:
    """A zero-centred 4-dimensional single-component prior."""
    return GaussianMixture.default_prior(4, rng=0)


@pytest.fixture
def two_dim_prior() -> GaussianMixture:
    """A zero-centred 2-dimensional prior for geometric tests."""
    return GaussianMixture.default_prior(2, rng=0)
