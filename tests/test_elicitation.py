"""Tests for the end-to-end PackageRecommender elicitation loop."""

import numpy as np
import pytest

from repro.core.elicitation import (
    ElicitationConfig,
    PackageRecommender,
    RecommendationRound,
)
from repro.core.packages import Package
from repro.core.profiles import AggregateProfile
from repro.core.ranking import RankingSemantics
from repro.sampling.gaussian_mixture import GaussianMixture


@pytest.fixture
def recommender(small_random_catalog):
    profile = AggregateProfile(["sum", "avg", "max", "min"])
    config = ElicitationConfig(
        k=3, num_random=2, max_package_size=3, num_samples=40, sampler="mcmc", seed=0
    )
    return PackageRecommender(small_random_catalog, profile, config)


class TestElicitationConfig:
    def test_defaults_are_valid(self):
        config = ElicitationConfig()
        assert config.k == 5
        assert config.semantics is RankingSemantics.EXP

    def test_semantics_string_coerced(self):
        assert ElicitationConfig(semantics="tkp").semantics is RankingSemantics.TKP

    @pytest.mark.parametrize("kwargs", [
        {"k": 0},
        {"num_random": -1},
        {"max_package_size": 0},
        {"num_samples": 0},
        {"sampler": "gibbs"},
        {"maintenance": "rebuild"},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ElicitationConfig(**kwargs)


class TestRecommendationRound:
    def test_presented_combines_both_lists(self):
        round_ = RecommendationRound(
            recommended=[Package.of([1])], random_packages=[Package.of([2])]
        )
        assert len(round_) == 2
        assert round_.presented == [Package.of([1]), Package.of([2])]


class TestPackageRecommender:
    def test_recommend_returns_requested_counts(self, recommender):
        round_ = recommender.recommend()
        assert len(round_.recommended) == 3
        assert len(round_.random_packages) == 2
        assert recommender.rounds_presented == 1

    def test_recommended_packages_are_distinct(self, recommender):
        round_ = recommender.recommend()
        items = [p.items for p in round_.presented]
        assert len(items) == len(set(items))

    def test_feedback_adds_preferences_and_updates_pool(self, recommender):
        round_ = recommender.recommend()
        clicked = round_.presented[1]
        added = recommender.feedback(clicked)
        assert added == len(round_.presented) - 1
        assert recommender.num_feedback_preferences == added
        assert recommender.clicks_received == 1
        # All pool samples satisfy the (reduced) constraints after maintenance.
        pool = recommender.sample_pool()
        assert np.all(recommender.constraints.valid_mask(pool.samples))
        assert pool.size == recommender.config.num_samples

    def test_feedback_requires_presented_context(self, recommender):
        with pytest.raises(ValueError):
            recommender.feedback(Package.of([0]))

    def test_feedback_rejects_unpresented_click(self, recommender):
        recommender.recommend()
        with pytest.raises(ValueError):
            recommender.feedback(Package.of([0, 1, 2]))

    def test_explicit_presented_list(self, recommender):
        presented = [Package.of([0]), Package.of([1]), Package.of([2])]
        added = recommender.feedback(presented[0], presented)
        assert added == 2

    def test_estimated_weights_shape(self, recommender):
        assert recommender.estimated_weights().shape == (4,)

    def test_current_top_k_override(self, recommender):
        top = recommender.current_top_k(k=2, semantics="tkp")
        assert len(top) == 2

    def test_custom_prior_dimension_checked(self, small_random_catalog):
        profile = AggregateProfile(["sum", "avg", "max", "min"])
        wrong_prior = GaussianMixture.default_prior(3, rng=0)
        with pytest.raises(ValueError):
            PackageRecommender(small_random_catalog, profile, prior=wrong_prior)

    def test_resample_maintenance_regenerates_pool(self, small_random_catalog):
        profile = AggregateProfile(["sum", "avg", "max", "min"])
        config = ElicitationConfig(
            k=2, num_random=2, max_package_size=2, num_samples=30,
            sampler="rejection", maintenance="resample", seed=1,
        )
        recommender = PackageRecommender(small_random_catalog, profile, config)
        round_ = recommender.recommend()
        recommender.feedback(round_.presented[0])
        pool = recommender.sample_pool()
        assert pool.size == 30
        assert np.all(recommender.constraints.valid_mask(pool.samples))

    @pytest.mark.parametrize("sampler", ["rejection", "importance", "mcmc"])
    def test_all_samplers_work_end_to_end(self, small_random_catalog, sampler):
        profile = AggregateProfile(["sum", "avg", "max", "min"])
        config = ElicitationConfig(
            k=2, num_random=1, max_package_size=2, num_samples=25,
            sampler=sampler, seed=2,
        )
        recommender = PackageRecommender(small_random_catalog, profile, config)
        round_ = recommender.recommend()
        assert len(round_.recommended) == 2
        recommender.feedback(round_.presented[0])
        assert len(recommender.current_top_k()) == 2

    def test_feedback_improves_alignment_with_clicks(self, small_random_catalog):
        """After clicking cost-averse packages, the posterior mean should shift."""
        profile = AggregateProfile(["sum", "avg", "max", "min"])
        config = ElicitationConfig(
            k=3, num_random=3, max_package_size=3, num_samples=60,
            sampler="mcmc", seed=3,
        )
        recommender = PackageRecommender(small_random_catalog, profile, config)
        hidden = np.array([0.9, 0.7, 0.5, 0.3])
        before = recommender.estimated_weights()
        for _ in range(4):
            round_ = recommender.recommend()
            utilities = [
                recommender.evaluator.utility(p, hidden) for p in round_.presented
            ]
            clicked = round_.presented[int(np.argmax(utilities))]
            recommender.feedback(clicked)
        after = recommender.estimated_weights()
        # Cosine similarity with the hidden weights should not get worse.
        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))
        assert cosine(after, hidden) >= cosine(before, hidden) - 0.05
