"""Dataset substrates: synthetic benchmark generators and the NBA substitute.

The paper evaluates on one real dataset (NBA career statistics) and four
synthetic datasets (UNI, PWR, COR, ANT) produced with the benchmark generator
of Börzsönyi et al.  We re-implement the generator and synthesise an NBA-like
table (see DESIGN.md §4 for the substitution rationale).
"""

from repro.data.generators import (
    generate_anticorrelated,
    generate_correlated,
    generate_dataset,
    generate_powerlaw,
    generate_uniform,
    SyntheticDatasetSpec,
)
from repro.data.nba import NBA_FEATURES, generate_nba_dataset
from repro.data.datasets import DatasetCatalog, load_benchmark_dataset
from repro.data.columnar import (
    CatalogPredicate,
    CatalogPredicateSet,
    CategoryPredicate,
    MmapBacking,
    NumericRangePredicate,
    open_catalog_by_digest,
    open_catalog_store,
    register_catalog_location,
    write_catalog_store,
)

__all__ = [
    "CatalogPredicate",
    "CatalogPredicateSet",
    "CategoryPredicate",
    "MmapBacking",
    "NumericRangePredicate",
    "open_catalog_by_digest",
    "open_catalog_store",
    "register_catalog_location",
    "write_catalog_store",
    "generate_uniform",
    "generate_powerlaw",
    "generate_correlated",
    "generate_anticorrelated",
    "generate_dataset",
    "SyntheticDatasetSpec",
    "generate_nba_dataset",
    "NBA_FEATURES",
    "DatasetCatalog",
    "load_benchmark_dataset",
]
