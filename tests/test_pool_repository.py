"""Tests for the fingerprint-partitioned pool repository and warm starts.

Covers the tentpole guarantees of the sharded pool service: consistent-hash
routing stability, per-shard LRU + pinning semantics, key-deterministic fills
(identical pools regardless of shard count, fill grouping, or backend —
including the process backend, whose fills run in worker processes),
bit-identical engine recommendations for 1 vs 4 shards, and the
WarmStartPlanner contract that cold sessions never sample.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile
from repro.sampling.base import ConstraintSet, SamplePool
from repro.sampling.fillspec import (
    FillContext,
    FillSpec,
    PriorSpec,
    register_fill_context,
    register_sampler_builder,
)
from repro.sampling.fillspec import _SAMPLER_BUILDERS
from repro.sampling.rejection import RejectionSampler
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.service import (
    EngineConfig,
    InlineShardBackend,
    PoolFillJob,
    ProcessShardBackend,
    RecommendationEngine,
    ShardedPoolRepository,
    ThreadShardBackend,
    build_shard_backend,
    parse_shard_backend,
)

NUM_FEATURES = 3


def make_factory(prior=None):
    """A key-deterministic *legacy* sampler factory (deprecated closure path)."""
    prior = prior or GaussianMixture.default_prior(NUM_FEATURES, rng=0)

    def factory(key: str):
        import hashlib

        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        return RejectionSampler(
            prior, rng=np.random.default_rng(int.from_bytes(digest, "big"))
        )

    return factory


def make_spec_factory(prior=None, sampler="rejection", seed_root=0):
    """A key-deterministic FillSpec factory (the engine's contract, in miniature)."""
    prior = prior or GaussianMixture.default_prior(NUM_FEATURES, rng=0)
    digest = register_fill_context(FillContext(prior=PriorSpec.from_mixture(prior)))

    def factory(key: str, constraints: ConstraintSet, count: int) -> FillSpec:
        return FillSpec.for_fill(
            key,
            constraints,
            count,
            sampler=sampler,
            seed_root=seed_root,
            context_digest=digest,
        )

    return factory


def make_pool(size=4):
    return SamplePool.unweighted(np.random.default_rng(0).random((size, NUM_FEATURES)))


def repo(**kwargs):
    defaults = dict(spec_factory=make_spec_factory(), num_shards=4, capacity=16)
    defaults.update(kwargs)
    return ShardedPoolRepository(**defaults)


# ==================================================================== routing
class TestConsistentHashing:
    def test_routing_is_deterministic_across_instances(self):
        a, b = repo(), repo()
        keys = [f"n40:key-{i}" for i in range(50)]
        assert [a.shard_for(k).index for k in keys] == [
            b.shard_for(k).index for k in keys
        ]

    def test_keys_spread_across_all_shards(self):
        repository = repo()
        keys = {f"n40:key-{i}" for i in range(200)}
        owners = {repository.shard_for(k).index for k in keys}
        assert owners == {0, 1, 2, 3}

    def test_resizing_moves_only_a_fraction_of_keys(self):
        """The consistent-hash property: N -> N+1 shards moves ~1/(N+1) keys."""
        keys = [f"n40:key-{i}" for i in range(400)]
        four = repo(num_shards=4)
        five = repo(num_shards=5)
        moved = sum(
            four.shard_for(k).index != five.shard_for(k).index for k in keys
        )
        assert moved / len(keys) < 0.45  # modulo hashing would move ~0.8

    def test_single_shard_routes_everything_to_shard_zero(self):
        repository = repo(num_shards=1)
        assert all(
            repository.shard_for(f"k{i}").index == 0 for i in range(20)
        )


# ============================================================ storage + pinning
class TestShardStorage:
    def test_get_put_routes_by_key(self):
        repository = repo()
        pool = make_pool()
        repository.put("a", pool)
        assert repository.get("a") is pool
        assert "a" in repository
        assert len(repository) == 1
        owner = repository.shard_for("a")
        assert owner.cache.stats.hits == 1

    def test_miss_and_record_miss_count_against_the_owning_shard(self):
        repository = repo()
        assert repository.get("nope") is None
        repository.record_miss("nope")
        assert repository.shard_for("nope").cache.stats.misses == 2
        assert repository.stats.misses == 2

    def test_capacity_splits_across_shards(self):
        repository = repo(num_shards=4, capacity=8)
        assert all(shard.capacity == 2 for shard in repository.shards)

    def test_pinned_pools_survive_eviction_pressure(self):
        repository = repo(num_shards=1, capacity=2)
        hot = make_pool()
        repository.pin("hot", hot)
        for i in range(10):
            repository.put(f"cold-{i}", make_pool())
        assert repository.get("hot") is hot
        assert "hot" in repository.pinned_keys()

    def test_pin_promotes_an_existing_lru_entry(self):
        repository = repo(num_shards=1, capacity=2)
        pool = make_pool()
        repository.put("a", pool)
        repository.pin("a")
        for i in range(5):
            repository.put(f"b-{i}", make_pool())
        assert repository.get("a") is pool

    def test_pin_unknown_key_without_pool_raises(self):
        with pytest.raises(KeyError):
            repo().pin("missing")

    def test_pin_with_explicit_pool_lifts_the_lru_copy(self):
        """Review regression: pinning a key that is also LRU-cached must not
        leave a duplicate behind (evict() would half-work and len() double
        count)."""
        repository = repo(num_shards=1)
        lru_copy = make_pool()
        repository.put("a", lru_copy)
        pinned_copy = make_pool()
        repository.pin("a", pinned_copy)
        assert len(repository) == 1
        assert repository.get("a") is pinned_copy
        assert repository.evict("a")
        assert "a" not in repository
        assert len(repository) == 0

    def test_unpin_returns_the_pool_to_lru_management(self):
        repository = repo(num_shards=1, capacity=1)
        repository.pin("a", make_pool())
        repository.unpin("a")
        assert "a" not in repository.pinned_keys()
        repository.put("b", make_pool())  # evicts the now-unpinned "a"
        assert repository.peek("a") is None

    def test_evict_drops_pinned_and_unpinned_pools(self):
        repository = repo()
        repository.put("a", make_pool())
        repository.pin("b", make_pool())
        assert repository.evict("a")
        assert repository.evict("b")
        assert not repository.evict("a")
        assert len(repository) == 0

    def test_pinned_hits_count_as_cache_wins(self):
        repository = repo()
        pool = make_pool(size=7)
        repository.pin("a", pool)
        assert repository.get("a") is pool
        assert repository.stats.hits == 1
        assert repository.samples_saved == 7

    def test_zero_capacity_disables_storage_and_pinning(self):
        repository = repo(capacity=0)
        repository.put("a", make_pool())
        repository.pin("a", make_pool())
        assert repository.get("a") is None
        assert len(repository) == 0
        assert repository.pinned_keys() == []


# ===================================================================== fills
class TestFills:
    CONSTRAINTS = ConstraintSet(np.array([[1.0, 0.0, 0.0]]))

    def test_fill_one_is_deterministic_per_key(self):
        repository = repo()
        a = repository.fill_one("k", self.CONSTRAINTS, 12)
        b = repository.fill_one("k", self.CONSTRAINTS, 12)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_fills_are_independent_of_shard_count(self):
        jobs = [
            PoolFillJob(f"k{i}", self.CONSTRAINTS, 10) for i in range(8)
        ]
        one = repo(num_shards=1).fill_many(jobs)
        four = repo(num_shards=4).fill_many(jobs)
        assert set(one) == set(four)
        for key in one:
            np.testing.assert_array_equal(one[key].samples, four[key].samples)

    def test_thread_backend_matches_inline_results(self):
        jobs = [
            PoolFillJob(f"k{i}", self.CONSTRAINTS, 10) for i in range(8)
        ]
        inline = repo(backend=InlineShardBackend()).fill_many(jobs)
        threaded_repo = repo(backend=ThreadShardBackend(max_workers=4))
        threaded = threaded_repo.fill_many(jobs)
        for key in inline:
            np.testing.assert_array_equal(
                inline[key].samples, threaded[key].samples
            )
        threaded_repo.close()

    def test_fill_many_groups_per_shard(self):
        repository = repo()
        jobs = [PoolFillJob(f"k{i}", self.CONSTRAINTS, 5) for i in range(20)]
        pools = repository.fill_many(jobs)
        assert set(pools) == {job.key for job in jobs}
        assert repository.fill_batches == 1
        assert repository.multi_shard_fill_batches == 1
        assert sum(shard.fills for shard in repository.shards) == 20
        assert sum(shard.fills > 0 for shard in repository.shards) >= 2

    def test_fill_many_with_no_jobs_is_a_noop(self):
        repository = repo()
        assert repository.fill_many([]) == {}
        assert repository.fill_batches == 0

    def test_describe_reports_topology(self):
        repository = repo()
        repository.pin("a", make_pool())
        info = repository.describe()
        assert info["num_shards"] == 4
        assert info["backend"] == "inline"
        assert info["pinned"] == 1
        assert len(info["per_shard"]) == 4


# ============================================================== backend builder
class TestShardBackends:
    def test_build_by_name(self):
        assert build_shard_backend("inline", 4).name == "inline"
        backend = build_shard_backend("thread", 4)
        assert backend.name == "thread"
        backend.close()

    def test_process_backend_by_name(self):
        backend = build_shard_backend("process", 4)
        assert backend.name == "process"
        assert backend.max_workers == 4
        backend.close()

    def test_worker_count_override_suffix(self):
        backend = build_shard_backend("process:2", 8)
        assert backend.max_workers == 2
        backend.close()
        backend = build_shard_backend("thread:3", 8)
        assert backend.max_workers == 3
        backend.close()
        # an explicit argument outranks the suffix
        backend = build_shard_backend("process:2", 8, max_workers=5)
        assert backend.max_workers == 5
        backend.close()

    def test_unknown_name_rejected_with_the_valid_list(self):
        with pytest.raises(ValueError, match="inline.*thread.*process"):
            build_shard_backend("gpu", 4)
        with pytest.raises(ValueError, match="worker-count"):
            build_shard_backend("process:zero", 4)
        with pytest.raises(ValueError, match="worker-count"):
            build_shard_backend("process:0", 4)

    def test_parse_shard_backend(self):
        assert parse_shard_backend("inline") == ("inline", None)
        assert parse_shard_backend("process:6") == ("process", 6)

    def test_thread_backend_single_call_runs_inline(self):
        backend = ThreadShardBackend(max_workers=2)
        assert backend.map([lambda: {"a": 1}]) == [{"a": 1}]
        assert backend._executor is None  # no pool spun up for one call
        backend.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedPoolRepository(spec_factory=make_spec_factory(), num_shards=0)
        with pytest.raises(ValueError):
            ShardedPoolRepository(spec_factory=make_spec_factory(), capacity=-1)
        with pytest.raises(ValueError):
            ThreadShardBackend(max_workers=0)
        with pytest.raises(ValueError):
            ProcessShardBackend(max_workers=0)
        with pytest.raises(ValueError, match="required"):
            ShardedPoolRepository()

    def test_process_backend_refuses_arbitrary_closures(self):
        backend = ProcessShardBackend(max_workers=2)
        with pytest.raises(NotImplementedError, match="process boundary"):
            backend.map([lambda: {"a": 1}])
        backend.close()


# ============================================================ legacy factories
class TestLegacySamplerFactory:
    CONSTRAINTS = ConstraintSet(np.array([[1.0, 0.0, 0.0]]))

    def test_sampler_factory_warns_but_keeps_working(self):
        with pytest.warns(DeprecationWarning, match="spec_factory"):
            repository = ShardedPoolRepository(
                sampler_factory=make_factory(), num_shards=4, capacity=16
            )
        a = repository.fill_one("k", self.CONSTRAINTS, 12)
        b = repository.fill_one("k", self.CONSTRAINTS, 12)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_both_factories_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            ShardedPoolRepository(
                sampler_factory=make_factory(),
                spec_factory=make_spec_factory(),
            )

    def test_legacy_factory_cannot_cross_the_process_boundary(self):
        with pytest.warns(DeprecationWarning):
            repository = ShardedPoolRepository(
                sampler_factory=make_factory(),
                num_shards=2,
                backend=ProcessShardBackend(max_workers=2),
            )
        jobs = [PoolFillJob(f"k{i}", self.CONSTRAINTS, 5) for i in range(4)]
        with pytest.raises(RuntimeError, match="spec_factory"):
            repository.fill_many(jobs)
        repository.close()


# ============================================================ process backend
class TestProcessShardBackend:
    CONSTRAINTS = ConstraintSet(np.array([[1.0, 0.0, 0.0]]))

    def test_matches_inline_results(self):
        jobs = [PoolFillJob(f"k{i}", self.CONSTRAINTS, 10) for i in range(8)]
        inline = repo(backend=InlineShardBackend()).fill_many(jobs)
        process_repo = repo(backend=ProcessShardBackend(max_workers=4))
        processed = process_repo.fill_many(jobs)
        assert set(inline) == set(processed)
        for key in inline:
            np.testing.assert_array_equal(
                inline[key].samples, processed[key].samples
            )
            np.testing.assert_array_equal(
                inline[key].weights, processed[key].weights
            )
        process_repo.close()

    def test_fills_run_in_worker_processes(self):
        process_repo = repo(backend=ProcessShardBackend(max_workers=2))
        jobs = [PoolFillJob(f"k{i}", self.CONSTRAINTS, 5) for i in range(6)]
        pools = process_repo.fill_many(jobs)
        worker_pids = {p.stats["fill_worker_pid"] for p in pools.values()}
        assert worker_pids  # every pool records where it was built
        assert os.getpid() not in worker_pids
        assert sum(shard.fills for shard in process_repo.shards) == 6
        process_repo.close()

    def test_worker_crash_recovers_via_retry(self, tmp_path):
        """First worker dies mid-fill; the retry on a fresh pool succeeds."""
        sentinel = tmp_path / "crashed-once"

        def crash_once_builder(spec, prior, rng):
            class CrashOnceSampler:
                def sample(self, count, constraints):
                    if not sentinel.exists():
                        sentinel.write_text("boom")
                        os._exit(13)  # simulate an OOM-kill / segfault
                    return RejectionSampler(prior, rng=rng).sample(
                        count, constraints
                    )

            return CrashOnceSampler()

        register_sampler_builder("crash-once", crash_once_builder)
        try:
            backend = ProcessShardBackend(max_workers=2, start_method="fork")
            repository = repo(
                spec_factory=make_spec_factory(sampler="crash-once"),
                backend=backend,
            )
            jobs = [PoolFillJob(f"k{i}", self.CONSTRAINTS, 5) for i in range(4)]
            pools = repository.fill_many(jobs)
            assert set(pools) == {job.key for job in jobs}
            assert backend.worker_restarts == 1
            assert backend.inline_fallbacks == 0
            # the retried fills still ran out-of-process
            assert os.getpid() not in {
                p.stats["fill_worker_pid"] for p in pools.values()
            }
            repository.close()
        finally:
            _SAMPLER_BUILDERS.pop("crash-once", None)

    def test_persistent_crash_falls_back_inline_without_poisoning(self):
        """Both attempts die → fills run inline; the next batch uses workers."""
        main_pid = os.getpid()

        def crash_in_workers_builder(spec, prior, rng):
            class CrashInWorkersSampler:
                def sample(self, count, constraints):
                    if os.getpid() != main_pid:
                        os._exit(13)
                    return RejectionSampler(prior, rng=rng).sample(
                        count, constraints
                    )

            return CrashInWorkersSampler()

        register_sampler_builder("crash-in-workers", crash_in_workers_builder)
        try:
            backend = ProcessShardBackend(max_workers=2, start_method="fork")
            repository = repo(
                spec_factory=make_spec_factory(sampler="crash-in-workers"),
                backend=backend,
            )
            jobs = [PoolFillJob(f"k{i}", self.CONSTRAINTS, 5) for i in range(4)]
            pools = repository.fill_many(jobs)
            assert set(pools) == {job.key for job in jobs}
            assert backend.worker_restarts == 2
            assert backend.inline_fallbacks == 1
            # inline fallback output is the same deterministic fill
            reference = repo().fill_many(jobs)
            for key in reference:
                np.testing.assert_array_equal(
                    reference[key].samples, pools[key].samples
                )
            # the shard is not poisoned: a healthy batch goes back out-of-process
            healthy_repo = repo(backend=backend)
            healthy = healthy_repo.fill_many(
                [PoolFillJob(f"h{i}", self.CONSTRAINTS, 5) for i in range(4)]
            )
            assert os.getpid() not in {
                p.stats["fill_worker_pid"] for p in healthy.values()
            }
            repository.close()
        finally:
            _SAMPLER_BUILDERS.pop("crash-in-workers", None)


# ======================================================== engine-level sharding
@pytest.fixture
def serving_catalog() -> ItemCatalog:
    rng = np.random.default_rng(11)
    return ItemCatalog(rng.random((30, 3)))


@pytest.fixture
def serving_profile() -> AggregateProfile:
    return AggregateProfile(["sum", "avg", "max"])


def fast_elicitation_config(**overrides) -> ElicitationConfig:
    defaults = dict(
        k=2,
        num_random=2,
        max_package_size=2,
        num_samples=40,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=60,
        search_items_cap=25,
        seed=0,
    )
    defaults.update(overrides)
    return ElicitationConfig(**defaults)


def make_engine(catalog, profile, elicitation=None, **config_overrides):
    config = EngineConfig(
        elicitation=elicitation or fast_elicitation_config(),
        seed=1,
        **config_overrides,
    )
    return RecommendationEngine(catalog, profile, config)


def run_heterogeneous(engine, num_sessions=6, rounds=3):
    """Drive distinct-prefix sessions batched; returns every presented list."""
    ids = [engine.create_session(seed=100 + i) for i in range(num_sessions)]
    presented = []
    for _round in range(rounds):
        rounds_ = engine.recommend_many(ids)
        presented.append(
            [[p.items for p in round_.presented] for round_ in rounds_]
        )
        for index, (sid, round_) in enumerate(zip(ids, rounds_)):
            engine.feedback(sid, index % len(round_.presented))
    return presented


class TestShardedEngineEquivalence:
    def test_four_shards_bit_identical_to_one_shard(
        self, serving_catalog, serving_profile
    ):
        """Sharding changes where fills run, never what is served."""
        one = make_engine(serving_catalog, serving_profile, pool_shards=1)
        four = make_engine(
            serving_catalog,
            serving_profile,
            pool_shards=4,
            pool_shard_backend="thread",
        )
        assert run_heterogeneous(one) == run_heterogeneous(four)
        assert four.stats().pool_repository["multi_shard_fill_batches"] >= 1
        four.close_repository()

    def test_four_process_shards_bit_identical_to_inline(
        self, serving_catalog, serving_profile
    ):
        """The ISSUE acceptance bar: process-backed shards serve the same rounds.

        Fills demonstrably execute in worker processes (distinct PIDs), yet
        every presented list matches the unsharded inline engine exactly.
        """
        inline = make_engine(serving_catalog, serving_profile, pool_shards=1)
        process = make_engine(
            serving_catalog,
            serving_profile,
            pool_shards=4,
            pool_shard_backend="process",
        )
        assert run_heterogeneous(inline) == run_heterogeneous(process)
        worker_pids = set()
        for shard in process.pool_repository.shards:
            for key in shard.keys():
                pid = shard.peek(key).stats.get("fill_worker_pid")
                if pid is not None:
                    worker_pids.add(pid)
        assert worker_pids  # fills actually left the engine process
        assert os.getpid() not in worker_pids
        repo_stats = process.stats().pool_repository
        assert repo_stats["backend"] == "process"
        assert repo_stats["batches_dispatched"] >= 1
        assert repo_stats["worker_restarts"] == 0
        assert repo_stats["inline_fallbacks"] == 0
        process.close_repository()
        inline.close_repository()

    def test_engine_accepts_worker_count_suffix(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(
            serving_catalog,
            serving_profile,
            pool_shards=4,
            pool_shard_backend="process:2",
        )
        assert engine.pool_repository.backend.max_workers == 2
        engine.close_repository()
        with pytest.raises(ValueError, match="valid backends"):
            make_engine(
                serving_catalog, serving_profile, pool_shard_backend="mpi"
            )

    def test_fill_shard_plan_reports_pool_missing_sessions(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile, pool_shards=4)
        ids = [engine.create_session(seed=100 + i) for i in range(4)]
        plan = engine.fill_shard_plan(ids)
        # every cold session targets the (missing) empty-prefix pool, which
        # exactly one shard owns
        assert set(plan) == set(ids)
        assert len(set(plan.values())) == 1
        engine.recommend_many(ids)
        # pools are now live/pending: nothing left to plan
        assert engine.fill_shard_plan(ids) == {}
        # unknown sessions are omitted, never an error (planning is advisory)
        assert engine.fill_shard_plan(["ghost"]) == {}

    def test_pool_cache_alias_warns_once(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile)
        RecommendationEngine._pool_cache_warned = False
        try:
            with pytest.warns(DeprecationWarning, match="pool_repository"):
                assert engine.pool_cache is engine.pool_repository
            # second access is silent (warn once per process)
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                assert engine.pool_cache is engine.pool_repository
        finally:
            RecommendationEngine._pool_cache_warned = True

    def test_sharded_batched_matches_sharded_serial(
        self, serving_catalog, serving_profile
    ):
        batched = make_engine(serving_catalog, serving_profile, pool_shards=4)
        serial = make_engine(serving_catalog, serving_profile, pool_shards=4)
        ids_b = [batched.create_session(seed=4) for _ in range(3)]
        ids_s = [serial.create_session(seed=4) for _ in range(3)]
        rounds_b = batched.recommend_many(ids_b)
        rounds_s = [serial.recommend(sid) for sid in ids_s]
        assert [[p.items for p in r.presented] for r in rounds_b] == [
            [p.items for p in r.presented] for r in rounds_s
        ]

    def test_refill_after_eviction_reproduces_the_pool(
        self, serving_catalog, serving_profile
    ):
        """Key-derived fill seeds: an evicted pool rebuilds bit-identically."""
        engine = make_engine(serving_catalog, serving_profile, pool_shards=2)
        a = engine.create_session(seed=5)
        engine.recommend(a)
        key = engine.sessions.acquire(a).pool_key
        first = engine.pool_repository.peek(key).samples.copy()
        engine.pool_repository.evict(key)
        b = engine.create_session(seed=6)
        engine.recommend(b)  # same empty-prefix fingerprint: refills the key
        np.testing.assert_array_equal(
            engine.pool_repository.peek(key).samples, first
        )


# ================================================================ warm start
class TestWarmStart:
    def _warm_engine(self, catalog, profile, first_clicks=2, **overrides):
        return make_engine(
            catalog,
            profile,
            elicitation=fast_elicitation_config(num_random=0),
            pool_shards=4,
            warm_start_first_clicks=first_clicks,
            **overrides,
        )

    def test_cold_sessions_never_sample(self, serving_catalog, serving_profile):
        engine = self._warm_engine(serving_catalog, serving_profile)
        sid = engine.create_session(seed=5)
        engine.recommend(sid)
        engine.feedback(sid, 0)  # click a recommended package
        engine.recommend(sid)
        stats = engine.stats()
        assert stats.pools_sampled == 0
        assert stats.pools_maintained == 0
        assert stats.pools_warmed == 3  # empty prefix + 2 first-click pools
        assert stats.pool_cache["hits"] >= 2

    def test_warm_topk_list_matches_session_compute(
        self, serving_catalog, serving_profile
    ):
        warm = self._warm_engine(serving_catalog, serving_profile)
        cold = make_engine(
            serving_catalog,
            serving_profile,
            elicitation=fast_elicitation_config(num_random=0),
            pool_shards=4,
        )
        rw = warm.recommend(warm.create_session(seed=5))
        rc = cold.recommend(cold.create_session(seed=5))
        assert [p.items for p in rw.presented] == [p.items for p in rc.presented]
        assert warm.stats().topk_cache["hits"] == 1  # served from the warm list
        assert cold.stats().topk_cache["hits"] == 0

    def test_warm_pools_are_pinned_against_eviction(
        self, serving_catalog, serving_profile
    ):
        engine = self._warm_engine(
            serving_catalog, serving_profile, pool_cache_size=4
        )
        warmed = set(engine.pool_repository.pinned_keys())
        assert len(warmed) == 3
        run_heterogeneous(engine, num_sessions=6, rounds=2)  # eviction pressure
        assert warmed <= set(engine.pool_repository.pinned_keys())

    def test_every_first_click_yields_a_distinct_warm_pool(
        self, serving_catalog, serving_profile
    ):
        engine = self._warm_engine(serving_catalog, serving_profile, first_clicks=2)
        sids = [engine.create_session(seed=20 + i) for i in range(2)]
        for index, sid in enumerate(sids):
            engine.recommend(sid)
            engine.feedback(sid, index)  # click choice = recommended[index]
            engine.recommend(sid)
        assert engine.stats().pools_sampled == 0

    def test_warm_start_zero_warms_only_the_empty_prefix_pool(
        self, serving_catalog, serving_profile
    ):
        engine = self._warm_engine(serving_catalog, serving_profile, first_clicks=0)
        assert engine.stats().pools_warmed == 1

    def test_exploration_configs_skip_unreachable_first_click_pools(
        self, serving_catalog, serving_profile
    ):
        """Review regression: with num_random > 0 every real first click
        includes preferences against private exploration packages, so no
        enumerated first-click fingerprint can ever be hit — the planner
        must warm only the empty-prefix pool instead of pinning dead
        weight."""
        engine = make_engine(
            serving_catalog,
            serving_profile,
            elicitation=fast_elicitation_config(num_random=2),
            pool_shards=4,
        )
        report = engine.warm_start(first_clicks=2)
        assert report.first_clicks_skipped
        assert report.first_click_sets == 0
        assert engine.stats().pools_warmed == 1
        assert len(engine.pool_repository.pinned_keys()) == 1
        # The empty-prefix warm pool is still a genuine win for round one.
        engine.recommend(engine.create_session(seed=5))
        assert engine.stats().pools_sampled == 0

    def test_rewarming_after_traffic_does_not_duplicate_pools(
        self, serving_catalog, serving_profile
    ):
        """warm_start() on an engine whose caches already hold the hot pools
        must pin them in place, not double-store them."""
        engine = make_engine(
            serving_catalog,
            serving_profile,
            elicitation=fast_elicitation_config(num_random=0),
            pool_shards=4,
        )
        engine.recommend(engine.create_session(seed=5))  # caches empty-prefix
        entries_before = len(engine.pool_repository)
        report = engine.warm_start(first_clicks=0)
        assert report.pools_filled == 0  # reused the cached pool
        assert len(engine.pool_repository) == entries_before

    def test_warm_start_requires_a_pool_cache(self, serving_catalog, serving_profile):
        with pytest.raises(ValueError):
            make_engine(
                serving_catalog,
                serving_profile,
                pool_cache_size=0,
                warm_start_first_clicks=1,
            )
