"""Figure 7: sample-maintenance strategies against new feedback (§3.4).

Figure 7(a): with a pool of previously generated samples, new feedback
preferences are grouped into buckets by how many pool samples they invalidate;
the cost of locating the violating samples is compared for the naive scan, the
pure TA-based search and the hybrid (Algorithm 1).  The expected shape: TA is
the clear winner when few samples violate the feedback, degrades badly as
violations grow, and the hybrid tracks the better of the two with a small
overhead.

Figure 7(b): the hybrid's fall-back parameter γ is swept; the cost ratio
against the naive scan dips below 1 for small positive γ and degrades back
toward the pure-TA behaviour as γ grows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.harness import (
    ExperimentScale,
    build_evaluator,
    random_package_vectors,
)
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.maintenance import (
    HybridMaintenance,
    NaiveMaintenance,
    ThresholdMaintenance,
)
from repro.utils.rng import ensure_rng

#: Bucket labels used in Figure 7(a): the maximum number of violating samples.
DEFAULT_BUCKETS: Tuple[int, ...] = (0, 1, 5, 20, 50, 200, 1000)


@dataclass
class MaintenanceBucket:
    """Aggregated maintenance cost for one violation-count bucket.

    Attributes
    ----------
    bucket:
        The bucket label (maximum number of violating samples).
    count:
        Number of feedback preferences that fell into the bucket.
    naive_seconds / ta_seconds / hybrid_seconds:
        Mean per-preference wall-clock cost of each strategy.
    naive_accesses / ta_accesses / hybrid_accesses:
        Mean per-preference number of sample accesses of each strategy.
    """

    bucket: int
    count: int = 0
    naive_seconds: float = 0.0
    ta_seconds: float = 0.0
    hybrid_seconds: float = 0.0
    naive_accesses: float = 0.0
    ta_accesses: float = 0.0
    hybrid_accesses: float = 0.0

    def _finalise(self) -> None:
        if self.count == 0:
            return
        for attr in (
            "naive_seconds", "ta_seconds", "hybrid_seconds",
            "naive_accesses", "ta_accesses", "hybrid_accesses",
        ):
            setattr(self, attr, getattr(self, attr) / self.count)


def _bucket_for(num_violations: int, buckets: Sequence[int]) -> int:
    for label in buckets:
        if num_violations <= label:
            return label
    return buckets[-1]


def _generate_workload(
    num_samples: int,
    num_preferences: int,
    num_features: int,
    num_packages: int,
    scale: ExperimentScale,
    seed: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the sample pool and the preference directions used for maintenance."""
    rng = ensure_rng(seed)
    evaluator = build_evaluator("UNI", scale, num_features=num_features)
    _, vectors = random_package_vectors(evaluator, num_packages, rng=rng)
    prior = GaussianMixture.default_prior(num_features, scale.num_gaussians, rng=rng)
    samples = prior.sample(num_samples, rng=rng)
    directions = np.zeros((num_preferences, num_features))
    for i in range(num_preferences):
        first, second = rng.choice(vectors.shape[0], size=2, replace=False)
        directions[i] = vectors[first] - vectors[second]
    return samples, directions


def run_maintenance_experiment(
    num_samples: int = 2_000,
    num_preferences: int = 300,
    buckets: Sequence[int] = DEFAULT_BUCKETS,
    gamma: float = 0.025,
    num_features: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[MaintenanceBucket]:
    """Reproduce Figure 7(a): per-bucket maintenance costs of the three strategies.

    The paper uses 10,000 samples and 1,000 preferences; the defaults here are
    scaled down (pass larger values to match).  Buckets follow the paper's
    labels and results are averaged within each bucket.
    """
    scale = scale if scale is not None else ExperimentScale(seed=seed)
    features = num_features if num_features is not None else scale.num_features
    samples, directions = _generate_workload(
        num_samples, num_preferences, features, scale.num_packages, scale, seed
    )
    naive = NaiveMaintenance()
    ta = ThresholdMaintenance()
    hybrid = HybridMaintenance(gamma)
    ta.prepare(samples)
    hybrid.prepare(samples)

    by_bucket: Dict[int, MaintenanceBucket] = {
        label: MaintenanceBucket(label) for label in buckets
    }
    for i in range(directions.shape[0]):
        direction = directions[i]
        start = time.perf_counter()
        naive_result = naive.find_violations(samples, direction)
        naive_seconds = time.perf_counter() - start

        start = time.perf_counter()
        ta_result = ta.find_violations(samples, direction)
        ta_seconds = time.perf_counter() - start

        start = time.perf_counter()
        hybrid_result = hybrid.find_violations(samples, direction)
        hybrid_seconds = time.perf_counter() - start

        if not np.array_equal(
            naive_result.violating_indices, ta_result.violating_indices
        ) or not np.array_equal(
            naive_result.violating_indices, hybrid_result.violating_indices
        ):
            raise AssertionError(
                "maintenance strategies disagree on the violating samples; bug"
            )

        bucket = by_bucket[_bucket_for(naive_result.num_violations, buckets)]
        bucket.count += 1
        bucket.naive_seconds += naive_seconds
        bucket.ta_seconds += ta_seconds
        bucket.hybrid_seconds += hybrid_seconds
        bucket.naive_accesses += naive_result.accesses
        bucket.ta_accesses += ta_result.accesses
        bucket.hybrid_accesses += hybrid_result.accesses

    results = []
    for label in buckets:
        bucket = by_bucket[label]
        bucket._finalise()
        results.append(bucket)
    return results


@dataclass
class GammaSweepPoint:
    """One γ value of Figure 7(b): cost ratios of TA and hybrid vs the naive scan."""

    gamma: float
    ta_cost_ratio: float
    hybrid_cost_ratio: float


def run_gamma_sweep(
    gammas: Sequence[float] = (0.0, 0.025, 0.05, 0.075, 0.1),
    num_samples: int = 2_000,
    num_preferences: int = 200,
    num_features: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[GammaSweepPoint]:
    """Reproduce Figure 7(b): hybrid/naive and TA/naive cost ratios as γ varies."""
    scale = scale if scale is not None else ExperimentScale(seed=seed)
    features = num_features if num_features is not None else scale.num_features
    samples, directions = _generate_workload(
        num_samples, num_preferences, features, scale.num_packages, scale, seed
    )
    naive = NaiveMaintenance()
    ta = ThresholdMaintenance()
    ta.prepare(samples)

    naive_total = 0.0
    ta_total = 0.0
    for i in range(directions.shape[0]):
        start = time.perf_counter()
        naive.find_violations(samples, directions[i])
        naive_total += time.perf_counter() - start
        start = time.perf_counter()
        ta.find_violations(samples, directions[i])
        ta_total += time.perf_counter() - start

    points: List[GammaSweepPoint] = []
    for gamma in gammas:
        hybrid = HybridMaintenance(gamma)
        hybrid.prepare(samples)
        hybrid_total = 0.0
        for i in range(directions.shape[0]):
            start = time.perf_counter()
            hybrid.find_violations(samples, directions[i])
            hybrid_total += time.perf_counter() - start
        points.append(
            GammaSweepPoint(
                gamma=gamma,
                ta_cost_ratio=ta_total / naive_total if naive_total else float("inf"),
                hybrid_cost_ratio=hybrid_total / naive_total if naive_total else float("inf"),
            )
        )
    return points


def summarise(buckets: List[MaintenanceBucket]) -> List[List]:
    """Rows (bucket, count, naive s, TA s, hybrid s) for display."""
    return [
        [b.bucket, b.count, b.naive_seconds, b.ta_seconds, b.hybrid_seconds]
        for b in buckets
    ]
