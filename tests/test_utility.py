"""Tests for LinearUtility and random utility sampling."""

import numpy as np
import pytest

from repro.core.packages import Package
from repro.core.profiles import AggregateProfile
from repro.core.utility import LinearUtility, sample_random_utility


class TestLinearUtility:
    def test_value_is_dot_product(self):
        utility = LinearUtility([0.5, -0.5])
        assert utility.value(np.array([0.8, 0.2])) == pytest.approx(0.3)

    def test_values_batched(self):
        utility = LinearUtility([1.0, 0.0])
        vectors = np.array([[0.1, 0.9], [0.7, 0.3]])
        assert np.allclose(utility.values(vectors), [0.1, 0.7])

    def test_weights_clipped_by_default(self):
        utility = LinearUtility([2.0, -3.0])
        assert np.allclose(utility.weights, [1.0, -1.0])

    def test_out_of_range_rejected_without_clip(self):
        with pytest.raises(ValueError):
            LinearUtility([1.5], clip=False)

    def test_wrong_vector_length_rejected(self):
        with pytest.raises(ValueError):
            LinearUtility([0.5, 0.5]).value(np.array([1.0]))

    def test_equality_and_hash(self):
        assert LinearUtility([0.5, 0.5]) == LinearUtility([0.5, 0.5])
        assert hash(LinearUtility([0.5])) == hash(LinearUtility([0.5]))
        assert LinearUtility([0.5]) != LinearUtility([0.6])

    def test_package_utility_and_prefers(self, paper_example_evaluator):
        utility = LinearUtility([0.5, 0.1])
        p4 = Package.of([0, 1])
        p1 = Package.of([0])
        assert utility.package_utility(paper_example_evaluator, p4) == pytest.approx(0.575)
        assert utility.prefers(paper_example_evaluator, p4, p1)
        assert not utility.prefers(paper_example_evaluator, p1, p4)

    def test_prefers_breaks_ties_by_package_id(self, paper_example_evaluator):
        utility = LinearUtility([0.0, 0.0])
        earlier = Package.of([0])
        later = Package.of([1])
        assert utility.prefers(paper_example_evaluator, earlier, later)
        assert not utility.prefers(paper_example_evaluator, later, earlier)


class TestSetMonotonicity:
    def test_paper_example_is_set_monotone(self):
        """The paper's example: 0.5·sum1 − 0.5·min2 is set-monotone."""
        utility = LinearUtility([0.5, -0.5])
        profile = AggregateProfile(["sum", "min"])
        assert utility.is_set_monotone(profile)

    def test_negative_sum_weight_not_monotone(self):
        assert not LinearUtility([-0.5, 0.5]).is_set_monotone(AggregateProfile(["sum", "max"]))

    def test_positive_min_weight_not_monotone(self):
        assert not LinearUtility([0.5]).is_set_monotone(AggregateProfile(["min"]))

    def test_avg_never_monotone_with_nonzero_weight(self):
        assert not LinearUtility([0.2, 0.0]).is_set_monotone(AggregateProfile(["avg", "sum"]))

    def test_zero_weight_ignores_aggregation(self):
        assert LinearUtility([0.0, 0.5]).is_set_monotone(AggregateProfile(["avg", "sum"]))

    def test_null_aggregation_ignored(self):
        assert LinearUtility([-0.9, 0.5]).is_set_monotone(AggregateProfile(["null", "max"]))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            LinearUtility([0.5]).is_set_monotone(AggregateProfile(["sum", "sum"]))


class TestSampleRandomUtility:
    def test_weights_in_range(self):
        utility = sample_random_utility(6, rng=0)
        assert utility.num_features == 6
        assert np.all(np.abs(utility.weights) <= 1.0)

    def test_reproducible(self):
        assert sample_random_utility(4, rng=1) == sample_random_utility(4, rng=1)

    def test_sign_constraints(self):
        utility = sample_random_utility(3, rng=0, signs=[+1, -1, 0])
        assert utility.weights[0] >= 0
        assert utility.weights[1] <= 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sample_random_utility(0)
        with pytest.raises(ValueError):
            sample_random_utility(2, signs=[1])
