"""Durable session-state stores for swap-out/restore and snapshots.

The serving engine keeps only a bounded number of sessions in memory; the
rest live in a :class:`SessionStore` as JSON payloads produced by
:meth:`RecommendationEngine.snapshot`.  Two durable backends are provided:

* :class:`JsonSessionStore` — one ``<session_id>.json`` file per session,
  trivially inspectable and diff-friendly;
* :class:`SqliteSessionStore` — a single SQLite database in WAL mode
  (concurrent readers while the engine writes), with the session id as the
  primary key and ISO-8601 UTC timestamps, following the schema conventions
  of the related-work snippets.

:class:`MemorySessionStore` backs tests and single-process engines that only
need swap-out semantics without durability.
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
from datetime import datetime, timezone
from typing import Dict, List, Optional
from urllib.parse import quote, unquote


def _utc_now_iso() -> str:
    return datetime.now(timezone.utc).isoformat()


class SessionStore(abc.ABC):
    """Abstract keyed store of JSON-serialisable session snapshots."""

    @abc.abstractmethod
    def save(self, session_id: str, payload: dict) -> None:
        """Persist (or overwrite) the snapshot for ``session_id``."""

    @abc.abstractmethod
    def load(self, session_id: str) -> Optional[dict]:
        """The stored snapshot, or ``None`` when the id is unknown."""

    @abc.abstractmethod
    def delete(self, session_id: str) -> bool:
        """Remove a snapshot; returns whether one existed."""

    @abc.abstractmethod
    def list_ids(self) -> List[str]:
        """Ids of every stored snapshot (sorted)."""

    def __contains__(self, session_id: str) -> bool:
        return self.load(session_id) is not None


class MemorySessionStore(SessionStore):
    """In-process dictionary store (no durability; useful for tests)."""

    def __init__(self) -> None:
        self._payloads: Dict[str, dict] = {}

    def save(self, session_id: str, payload: dict) -> None:
        self._payloads[session_id] = json.loads(json.dumps(payload))

    def load(self, session_id: str) -> Optional[dict]:
        payload = self._payloads.get(session_id)
        return json.loads(json.dumps(payload)) if payload is not None else None

    def delete(self, session_id: str) -> bool:
        return self._payloads.pop(session_id, None) is not None

    def list_ids(self) -> List[str]:
        return sorted(self._payloads)


class JsonSessionStore(SessionStore):
    """One JSON file per session under a directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, session_id: str) -> str:
        # Percent-encoding is collision-free and reversible, so arbitrary
        # session ids ("a/b" vs "a_b") can never overwrite each other's files.
        return os.path.join(self.directory, f"{quote(session_id, safe='')}.json")

    def save(self, session_id: str, payload: dict) -> None:
        path = self._path(session_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"saved_at": _utc_now_iso(), "payload": payload}, handle)
        os.replace(tmp, path)  # atomic on POSIX: readers never see partial JSON

    def load(self, session_id: str) -> Optional[dict]:
        path = self._path(session_id)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)["payload"]

    def delete(self, session_id: str) -> bool:
        path = self._path(session_id)
        if not os.path.exists(path):
            return False
        os.remove(path)
        return True

    def list_ids(self) -> List[str]:
        return sorted(
            unquote(name[: -len(".json")])
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )


class SqliteSessionStore(SessionStore):
    """SQLite-backed store in WAL mode.

    Schema::

        sessions(
            session_id TEXT PRIMARY KEY,
            created_at TEXT NOT NULL,   -- ISO-8601 UTC
            updated_at TEXT NOT NULL,   -- ISO-8601 UTC
            payload    TEXT NOT NULL    -- JSON snapshot
        )
    """

    _PRAGMAS = (
        ("journal_mode", "WAL"),
        ("synchronous", "NORMAL"),
        ("busy_timeout", "30000"),
    )

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._connection = sqlite3.connect(path)
        for pragma, value in self._PRAGMAS:
            self._connection.execute(f"PRAGMA {pragma}={value}")
        self._connection.execute(
            """
            CREATE TABLE IF NOT EXISTS sessions (
                session_id TEXT PRIMARY KEY,
                created_at TEXT NOT NULL,
                updated_at TEXT NOT NULL,
                payload    TEXT NOT NULL
            )
            """
        )
        self._connection.commit()

    def save(self, session_id: str, payload: dict) -> None:
        now = _utc_now_iso()
        self._connection.execute(
            """
            INSERT INTO sessions (session_id, created_at, updated_at, payload)
            VALUES (?, ?, ?, ?)
            ON CONFLICT(session_id) DO UPDATE
            SET updated_at = excluded.updated_at, payload = excluded.payload
            """,
            (session_id, now, now, json.dumps(payload)),
        )
        self._connection.commit()

    def load(self, session_id: str) -> Optional[dict]:
        row = self._connection.execute(
            "SELECT payload FROM sessions WHERE session_id = ?", (session_id,)
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def delete(self, session_id: str) -> bool:
        cursor = self._connection.execute(
            "DELETE FROM sessions WHERE session_id = ?", (session_id,)
        )
        self._connection.commit()
        return cursor.rowcount > 0

    def list_ids(self) -> List[str]:
        rows = self._connection.execute(
            "SELECT session_id FROM sessions ORDER BY session_id"
        ).fetchall()
        return [row[0] for row in rows]

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()
