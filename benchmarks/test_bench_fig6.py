"""Benchmarks for Figure 6: overall time to produce top-k package recommendations.

Figure 6(a-e) varies the number of valid samples, Figure 6(f-j) the number of
features, on the five benchmark datasets (UNI, PWR, COR, ANT, NBA).  The
benchmark prints one row per (dataset, sampler, swept value) — the series the
paper plots — and asserts the headline shapes:

* rejection sampling is the most expensive sampler once feedback accumulates
  (up to being excluded outright when the valid region shrinks below its
  attempt budget);
* importance sampling drops out beyond 5 features (grid blow-up), MCMC does not;
* sample-generation cost does not shrink as more samples are requested.

At the scaled-down default the bounded top-k search dominates total time;
``REPRO_BENCH_SCALE=paper`` restores the paper's sampling-dominated regime.
"""

import numpy as np
import pytest

from repro.experiments.fig6_overall_time import run_overall_time_experiment, summarise

from repro.experiments.harness import (
    build_evaluator,
    format_table,
    random_package_vectors,
    random_preference_directions,
)
from repro.core.ranking import rank_from_samples
from repro.sampling.base import ConstraintSet
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.sampling.rejection import RejectionSampler
from repro.topk.package_search import TopKPackageSearcher
from repro.utils.rng import ensure_rng

# The full Figure 6 sweep (5 datasets x 3 samplers x 2 sweeps) and the
# end-to-end pipeline benchmarks take several minutes; run them explicitly
# with `pytest benchmarks/test_bench_fig6.py -m slow`.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fig6_points(scale):
    from bench_utils import write_results

    points = run_overall_time_experiment(
        datasets=("UNI", "PWR", "COR", "ANT", "NBA"),
        samplers=("RS", "IS", "MS"),
        sample_counts=(50, 100, 150),
        feature_counts=(2, 4, 6, 8, 10),
        k=5,
        num_preferences=15,
        topk_sample_budget=3,
        search_beam_width=200,
        search_items_cap=60,
        scale=scale,
        seed=0,
    )
    table = format_table(
        ["dataset", "sampler", "sweep", "value", "sample_gen_s", "topk_s", "skipped"],
        summarise(points),
    )
    header = "Figure 6 — overall processing time per dataset/sampler"
    print("\n" + header)
    print(table)
    write_results("fig6_overall_time.txt", header + "\n" + table)
    # Core shape assertions (enforced in --benchmark-only runs too).
    high_dim_is = [
        p for p in points
        if p.sampler == "IS" and p.varied == "features" and p.value > 5
    ]
    assert high_dim_is and all(p.skipped for p in high_dim_is)
    assert all(not p.skipped for p in points if p.sampler == "MS")
    return points


def test_fig6_shape_importance_sampling_excluded_beyond_cutoff(fig6_points):
    high_dim_is = [
        p for p in fig6_points
        if p.sampler == "IS" and p.varied == "features" and p.value > 5
    ]
    assert high_dim_is and all(p.skipped for p in high_dim_is)
    low_dim_is = [
        p for p in fig6_points
        if p.sampler == "IS" and p.varied == "features" and p.value <= 4
    ]
    assert low_dim_is and all(not p.skipped for p in low_dim_is)


def test_fig6_shape_mcmc_handles_all_dimensionalities(fig6_points):
    ms_points = [p for p in fig6_points if p.sampler == "MS"]
    assert ms_points and all(not p.skipped for p in ms_points)


def test_fig6_shape_sampling_cost_is_significant(fig6_points):
    """Sampling cost is real everywhere, and rejection sampling pays the most.

    At the scaled-down default the bounded ``Top-k-Pkg`` search dominates
    wall-clock (the paper's full scale, where generating 1000–5000 valid
    samples dominates, is reachable via ``REPRO_BENCH_SCALE=paper``), so the
    asserted shape is the sampler comparison: over the configurations both
    can complete, plain rejection sampling costs at least as much sample
    generation as MCMC in aggregate — and the configurations RS cannot
    complete at all (skipped: valid region below its attempt budget) are the
    extreme end of the same trend.
    """
    for p in fig6_points:
        if not p.skipped:
            assert p.sample_generation_seconds > 0
    by_key = {(p.dataset, p.sampler, p.varied, p.value): p for p in fig6_points}
    rs_total = ms_total = 0.0
    rs_only_skips = 0
    for (dataset, sampler, varied, value), point in by_key.items():
        if sampler != "RS":
            continue
        ms_point = by_key.get((dataset, "MS", varied, value))
        if ms_point is None or ms_point.skipped:
            continue
        if point.skipped:
            rs_only_skips += 1
            continue
        rs_total += point.sample_generation_seconds
        ms_total += ms_point.sample_generation_seconds
    assert rs_total >= ms_total or rs_only_skips > 0


def test_fig6_shape_sample_cost_grows_with_sample_count(fig6_points):
    for sampler in ("RS", "MS"):
        series = sorted(
            (p.value, p.sample_generation_seconds)
            for p in fig6_points
            if p.sampler == sampler
            and p.varied == "samples"
            and p.dataset == "UNI"
            and not p.skipped
        )
        if sampler == "RS" and not series:
            # RS can be excluded outright when the accumulated feedback makes
            # the valid region too small for its attempt budget.
            continue
        assert series, f"no unskipped {sampler} sample-sweep points"
        assert series[0][1] <= series[-1][1] * 1.5  # cost does not shrink with more samples


@pytest.fixture(scope="module")
def pipeline_workload(scale):
    rng = ensure_rng(0)
    evaluator = build_evaluator("UNI", scale, num_features=4)
    _, vectors = random_package_vectors(evaluator, scale.num_packages, rng=rng)
    hidden = rng.uniform(-1, 1, 4)
    directions = random_preference_directions(vectors, 15, rng=rng, consistent_with=hidden)
    constraints = ConstraintSet(directions)
    prior = GaussianMixture.default_prior(4, rng=rng)
    return evaluator, constraints, prior


def _bounded_searcher(evaluator):
    """The bounded-work searcher configuration used across the Figure 6 benches."""
    return TopKPackageSearcher(evaluator, beam_width=500, max_items_accessed=150)


def test_bench_fig6_pipeline_rejection(benchmark, pipeline_workload, fig6_points):
    from repro.sampling.rejection import RejectionSamplingError

    evaluator, constraints, prior = pipeline_workload
    sampler = RejectionSampler(prior, rng=1)
    searcher = _bounded_searcher(evaluator)

    def pipeline():
        pool = sampler.sample(50, constraints)
        results = [searcher.search(pool.samples[i], 5) for i in range(5)]
        return rank_from_samples(results, 5, "exp", sample_weights=pool.weights[:5])

    try:
        result = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    except RejectionSamplingError:
        pytest.skip(
            "rejection sampling is intractable for this feedback workload "
            "(the paper's motivation for the feedback-aware samplers)"
        )
    assert len(result) == 5


def test_bench_fig6_pipeline_mcmc(benchmark, pipeline_workload):
    evaluator, constraints, prior = pipeline_workload
    sampler = MetropolisHastingsSampler(prior, rng=1)
    searcher = _bounded_searcher(evaluator)

    def pipeline():
        pool = sampler.sample(50, constraints)
        results = [searcher.search(pool.samples[i], 5) for i in range(5)]
        return rank_from_samples(results, 5, "exp", sample_weights=pool.weights[:5])

    result = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    assert len(result) == 5


def test_bench_fig6_topk_package_search(benchmark, pipeline_workload):
    """The Top-k-Pkg half of Figure 6 in isolation."""
    evaluator, _, _ = pipeline_workload
    weights = np.array([0.7, 0.5, -0.4, 0.3])
    searcher = _bounded_searcher(evaluator)
    result = benchmark.pedantic(lambda: searcher.search(weights, 5), rounds=3, iterations=1)
    assert len(result.packages) == 5
