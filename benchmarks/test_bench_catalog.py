"""Benchmark: the memory-mapped columnar catalog store.

Not a paper figure — this measures the columnar-catalog tentpole along its
acceptance axes:

* **Backing equivalence** (asserted, ``catalog_mmap_equivalence``) — a
  null-bearing catalog served three ways: the materialized engine, an
  ``EngineConfig(catalog_backing="mmap")`` engine (catalog written to a
  columnar store and reopened through ``np.memmap``), and an mmap engine
  whose pool fills run in **process-shard workers** that resolve the catalog
  by content digest and mmap the shared store (digest stamps and worker PIDs
  asserted).  Every presented package of every round — per-session and
  batched — must be bit-identical across all three.
* **Cold open** (asserted, ``catalog_cold_open_speedup`` ≥ 10x) — attaching
  a 120k-item store (header read + three ``np.memmap`` calls) vs what a cold
  engine otherwise pays: constructing the ``ItemCatalog`` (validation scan)
  and argsorting every feature in both desirability directions.
* **Predicate pushdown** (asserted, ``catalog_pushdown_row_fraction`` ≤ 0.2)
  — a selective numeric-range predicate on a 60k-item mmap catalog: the
  sorted-list walk must touch at most 20% of the catalog's rows, because
  eligibility is answered from the column summaries and stored orders before
  any item row is materialized.
* **Million-item serve** (asserted inline, peak RSS informational) — a 1M×4
  synthetic store opens and serves an elicitation round with the walk
  touching a few hundred rows; the engine process never materializes the
  full feature matrix.

Headline numbers land in ``BENCH_ci.json`` (pinned floors and the row-
fraction *ceiling* in ``tools/bench_gate.py``); the regenerated table lands
in ``results/bench_catalog.txt``.
"""

from __future__ import annotations

import os
import resource
import time

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.core.items import ItemCatalog
from repro.core.packages import PackageEvaluator
from repro.core.profiles import AggregateProfile
from repro.data.columnar import (
    NumericRangePredicate,
    open_catalog_store,
    write_catalog_store,
)
from repro.service import EngineConfig, RecommendationEngine
from repro.topk.batch_search import BatchTopKPackageSearcher

#: Acceptance bounds (pinned in tools/bench_gate.py).
MIN_EQUIVALENCE = 1.0
MIN_COLD_OPEN_SPEEDUP = 10.0
MAX_PUSHDOWN_ROW_FRACTION = 0.2

NUM_SESSIONS = 8
NUM_ROUNDS = 2
COLD_OPEN_ITEMS = 120_000
COLD_OPEN_FEATURES = 8
PUSHDOWN_ITEMS = 60_000
MILLION_ITEMS = 1_000_000


def _catalog(seed: int, n: int, m: int = 4, null_fraction: float = 0.1) -> ItemCatalog:
    rng = np.random.default_rng(seed)
    features = rng.random((n, m)) * 10.0
    features[rng.random((n, m)) < null_fraction] = np.nan
    return ItemCatalog(features)


def _profile(m: int = 4) -> AggregateProfile:
    return AggregateProfile((["sum", "avg", "max", "min"] * m)[:m])


def _engine_config(**overrides) -> EngineConfig:
    elicitation = overrides.pop(
        "elicitation",
        ElicitationConfig(
            k=3,
            num_random=2,
            max_package_size=3,
            num_samples=150,
            sampler="mcmc",
            search_sample_budget=3,
            search_beam_width=150,
            search_items_cap=60,
            seed=0,
        ),
    )
    return EngineConfig(elicitation=elicitation, seed=1, **overrides)


def _serve_rounds(engine) -> list:
    session_ids = [engine.create_session(seed=100 + i) for i in range(NUM_SESSIONS)]
    presented = []
    for session_id in session_ids:  # per-session path
        round_ = engine.recommend(session_id)
        presented.append([p.items for p in round_.presented])
        engine.feedback(session_id, 0)
    for _ in range(NUM_ROUNDS):  # batched path
        rounds = engine.recommend_many(session_ids)
        presented.append([[p.items for p in r.presented] for r in rounds])
        for session_id in session_ids:
            engine.feedback(session_id, 1)
    return presented


@pytest.fixture(scope="module")
def catalog_report():
    from bench_utils import record_ci_metric, write_results

    catalog = _catalog(seed=0, n=3_000)
    profile = _profile()

    # ---- backing equivalence: materialized vs mmap vs mmap+process workers
    materialized = RecommendationEngine(catalog, profile, _engine_config())
    rounds_materialized = _serve_rounds(materialized)
    materialized.close_repository()

    mapped = RecommendationEngine(
        catalog, profile, _engine_config(catalog_backing="mmap")
    )
    assert mapped.catalog.backing_kind == "mmap"
    rounds_mapped = _serve_rounds(mapped)
    catalog_digest = mapped.catalog.content_digest()
    mapped.close_repository()

    process = RecommendationEngine(
        catalog,
        profile,
        _engine_config(
            catalog_backing="mmap", pool_shards=2, pool_shard_backend="process:2"
        ),
    )
    rounds_process = _serve_rounds(process)
    worker_pids, digest_stamps = set(), set()
    for shard in process.pool_repository.shards:
        for key in shard.keys():
            stats = shard.peek(key).stats
            if stats.get("fill_worker_pid") is not None:
                worker_pids.add(stats["fill_worker_pid"])
            if stats.get("catalog_digest") is not None:
                digest_stamps.add(stats["catalog_digest"])
    process.close_repository()

    out_of_process = bool(worker_pids) and os.getpid() not in worker_pids
    workers_mapped_store = digest_stamps == {catalog_digest}
    equivalence = (
        1.0
        if (
            rounds_mapped == rounds_materialized
            and rounds_process == rounds_materialized
            and out_of_process
            and workers_mapped_store
        )
        else 0.0
    )

    # ---- cold open: mmap attach vs rebuild + re-argsort
    big = _catalog(seed=1, n=COLD_OPEN_ITEMS, m=COLD_OPEN_FEATURES)
    raw = np.array(big.features)  # the table a cold engine would load
    import tempfile

    store_dir = tempfile.mkdtemp(prefix="repro-bench-catalog-")
    write_catalog_store(big, store_dir)

    def rebuild() -> float:
        start = time.perf_counter()
        cold = ItemCatalog(raw)
        for j in range(cold.num_features):
            cold.argsort_feature(j, descending=True)
            cold.argsort_feature(j, descending=False)
        return time.perf_counter() - start

    def attach() -> float:
        start = time.perf_counter()
        open_catalog_store(store_dir)
        return time.perf_counter() - start

    rebuild_seconds = min(rebuild() for _ in range(3))
    attach_seconds = min(attach() for _ in range(3))
    cold_open_speedup = rebuild_seconds / attach_seconds

    # ---- predicate pushdown row fraction
    push_dir = tempfile.mkdtemp(prefix="repro-bench-pushdown-")
    write_catalog_store(_catalog(seed=2, n=PUSHDOWN_ITEMS), push_dir)
    push_catalog = open_catalog_store(push_dir)
    predicate = NumericRangePredicate(0, low=9.0)  # ~9% of the uniform range
    eligible = int(predicate.eligible_mask(push_catalog).sum())
    evaluator = PackageEvaluator(push_catalog, _profile(), max_package_size=3)
    searcher = BatchTopKPackageSearcher(evaluator, catalog_predicate=predicate)
    rng = np.random.default_rng(3)
    results = searcher.search_many(rng.normal(size=(8, 4)), 3)
    rows_touched = max(r.items_accessed for r in results)
    pushdown_fraction = rows_touched / PUSHDOWN_ITEMS

    # ---- million-item catalog: open and serve without materializing
    million_dir = tempfile.mkdtemp(prefix="repro-bench-million-")
    write_catalog_store(_catalog(seed=4, n=MILLION_ITEMS), million_dir)
    million = open_catalog_store(million_dir)
    serve_engine = RecommendationEngine(
        million,
        _profile(),
        _engine_config(
            elicitation=ElicitationConfig(
                k=2,
                num_random=1,
                max_package_size=2,
                num_samples=16,
                sampler="mcmc",
                search_sample_budget=2,
                search_items_cap=400,
                seed=0,
            ),
            catalog_backing="mmap",
        ),
    )
    start = time.perf_counter()
    session_id = serve_engine.create_session(seed=7)
    million_round = serve_engine.recommend(session_id)
    million_seconds = time.perf_counter() - start
    serve_engine.close_repository()
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    report = {
        "equivalence": equivalence,
        "rounds_mapped_ok": rounds_mapped == rounds_materialized,
        "rounds_process_ok": rounds_process == rounds_materialized,
        "worker_pids": worker_pids,
        "out_of_process": out_of_process,
        "workers_mapped_store": workers_mapped_store,
        "catalog_digest": catalog_digest,
        "rebuild_seconds": rebuild_seconds,
        "attach_seconds": attach_seconds,
        "cold_open_speedup": cold_open_speedup,
        "eligible": eligible,
        "rows_touched": rows_touched,
        "pushdown_fraction": pushdown_fraction,
        "million_round": million_round,
        "million_seconds": million_seconds,
        "peak_rss_mb": peak_rss_mb,
    }

    header = (
        "Memory-mapped columnar catalog store\n"
        f"equivalence (materialized vs mmap vs mmap+process workers) = "
        f"{equivalence:.0f} (floor: exact); cold open x{cold_open_speedup:.1f} "
        f"(floor {MIN_COLD_OPEN_SPEEDUP:.0f}x); pushdown row fraction "
        f"{pushdown_fraction:.4f} (ceiling {MAX_PUSHDOWN_ROW_FRACTION})"
    )
    body = "\n".join(
        [
            "[backing equivalence (asserted)]",
            f"  {NUM_SESSIONS} sessions, per-session + {NUM_ROUNDS} batched rounds",
            f"  mmap rounds bit-identical:    {rounds_mapped == rounds_materialized}",
            f"  process rounds bit-identical: {rounds_process == rounds_materialized}",
            f"  fill workers: {len(worker_pids)} distinct PIDs "
            f"(engine pid excluded: {out_of_process}), every fill stamped "
            f"with store digest {catalog_digest}: {workers_mapped_store}",
            "",
            "[cold open (asserted)]",
            f"  {COLD_OPEN_ITEMS:,} items x {COLD_OPEN_FEATURES} features",
            f"  rebuild + argsort both directions: {rebuild_seconds * 1e3:.1f} ms",
            f"  mmap attach:                       {attach_seconds * 1e3:.3f} ms",
            f"  speedup: x{cold_open_speedup:.1f}",
            "",
            "[predicate pushdown (asserted)]",
            f"  {PUSHDOWN_ITEMS:,}-item mmap catalog, range predicate keeps "
            f"{eligible:,} items ({eligible / PUSHDOWN_ITEMS:.1%})",
            f"  rows touched by the walk: {rows_touched:,} "
            f"({pushdown_fraction:.2%} of the catalog)",
            "",
            "[million-item serve (asserted inline)]",
            f"  {MILLION_ITEMS:,}-item store opened and served a round in "
            f"{million_seconds:.3f}s ({len(million_round.presented)} packages "
            f"presented)",
            f"  peak RSS: {peak_rss_mb:.0f} MB (informational; includes the "
            f"store-write phase of this benchmark process)",
        ]
    )
    print("\n" + header + "\n\n" + body)
    write_results("bench_catalog.txt", header + "\n\n" + body)
    record_ci_metric(
        "catalog_mmap_equivalence",
        equivalence,
        MIN_EQUIVALENCE,
        source="benchmarks/test_bench_catalog.py",
        description=(
            f"1.0 iff mmap-backed engines (inline and process-shard workers "
            f"opening the store by digest) serve rounds bit-identical to the "
            f"materialized engine, {NUM_SESSIONS} sessions per-session + "
            f"batched"
        ),
        unit="",
    )
    record_ci_metric(
        "catalog_cold_open_speedup",
        cold_open_speedup,
        MIN_COLD_OPEN_SPEEDUP,
        source="benchmarks/test_bench_catalog.py",
        description=(
            f"Catalog rebuild + both-direction argsorts over mmap store "
            f"attach, {COLD_OPEN_ITEMS:,} items x {COLD_OPEN_FEATURES} "
            f"features, best of 3"
        ),
    )
    record_ci_metric(
        "catalog_pushdown_row_fraction",
        pushdown_fraction,
        source="benchmarks/test_bench_catalog.py",
        description=(
            f"Max rows touched by a predicate-pushdown batch walk over "
            f"catalog size, {PUSHDOWN_ITEMS:,}-item mmap catalog, "
            f"~{eligible / PUSHDOWN_ITEMS:.0%}-selective range predicate"
        ),
        unit="",
        ceiling=MAX_PUSHDOWN_ROW_FRACTION,
    )
    record_ci_metric(
        "catalog_peak_rss_mb",
        peak_rss_mb,
        0.0,
        source="benchmarks/test_bench_catalog.py",
        description=(
            "Peak RSS of the benchmark process (informational; dominated by "
            "the store-write phases, not the mmap serve)"
        ),
        unit="MB",
    )
    return report


def test_mmap_equivalence(catalog_report):
    assert catalog_report["rounds_mapped_ok"]
    assert catalog_report["rounds_process_ok"]
    assert catalog_report["out_of_process"]
    assert catalog_report["workers_mapped_store"]
    assert catalog_report["equivalence"] >= MIN_EQUIVALENCE


def test_cold_open_speedup(catalog_report):
    assert catalog_report["cold_open_speedup"] >= MIN_COLD_OPEN_SPEEDUP


def test_pushdown_row_fraction(catalog_report):
    assert 0 < catalog_report["eligible"] < PUSHDOWN_ITEMS
    assert catalog_report["pushdown_fraction"] <= MAX_PUSHDOWN_ROW_FRACTION


def test_million_item_catalog_serves_a_round(catalog_report):
    round_ = catalog_report["million_round"]
    assert round_.presented, "the million-item engine served no packages"
    assert catalog_report["million_seconds"] < 60.0
