"""Durable session-state stores for swap-out/restore and snapshots.

The serving engine keeps only a bounded number of sessions in memory; the
rest live in a :class:`SessionStore` as JSON payloads produced by
:meth:`RecommendationEngine.snapshot`.  Two durable backends are provided:

* :class:`JsonSessionStore` — one ``<session_id>.json`` file per session,
  trivially inspectable and diff-friendly;
* :class:`SqliteSessionStore` — a single SQLite database in WAL mode
  (concurrent readers while the engine writes), with the session id as the
  primary key and ISO-8601 UTC timestamps, following the schema conventions
  of the related-work snippets.

:class:`MemorySessionStore` backs tests and single-process engines that only
need swap-out semantics without durability.
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Optional
from urllib.parse import quote, unquote


def _utc_now_iso() -> str:
    return datetime.now(timezone.utc).isoformat()


class SessionStore(abc.ABC):
    """Abstract keyed store of JSON-serialisable session snapshots.

    Beyond per-session snapshots, every store carries a *pool table*: pool
    payloads keyed by the engine's pool keys (``n<count>:<fingerprint>``).
    Reference snapshots (snapshot compaction) point into it — a pool shared
    by thousands of sessions is persisted once, not once per session.  Pool
    payloads are content-addressed by their key and therefore never
    overwritten; they outlive individual sessions by design (deleting a
    session must not break the other sessions referencing its pool) and are
    reclaimed explicitly via :meth:`delete_pool`, or in bulk by the
    :meth:`gc_pools` mark-and-sweep.
    """

    @abc.abstractmethod
    def save(self, session_id: str, payload: dict) -> None:
        """Persist (or overwrite) the snapshot for ``session_id``."""

    @abc.abstractmethod
    def load(self, session_id: str) -> Optional[dict]:
        """The stored snapshot, or ``None`` when the id is unknown."""

    @abc.abstractmethod
    def delete(self, session_id: str) -> bool:
        """Remove a snapshot; returns whether one existed."""

    @abc.abstractmethod
    def list_ids(self) -> List[str]:
        """Ids of every stored snapshot (sorted)."""

    # ------------------------------------------------------------- pool table
    # The pool-table methods are concrete with an in-memory default, so a
    # SessionStore subclass written against the original four-method
    # interface keeps instantiating and swapping out.  The default is
    # NON-DURABLE (pools referenced by compact snapshots are re-derivable
    # or re-sampled after a restart — the documented miss path); durable
    # backends override all four.

    def _fallback_pools(self) -> Dict[str, dict]:
        pools = getattr(self, "_memory_pool_table", None)
        if pools is None:
            pools = {}
            self._memory_pool_table = pools
        return pools

    def save_pool(self, pool_key: str, payload: dict) -> None:
        """Persist a shared pool payload under its repository key."""
        self._fallback_pools()[pool_key] = json.loads(json.dumps(payload))

    def load_pool(self, pool_key: str) -> Optional[dict]:
        """The stored pool payload, or ``None`` when the key is unknown."""
        payload = self._fallback_pools().get(pool_key)
        return json.loads(json.dumps(payload)) if payload is not None else None

    def has_pool(self, pool_key: str) -> bool:
        """Whether a pool payload exists, without loading it.

        Backends override this with a cheap existence probe (stat / SELECT 1)
        — the engine calls it on every swap-out to deduplicate pool writes.
        """
        return self.load_pool(pool_key) is not None

    def delete_pool(self, pool_key: str) -> bool:
        """Remove a pool payload; returns whether one existed."""
        return self._fallback_pools().pop(pool_key, None) is not None

    def list_pool_keys(self) -> List[str]:
        """Keys of every stored pool payload (sorted)."""
        return sorted(self._fallback_pools())

    # --------------------------------------------------- pool-table collection
    @staticmethod
    def pool_ref_of(payload: Optional[dict]) -> Optional[str]:
        """The content-addressed pool-table key a snapshot payload references.

        Reference snapshots (``embed_pool=False``) carry ``{"key", "digest"}``
        and point at the pool-table entry ``key#digest``; embedded snapshots
        carry their samples inline and reference nothing.  Returns ``None``
        for embedded, pool-less, or malformed payloads.
        """
        pool = (payload or {}).get("pool") or {}
        key, digest = pool.get("key"), pool.get("digest")
        if key is None or digest is None or "samples" in pool:
            return None
        return f"{key}#{digest}"

    def gc_pools(self, live_refs: Optional[Iterable[str]] = None) -> int:
        """Mark-and-sweep the pool table; returns ``pools_collected``.

        Pool payloads are content-addressed and never overwritten, so a
        long-lived store accumulates entries whose referencing snapshots are
        gone.  ``live_refs`` is the mark set — the ``key#digest`` references
        that must survive; when ``None`` it is derived from the store's own
        snapshots (every stored session is loaded and its pool reference
        collected).  Everything in the pool table outside the mark set is
        deleted.

        Callers with pools referenced from *outside* the store (live engine
        sessions that have not swapped out yet) must pass those references
        explicitly — the default mark only sees stored snapshots.
        """
        if live_refs is None:
            live_refs = (
                self.pool_ref_of(self.load(session_id))
                for session_id in self.list_ids()
            )
        live = {ref for ref in live_refs if ref is not None}
        pools_collected = 0
        for pool_key in self.list_pool_keys():
            if pool_key not in live and self.delete_pool(pool_key):
                pools_collected += 1
        return pools_collected

    # ------------------------------------------------------------ accounting
    def total_bytes(self) -> int:
        """Bytes held by the store (sessions + pools), for compaction metrics.

        Optional: backends that can measure themselves override this; the
        default raises, since the ABC has no view of session storage.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement total_bytes()"
        )

    def __contains__(self, session_id: str) -> bool:
        return self.load(session_id) is not None


class MemorySessionStore(SessionStore):
    """In-process dictionary store (no durability; useful for tests)."""

    def __init__(self) -> None:
        self._payloads: Dict[str, dict] = {}
        self._pools: Dict[str, dict] = {}

    def save(self, session_id: str, payload: dict) -> None:
        self._payloads[session_id] = json.loads(json.dumps(payload))

    def load(self, session_id: str) -> Optional[dict]:
        payload = self._payloads.get(session_id)
        return json.loads(json.dumps(payload)) if payload is not None else None

    def delete(self, session_id: str) -> bool:
        return self._payloads.pop(session_id, None) is not None

    def list_ids(self) -> List[str]:
        return sorted(self._payloads)

    def save_pool(self, pool_key: str, payload: dict) -> None:
        self._pools[pool_key] = json.loads(json.dumps(payload))

    def load_pool(self, pool_key: str) -> Optional[dict]:
        payload = self._pools.get(pool_key)
        return json.loads(json.dumps(payload)) if payload is not None else None

    def has_pool(self, pool_key: str) -> bool:
        return pool_key in self._pools

    def delete_pool(self, pool_key: str) -> bool:
        return self._pools.pop(pool_key, None) is not None

    def list_pool_keys(self) -> List[str]:
        return sorted(self._pools)

    def total_bytes(self) -> int:
        return sum(
            len(json.dumps(payload).encode("utf-8"))
            for table in (self._payloads, self._pools)
            for payload in table.values()
        )


class JsonFilePoolTable:
    """A durable pool table: one atomic JSON file per pool key.

    Factored out of :class:`JsonSessionStore` so every directory-backed store
    (JSON snapshots, the event-log store) shares one pool-file scheme: pool
    keys are percent-encoded into flat ``<key>.json`` files, written via a
    temp-file + :func:`os.replace` so readers never observe partial JSON.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _path(self, pool_key: str) -> str:
        return os.path.join(self.directory, f"{quote(pool_key, safe='')}.json")

    @staticmethod
    def write_atomic(path: str, document: dict) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        os.replace(tmp, path)  # atomic on POSIX: readers never see partial JSON

    def save(self, pool_key: str, payload: dict) -> None:
        os.makedirs(self.directory, exist_ok=True)
        self.write_atomic(
            self._path(pool_key), {"saved_at": _utc_now_iso(), "payload": payload}
        )

    def load(self, pool_key: str) -> Optional[dict]:
        path = self._path(pool_key)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)["payload"]

    def has(self, pool_key: str) -> bool:
        return os.path.exists(self._path(pool_key))

    def delete(self, pool_key: str) -> bool:
        path = self._path(pool_key)
        if not os.path.exists(path):
            return False
        os.remove(path)
        return True

    def keys(self) -> List[str]:
        if not os.path.isdir(self.directory):
            return []
        return sorted(
            unquote(name[: -len(".json")])
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )

    def total_bytes(self) -> int:
        if not os.path.isdir(self.directory):
            return 0
        return sum(
            os.path.getsize(os.path.join(self.directory, name))
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )


class JsonSessionStore(SessionStore):
    """One JSON file per session under a directory.

    Shared pool payloads live in a ``pools/`` subdirectory, one file per
    pool key (the subdirectory never collides with session files because
    session ids are stored flat with a ``.json`` suffix).
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._pool_table = JsonFilePoolTable(os.path.join(directory, "pools"))
        self.pools_directory = self._pool_table.directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, session_id: str) -> str:
        # Percent-encoding is collision-free and reversible, so arbitrary
        # session ids ("a/b" vs "a_b") can never overwrite each other's files.
        return os.path.join(self.directory, f"{quote(session_id, safe='')}.json")

    _write_atomic = staticmethod(JsonFilePoolTable.write_atomic)

    def save(self, session_id: str, payload: dict) -> None:
        self._write_atomic(
            self._path(session_id),
            {"saved_at": _utc_now_iso(), "payload": payload},
        )

    def load(self, session_id: str) -> Optional[dict]:
        path = self._path(session_id)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)["payload"]

    def delete(self, session_id: str) -> bool:
        path = self._path(session_id)
        if not os.path.exists(path):
            return False
        os.remove(path)
        return True

    def list_ids(self) -> List[str]:
        return sorted(
            unquote(name[: -len(".json")])
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )

    def save_pool(self, pool_key: str, payload: dict) -> None:
        self._pool_table.save(pool_key, payload)

    def load_pool(self, pool_key: str) -> Optional[dict]:
        return self._pool_table.load(pool_key)

    def has_pool(self, pool_key: str) -> bool:
        return self._pool_table.has(pool_key)

    def delete_pool(self, pool_key: str) -> bool:
        return self._pool_table.delete(pool_key)

    def list_pool_keys(self) -> List[str]:
        return self._pool_table.keys()

    def total_bytes(self) -> int:
        total = self._pool_table.total_bytes()
        if os.path.isdir(self.directory):
            total += sum(
                os.path.getsize(os.path.join(self.directory, name))
                for name in os.listdir(self.directory)
                if name.endswith(".json")
            )
        return total


class SqliteSessionStore(SessionStore):
    """SQLite-backed store in WAL mode.

    Schema::

        sessions(
            session_id TEXT PRIMARY KEY,
            created_at TEXT NOT NULL,   -- ISO-8601 UTC
            updated_at TEXT NOT NULL,   -- ISO-8601 UTC
            payload    TEXT NOT NULL    -- JSON snapshot
        )
        pools(
            pool_key   TEXT PRIMARY KEY,
            created_at TEXT NOT NULL,   -- ISO-8601 UTC
            payload    TEXT NOT NULL    -- JSON pool (samples + weights)
        )
    """

    _PRAGMAS = (
        ("journal_mode", "WAL"),
        ("synchronous", "NORMAL"),
        ("busy_timeout", "30000"),
    )

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._connection = sqlite3.connect(path)
        for pragma, value in self._PRAGMAS:
            self._connection.execute(f"PRAGMA {pragma}={value}")
        self._connection.execute(
            """
            CREATE TABLE IF NOT EXISTS sessions (
                session_id TEXT PRIMARY KEY,
                created_at TEXT NOT NULL,
                updated_at TEXT NOT NULL,
                payload    TEXT NOT NULL
            )
            """
        )
        self._connection.execute(
            """
            CREATE TABLE IF NOT EXISTS pools (
                pool_key   TEXT PRIMARY KEY,
                created_at TEXT NOT NULL,
                payload    TEXT NOT NULL
            )
            """
        )
        self._connection.commit()

    def save(self, session_id: str, payload: dict) -> None:
        now = _utc_now_iso()
        self._connection.execute(
            """
            INSERT INTO sessions (session_id, created_at, updated_at, payload)
            VALUES (?, ?, ?, ?)
            ON CONFLICT(session_id) DO UPDATE
            SET updated_at = excluded.updated_at, payload = excluded.payload
            """,
            (session_id, now, now, json.dumps(payload)),
        )
        self._connection.commit()

    def load(self, session_id: str) -> Optional[dict]:
        row = self._connection.execute(
            "SELECT payload FROM sessions WHERE session_id = ?", (session_id,)
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def delete(self, session_id: str) -> bool:
        cursor = self._connection.execute(
            "DELETE FROM sessions WHERE session_id = ?", (session_id,)
        )
        self._connection.commit()
        return cursor.rowcount > 0

    def list_ids(self) -> List[str]:
        rows = self._connection.execute(
            "SELECT session_id FROM sessions ORDER BY session_id"
        ).fetchall()
        return [row[0] for row in rows]

    def save_pool(self, pool_key: str, payload: dict) -> None:
        # The engine's pool-table keys are content-addressed
        # (fingerprint#digest), so an existing row is already the same
        # content and conflicts are ignored, not replaced.
        self._connection.execute(
            """
            INSERT INTO pools (pool_key, created_at, payload)
            VALUES (?, ?, ?)
            ON CONFLICT(pool_key) DO NOTHING
            """,
            (pool_key, _utc_now_iso(), json.dumps(payload)),
        )
        self._connection.commit()

    def load_pool(self, pool_key: str) -> Optional[dict]:
        row = self._connection.execute(
            "SELECT payload FROM pools WHERE pool_key = ?", (pool_key,)
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def has_pool(self, pool_key: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM pools WHERE pool_key = ?", (pool_key,)
        ).fetchone()
        return row is not None

    def delete_pool(self, pool_key: str) -> bool:
        cursor = self._connection.execute(
            "DELETE FROM pools WHERE pool_key = ?", (pool_key,)
        )
        self._connection.commit()
        return cursor.rowcount > 0

    def list_pool_keys(self) -> List[str]:
        rows = self._connection.execute(
            "SELECT pool_key FROM pools ORDER BY pool_key"
        ).fetchall()
        return [row[0] for row in rows]

    def total_bytes(self) -> int:
        (session_bytes,) = self._connection.execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM sessions"
        ).fetchone()
        (pool_bytes,) = self._connection.execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM pools"
        ).fetchone()
        return int(session_bytes) + int(pool_bytes)

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()
