"""Spatial index substrates over weight space.

The importance sampler (§3.2.1) approximates the centre of the valid-weight
polytope with a regular grid decomposition of the weight hypercube, and the
constraint-checking optimisation (§3.3) organises cells hierarchically in a
quad-tree so cells violating a new preference can be pruned in bulk.
"""

from repro.index.grid import GridCell, WeightSpaceGrid
from repro.index.quadtree import QuadTree, QuadTreeNode

__all__ = ["GridCell", "WeightSpaceGrid", "QuadTree", "QuadTreeNode"]
