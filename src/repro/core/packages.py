"""Packages (sets of items) and their aggregate feature vectors.

A package is a non-empty set of items of size at most φ (the system-defined
maximum package size).  Its feature vector w.r.t. a profile ``V`` is the
per-feature aggregate of the member items' values, normalised into ``[0, 1]``
by the maximum achievable aggregate value (paper §2, Example 1).

:class:`PackageEvaluator` binds an :class:`~repro.core.items.ItemCatalog`, an
:class:`~repro.core.profiles.AggregateProfile` and φ together and provides:

* package → normalised feature vector / utility evaluation,
* an incremental :class:`AggregationState` API used by the ``Top-k-Pkg`` search
  to evaluate ``U(p ∪ {t})`` and ``U(p ∪ {τ})`` (τ = boundary vector) without
  re-aggregating from scratch,
* enumeration and random generation of candidate packages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile, Aggregation
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True, order=True)
class Package:
    """An immutable package: a sorted tuple of item indices.

    The sorted tuple doubles as the package's deterministic identifier, which
    the paper uses as the tie-breaker when two packages have equal utility.
    """

    items: Tuple[int, ...]

    @classmethod
    def of(cls, items: Iterable[int]) -> "Package":
        """Create a package from any iterable of item indices (deduplicated)."""
        unique = tuple(sorted(set(int(i) for i in items)))
        if not unique:
            raise ValueError("a package must contain at least one item")
        return cls(unique)

    @property
    def size(self) -> int:
        """Number of items in the package."""
        return len(self.items)

    @property
    def package_id(self) -> Tuple[int, ...]:
        """Deterministic identifier used for tie-breaking."""
        return self.items

    def contains(self, item_index: int) -> bool:
        """Whether the package contains the given item."""
        return item_index in self.items

    def add(self, item_index: int) -> "Package":
        """A new package with ``item_index`` added (no-op if already present)."""
        if item_index in self.items:
            return self
        return Package(tuple(sorted(self.items + (int(item_index),))))

    def __iter__(self) -> Iterator[int]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


class AggregationState:
    """Incremental aggregation state for building packages one item at a time.

    Tracks, per feature, the running sum, count of non-null values, minimum and
    maximum, plus the package size.  This is sufficient to produce the exact
    aggregate vector for any profile (min/max/sum/avg) in O(m), and supports
    hypothetical additions of the boundary vector τ used by ``upper-exp``.
    """

    __slots__ = ("sums", "counts", "mins", "maxs", "size")

    def __init__(
        self,
        sums: np.ndarray,
        counts: np.ndarray,
        mins: np.ndarray,
        maxs: np.ndarray,
        size: int,
    ) -> None:
        self.sums = sums
        self.counts = counts
        self.mins = mins
        self.maxs = maxs
        self.size = size

    @classmethod
    def empty(cls, num_features: int) -> "AggregationState":
        """State of the empty package."""
        return cls(
            sums=np.zeros(num_features),
            counts=np.zeros(num_features, dtype=int),
            mins=np.full(num_features, np.inf),
            maxs=np.full(num_features, -np.inf),
            size=0,
        )

    def add(self, values: np.ndarray) -> "AggregationState":
        """Return a new state with one more item whose feature vector is ``values``.

        NaN entries are treated as null: they do not contribute to sums, counts,
        minima or maxima, but the package size still increases (the paper's
        ``avg`` divides by ``|p|``).
        """
        values = np.asarray(values, dtype=float)
        null = np.isnan(values)
        contribution = np.where(null, 0.0, values)
        return AggregationState(
            sums=self.sums + contribution,
            counts=self.counts + (~null).astype(int),
            mins=np.where(null, self.mins, np.minimum(self.mins, contribution)),
            maxs=np.where(null, self.maxs, np.maximum(self.maxs, contribution)),
            size=self.size + 1,
        )

    def copy(self) -> "AggregationState":
        """An independent copy of the state."""
        return AggregationState(
            self.sums.copy(), self.counts.copy(), self.mins.copy(), self.maxs.copy(), self.size
        )


class PackageEvaluator:
    """Evaluate packages against a profile, with normalisation and utilities.

    Parameters
    ----------
    catalog:
        The item catalog.
    profile:
        The aggregate feature profile ``V``.
    max_package_size:
        The system-defined maximum package size φ.
    normalisers:
        Optional pre-computed per-feature maximum achievable aggregate values;
        computed from the catalog when omitted.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        profile: AggregateProfile,
        max_package_size: int,
        normalisers: Optional[np.ndarray] = None,
    ) -> None:
        if profile.num_features != catalog.num_features:
            raise ValueError(
                f"profile covers {profile.num_features} features but the catalog "
                f"has {catalog.num_features}"
            )
        if max_package_size <= 0:
            raise ValueError(
                f"max_package_size must be > 0, got {max_package_size}"
            )
        self.catalog = catalog
        self.profile = profile
        self.max_package_size = int(max_package_size)
        if normalisers is None:
            normalisers = profile.max_aggregate_values(catalog, self.max_package_size)
        normalisers = np.asarray(normalisers, dtype=float)
        if normalisers.shape != (catalog.num_features,):
            raise ValueError(
                f"normalisers must have shape ({catalog.num_features},), "
                f"got {normalisers.shape}"
            )
        if (normalisers <= 0).any():
            raise ValueError("normalisers must be strictly positive")
        self.normalisers = normalisers

    # ------------------------------------------------------------------ basics
    @property
    def num_features(self) -> int:
        """Number of features."""
        return self.catalog.num_features

    # ------------------------------------------------------- direct evaluation
    def raw_aggregate(self, package: Package) -> np.ndarray:
        """Unnormalised aggregate feature vector of ``package``."""
        indices = np.asarray(package.items, dtype=int)
        values = self.catalog.features[indices]
        return self.profile.aggregate(values)

    def vector(self, package: Package) -> np.ndarray:
        """Normalised feature vector of ``package`` (each entry in [0, 1])."""
        return self.raw_aggregate(package) / self.normalisers

    def vectors(self, packages: Sequence[Package]) -> np.ndarray:
        """Normalised feature vectors for a sequence of packages, stacked."""
        if not packages:
            return np.zeros((0, self.num_features))
        return np.stack([self.vector(p) for p in packages])

    def utility(self, package: Package, weights: np.ndarray) -> float:
        """Linear utility ``w · p`` of ``package`` under weight vector ``weights``."""
        weights = np.asarray(weights, dtype=float)
        return float(self.vector(package) @ weights)

    def utilities(self, packages: Sequence[Package], weights: np.ndarray) -> np.ndarray:
        """Utilities of several packages under one weight vector."""
        weights = np.asarray(weights, dtype=float)
        return self.vectors(packages) @ weights

    # --------------------------------------------------- incremental evaluation
    def empty_state(self) -> AggregationState:
        """Aggregation state of the empty package."""
        return AggregationState.empty(self.num_features)

    def state_add_item(self, state: AggregationState, item_index: int) -> AggregationState:
        """State after adding catalog item ``item_index``."""
        return state.add(self.catalog.feature_values(item_index))

    def state_add_values(self, state: AggregationState, values: np.ndarray) -> AggregationState:
        """State after adding a hypothetical item with feature vector ``values``."""
        return state.add(values)

    def state_vector(self, state: AggregationState) -> np.ndarray:
        """Normalised feature vector of the package described by ``state``."""
        if state.size == 0:
            return np.zeros(self.num_features)
        raw = np.zeros(self.num_features)
        for j, aggregation in enumerate(self.profile.aggregations):
            if aggregation is Aggregation.NULL or state.counts[j] == 0:
                continue
            if aggregation is Aggregation.SUM:
                raw[j] = state.sums[j]
            elif aggregation is Aggregation.AVG:
                raw[j] = state.sums[j] / state.size
            elif aggregation is Aggregation.MIN:
                raw[j] = state.mins[j]
            elif aggregation is Aggregation.MAX:
                raw[j] = state.maxs[j]
        return raw / self.normalisers

    def state_utility(self, state: AggregationState, weights: np.ndarray) -> float:
        """Utility of the package described by ``state`` under ``weights``."""
        weights = np.asarray(weights, dtype=float)
        return float(self.state_vector(state) @ weights)

    def state_for_package(self, package: Package) -> AggregationState:
        """Aggregation state for an existing package."""
        state = self.empty_state()
        for item_index in package:
            state = self.state_add_item(state, item_index)
        return state

    # ------------------------------------------------------------- enumeration
    def enumerate_packages(
        self,
        max_size: Optional[int] = None,
        item_indices: Optional[Sequence[int]] = None,
    ) -> Iterator[Package]:
        """Enumerate every package of size 1..max_size over the given items.

        Intended for small instances (worked examples, correctness oracles);
        the number of packages is exponential in the item count.
        """
        limit = max_size if max_size is not None else self.max_package_size
        limit = min(limit, self.max_package_size)
        pool = (
            list(item_indices)
            if item_indices is not None
            else list(range(self.catalog.num_items))
        )
        for size in range(1, limit + 1):
            for combo in itertools.combinations(pool, size):
                yield Package(tuple(combo))

    def random_package(
        self,
        rng: RngLike = None,
        size: Optional[int] = None,
        item_indices: Optional[Sequence[int]] = None,
    ) -> Package:
        """Draw a uniformly random package of the given (or random) size."""
        generator = ensure_rng(rng)
        pool = (
            np.asarray(item_indices, dtype=int)
            if item_indices is not None
            else np.arange(self.catalog.num_items)
        )
        if pool.size == 0:
            raise ValueError("cannot draw a package from an empty item pool")
        max_size = min(self.max_package_size, pool.size)
        chosen_size = (
            int(size) if size is not None else int(generator.integers(1, max_size + 1))
        )
        if not 1 <= chosen_size <= max_size:
            raise ValueError(
                f"size must be between 1 and {max_size}, got {chosen_size}"
            )
        picked = generator.choice(pool, size=chosen_size, replace=False)
        return Package.of(picked.tolist())

    def random_packages(
        self,
        count: int,
        rng: RngLike = None,
        size: Optional[int] = None,
        distinct: bool = True,
        max_attempts_factor: int = 20,
    ) -> List[Package]:
        """Draw ``count`` random packages, optionally all distinct."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        generator = ensure_rng(rng)
        packages: List[Package] = []
        seen = set()
        attempts = 0
        max_attempts = max(count * max_attempts_factor, 10)
        while len(packages) < count and attempts < max_attempts:
            attempts += 1
            candidate = self.random_package(generator, size=size)
            if distinct and candidate.items in seen:
                continue
            seen.add(candidate.items)
            packages.append(candidate)
        if len(packages) < count:
            raise RuntimeError(
                f"could only generate {len(packages)} distinct packages out of "
                f"{count} requested; the package space may be too small"
            )
        return packages
