"""Constrained sampling over the weight-vector distribution ``Pw`` (§3).

The posterior over weight vectors given click feedback has no closed form, so
the system keeps the Gaussian-mixture prior plus the feedback constraints and
draws *constrained samples* instead.  Three samplers are provided, mirroring
the paper: rejection sampling (§3.1), importance sampling with a grid-based
approximate polytope centre (§3.2.1), and Metropolis–Hastings MCMC (§3.2.2).
Sample pools can be maintained incrementally against new feedback (§3.4).
"""

from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.importance import ImportanceSampler, ImportanceSamplingIntractableError
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.sampling.batch import BatchRejectionSampler
from repro.sampling.fillspec import (
    FillContext,
    FillSpec,
    PriorSpec,
    build_sampler,
    derive_fill_seed,
    execute_fill,
    register_fill_context,
    register_sampler_builder,
)
from repro.sampling.ens import (
    effective_number_of_samples,
    ens_from_weights,
    chi_square_distance,
)
from repro.sampling.constraints import ConstraintChecker
from repro.sampling.reweight import (
    downweight_violators,
    ess_deficit,
    importance_reweight,
    pool_effective_sample_size,
    residual_resample,
    violation_weight_factors,
)
from repro.sampling.maintenance import (
    HybridMaintenance,
    MaintenanceResult,
    NaiveMaintenance,
    SampleMaintainer,
    ThresholdMaintenance,
    partial_refill_split,
)

__all__ = [
    "GaussianMixture",
    "ConstraintSet",
    "SamplePool",
    "Sampler",
    "RejectionSampler",
    "ImportanceSampler",
    "ImportanceSamplingIntractableError",
    "MetropolisHastingsSampler",
    "BatchRejectionSampler",
    "FillContext",
    "FillSpec",
    "PriorSpec",
    "build_sampler",
    "derive_fill_seed",
    "execute_fill",
    "register_fill_context",
    "register_sampler_builder",
    "effective_number_of_samples",
    "ens_from_weights",
    "chi_square_distance",
    "ConstraintChecker",
    "downweight_violators",
    "ess_deficit",
    "importance_reweight",
    "pool_effective_sample_size",
    "residual_resample",
    "violation_weight_factors",
    "partial_refill_split",
    "SampleMaintainer",
    "NaiveMaintenance",
    "ThresholdMaintenance",
    "HybridMaintenance",
    "MaintenanceResult",
]
