"""Package-schema predicates (§7 extension).

Users may constrain the *schema* of a desirable package — e.g. "when buying a
set of books, at least two should be novels".  The paper handles such
predicates inside the top-package generation: a candidate package is only
retained if it satisfies every specified predicate.  Items in this library are
numeric feature vectors, so predicates are expressed over the set of items
matching a caller-supplied condition (an explicit item set, or a boolean
condition over an item's feature vector).
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Optional, Sequence, Set

import numpy as np

from repro.core.items import ItemCatalog
from repro.core.packages import Package


class PackagePredicate(abc.ABC):
    """A boolean condition a package must satisfy to be recommendable."""

    @abc.abstractmethod
    def satisfied_by(self, package: Package, catalog: ItemCatalog) -> bool:
        """Whether ``package`` (over ``catalog``) satisfies the predicate."""


class CallablePredicate(PackagePredicate):
    """Wrap an arbitrary ``(package, catalog) -> bool`` callable as a predicate."""

    def __init__(self, func: Callable[[Package, ItemCatalog], bool], name: str = "callable") -> None:
        self.func = func
        self.name = name

    def satisfied_by(self, package: Package, catalog: ItemCatalog) -> bool:
        return bool(self.func(package, catalog))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CallablePredicate({self.name})"


class _CountingPredicate(PackagePredicate):
    """Shared machinery for predicates counting matching items in a package."""

    def __init__(
        self,
        matching_items: Optional[Iterable[int]] = None,
        item_condition: Optional[Callable[[np.ndarray], bool]] = None,
    ) -> None:
        if (matching_items is None) == (item_condition is None):
            raise ValueError(
                "exactly one of matching_items or item_condition must be given"
            )
        self._matching: Optional[Set[int]] = (
            set(int(i) for i in matching_items) if matching_items is not None else None
        )
        self._condition = item_condition

    def _count_matching(self, package: Package, catalog: ItemCatalog) -> int:
        if self._matching is not None:
            return sum(1 for item in package if item in self._matching)
        count = 0
        for item in package:
            if bool(self._condition(catalog.feature_values(item))):
                count += 1
        return count


class MinCountPredicate(_CountingPredicate):
    """At least ``minimum`` items of the package must match the condition.

    Examples
    --------
    "at least two of the books must be novels" →
    ``MinCountPredicate(minimum=2, matching_items=novel_item_indices)``.
    """

    def __init__(
        self,
        minimum: int,
        matching_items: Optional[Iterable[int]] = None,
        item_condition: Optional[Callable[[np.ndarray], bool]] = None,
    ) -> None:
        super().__init__(matching_items, item_condition)
        if minimum < 0:
            raise ValueError(f"minimum must be >= 0, got {minimum}")
        self.minimum = minimum

    def satisfied_by(self, package: Package, catalog: ItemCatalog) -> bool:
        return self._count_matching(package, catalog) >= self.minimum


class MaxCountPredicate(_CountingPredicate):
    """At most ``maximum`` items of the package may match the condition."""

    def __init__(
        self,
        maximum: int,
        matching_items: Optional[Iterable[int]] = None,
        item_condition: Optional[Callable[[np.ndarray], bool]] = None,
    ) -> None:
        super().__init__(matching_items, item_condition)
        if maximum < 0:
            raise ValueError(f"maximum must be >= 0, got {maximum}")
        self.maximum = maximum

    def satisfied_by(self, package: Package, catalog: ItemCatalog) -> bool:
        return self._count_matching(package, catalog) <= self.maximum


class SizePredicate(PackagePredicate):
    """The package size must lie within ``[min_size, max_size]``."""

    def __init__(self, min_size: int = 1, max_size: Optional[int] = None) -> None:
        if min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {min_size}")
        if max_size is not None and max_size < min_size:
            raise ValueError(
                f"max_size ({max_size}) must be >= min_size ({min_size})"
            )
        self.min_size = min_size
        self.max_size = max_size

    def satisfied_by(self, package: Package, catalog: ItemCatalog) -> bool:
        if package.size < self.min_size:
            return False
        if self.max_size is not None and package.size > self.max_size:
            return False
        return True


class PredicateSet:
    """A conjunction of package predicates (all must hold)."""

    def __init__(self, predicates: Sequence[PackagePredicate] = ()) -> None:
        self.predicates = list(predicates)

    def add(self, predicate: PackagePredicate) -> "PredicateSet":
        """Add a predicate (returns self for chaining)."""
        self.predicates.append(predicate)
        return self

    def satisfied_by(self, package: Package, catalog: ItemCatalog) -> bool:
        """Whether the package satisfies every predicate in the set."""
        return all(p.satisfied_by(package, catalog) for p in self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self):
        return iter(self.predicates)
