"""Exact reproduction of the paper's worked examples (Figures 1 and 2, Examples 1-3).

These tests pin the library to the numbers printed in the paper, so any
regression in normalisation, aggregation or ranking semantics is caught
immediately.
"""

import numpy as np
import pytest

from repro.core.packages import Package
from repro.core.ranking import (
    rank_packages_exp,
    rank_packages_mpo,
    rank_packages_tkp,
)
from repro.sampling.base import SamplePool
from repro.topk.package_search import TopKPackageSearcher

#: The seven packages of Figure 1(b); p7 = {t1,t2,t3} exceeds φ = 2 and is
#: excluded from the package space of Example 1.
PACKAGES = {
    "p1": (0,),
    "p2": (1,),
    "p3": (2,),
    "p4": (0, 1),
    "p5": (1, 2),
    "p6": (0, 2),
}

#: Figure 2(a): the three candidate weight vectors and their probabilities.
WEIGHT_VECTORS = np.array([[0.5, 0.1], [0.1, 0.5], [0.1, 0.1]])
WEIGHT_PROBABILITIES = np.array([0.3, 0.4, 0.3])

#: Figure 2(c): utility of each package under each weight vector.
EXPECTED_UTILITIES = {
    "p1": [0.35, 0.31, 0.11],
    "p2": [0.30, 0.54, 0.14],
    "p3": [0.20, 0.52, 0.12],
    "p4": [0.575, 0.475, 0.175],
    "p5": [0.40, 0.56, 0.16],
    "p6": [0.475, 0.455, 0.155],
}


class TestFigure1And2:
    def test_normalisation_of_example1(self, paper_example_evaluator):
        """Example 1: p1's normalised feature vector is (0.6, 0.5)."""
        assert np.allclose(
            paper_example_evaluator.vector(Package.of(PACKAGES["p1"])), [0.6, 0.5]
        )

    @pytest.mark.parametrize("name", list(PACKAGES))
    def test_figure2c_utilities(self, paper_example_evaluator, name):
        package = Package.of(PACKAGES[name])
        for w, expected in zip(WEIGHT_VECTORS, EXPECTED_UTILITIES[name]):
            assert paper_example_evaluator.utility(package, w) == pytest.approx(
                expected, abs=1e-9
            )

    def test_example1_expected_utility_of_p1(self, paper_example_evaluator):
        """Example 1: E[U(p1)] = 0.262 under the Figure 2(a) distribution."""
        vectors = paper_example_evaluator.vectors(
            [Package.of(items) for items in PACKAGES.values()]
        )
        pool = SamplePool(WEIGHT_VECTORS, WEIGHT_PROBABILITIES)
        ranked = dict(rank_packages_exp(vectors, pool, len(PACKAGES)))
        assert ranked[0] == pytest.approx(0.262, abs=1e-9)

    def test_example1_exp_top2_is_p4_p5(self, paper_example_evaluator):
        vectors = paper_example_evaluator.vectors(
            [Package.of(items) for items in PACKAGES.values()]
        )
        pool = SamplePool(WEIGHT_VECTORS, WEIGHT_PROBABILITIES)
        top2 = [index for index, _ in rank_packages_exp(vectors, pool, 2)]
        names = list(PACKAGES)
        assert [names[i] for i in top2] == ["p4", "p5"]

    def test_example2_tkp_top2_is_p5_p4(self, paper_example_evaluator):
        vectors = paper_example_evaluator.vectors(
            [Package.of(items) for items in PACKAGES.values()]
        )
        pool = SamplePool(WEIGHT_VECTORS, WEIGHT_PROBABILITIES)
        ranked = rank_packages_tkp(vectors, pool, 2, sigma=2)
        names = list(PACKAGES)
        assert [names[i] for i, _ in ranked] == ["p5", "p4"]
        assert ranked[0][1] == pytest.approx(0.7)
        assert ranked[1][1] == pytest.approx(0.6)

    def test_example3_mpo_best_list_is_p5_p2(self, paper_example_evaluator):
        vectors = paper_example_evaluator.vectors(
            [Package.of(items) for items in PACKAGES.values()]
        )
        pool = SamplePool(WEIGHT_VECTORS, WEIGHT_PROBABILITIES)
        best_list, probability = rank_packages_mpo(vectors, pool, 2)
        names = list(PACKAGES)
        assert [names[i] for i in best_list] == ["p5", "p2"]
        assert probability == pytest.approx(0.4)

    def test_figure2d_per_weight_top2_lists(self, paper_example_evaluator):
        """Figure 2(d): the top-2 package list under each candidate weight vector."""
        searcher = TopKPackageSearcher(paper_example_evaluator)
        names = {items: name for name, items in PACKAGES.items()}
        expected_lists = {0: ["p4", "p6"], 1: ["p5", "p2"], 2: ["p4", "p5"]}
        for index, weights in enumerate(WEIGHT_VECTORS):
            result = searcher.search(weights, 2)
            observed = [names[p.items] for p in result.packages]
            assert observed == expected_lists[index]

    def test_summary_top2_differs_across_semantics(self, paper_example_evaluator):
        """The paper's summary: EXP, TKP, MPO give p4p5, p5p4 and p5p2 respectively."""
        vectors = paper_example_evaluator.vectors(
            [Package.of(items) for items in PACKAGES.values()]
        )
        pool = SamplePool(WEIGHT_VECTORS, WEIGHT_PROBABILITIES)
        names = list(PACKAGES)
        exp_list = [names[i] for i, _ in rank_packages_exp(vectors, pool, 2)]
        tkp_list = [names[i] for i, _ in rank_packages_tkp(vectors, pool, 2, sigma=2)]
        mpo_list = [names[i] for i in rank_packages_mpo(vectors, pool, 2)[0]]
        assert exp_list == ["p4", "p5"]
        assert tkp_list == ["p5", "p4"]
        assert mpo_list == ["p5", "p2"]
