"""Rejection sampling from the constrained posterior (§3.1).

Lemma 1 of the paper shows that conditioning ``Pw`` on feedback only zeroes
out the density of invalid weight vectors and preserves the relative density
of valid ones.  Rejection sampling therefore samples directly from the prior
and discards any draw that violates a feedback constraint.  It is simple and
unbiased but wasteful once the feedback set shrinks the valid region — the
behaviour the feedback-aware samplers (importance, MCMC) improve on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.utils.rng import RngLike


class RejectionSamplingError(RuntimeError):
    """Raised when the acceptance rate is too low to fill the requested pool."""


class RejectionSampler(Sampler):
    """Sample from the prior and reject draws violating any feedback constraint.

    Parameters
    ----------
    prior, rng, noise_probability:
        See :class:`~repro.sampling.base.Sampler`.
    batch_size:
        Number of prior draws generated per vectorised batch.
    max_attempts:
        Upper bound on the total number of prior draws before giving up; a
        safety valve for near-empty valid regions.
    """

    short_name = "RS"

    def __init__(
        self,
        prior: GaussianMixture,
        rng: RngLike = None,
        noise_probability: Optional[float] = None,
        batch_size: int = 1024,
        max_attempts: int = 2_000_000,
    ) -> None:
        super().__init__(prior, rng, noise_probability)
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be > 0, got {max_attempts}")
        self.batch_size = batch_size
        self.max_attempts = max_attempts

    def sample(self, count: int, constraints: ConstraintSet) -> SamplePool:
        """Draw ``count`` valid samples; raises if the region is too small.

        The returned pool's ``stats`` include the number of prior draws
        (``attempts``), the number rejected (``rejected``) and the empirical
        acceptance rate, which the experiments use to compare samplers.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if constraints.num_features != self.num_features:
            raise ValueError(
                f"constraints have {constraints.num_features} features, "
                f"sampler expects {self.num_features}"
            )
        accepted = []
        attempts = 0
        while sum(a.shape[0] for a in accepted) < count:
            if attempts >= self.max_attempts:
                raise RejectionSamplingError(
                    f"rejection sampling exhausted {attempts} attempts while "
                    f"collecting {sum(a.shape[0] for a in accepted)}/{count} valid "
                    f"samples; the valid region is likely too small — use the "
                    f"importance or MCMC sampler instead"
                )
            batch = min(self.batch_size, self.max_attempts - attempts)
            draws = self.prior.sample(batch, rng=self.rng)
            attempts += batch
            if self.noise_probability is None:
                mask = constraints.valid_mask(draws)
            else:
                violations = constraints.violation_counts(draws)
                mask = np.array(
                    [not self._rejects_under_noise(int(x)) for x in violations]
                )
            accepted.append(draws[mask])
        samples = np.vstack(accepted)[:count]
        num_generated = sum(a.shape[0] for a in accepted)
        stats = {
            "sampler": self.short_name,
            "attempts": attempts,
            "accepted": int(num_generated),
            "rejected": int(attempts - num_generated),
            "acceptance_rate": (num_generated / attempts) if attempts else 1.0,
        }
        return SamplePool.unweighted(samples, stats)

    def sample_one_valid(self, constraints: ConstraintSet) -> np.ndarray:
        """Draw a single valid weight vector (used to seed the MCMC chain)."""
        pool = self.sample(1, constraints)
        return pool.samples[0]
