"""Tests for the Gaussian mixture prior over weight vectors."""

import numpy as np
import pytest
from scipy.stats import multivariate_normal

from repro.sampling.gaussian_mixture import GaussianMixture


class TestConstruction:
    def test_scalar_covariance(self):
        mixture = GaussianMixture(np.zeros((2, 3)), 0.5)
        assert mixture.num_components == 2
        assert mixture.dimension == 3
        assert np.allclose(mixture.covariances[0], np.eye(3) * 0.5)

    def test_diagonal_covariance(self):
        mixture = GaussianMixture(np.zeros((2, 2)), np.array([[0.1, 0.2], [0.3, 0.4]]))
        assert np.allclose(mixture.covariances[1], np.diag([0.3, 0.4]))

    def test_full_covariance(self):
        covariances = np.stack([np.eye(2) * 0.2, np.eye(2) * 0.4])
        mixture = GaussianMixture(np.zeros((2, 2)), covariances)
        assert np.allclose(mixture.covariances, covariances)

    def test_weights_normalised(self):
        mixture = GaussianMixture(np.zeros((2, 2)), 0.2, weights=np.array([2.0, 6.0]))
        assert np.allclose(mixture.weights, [0.25, 0.75])

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            GaussianMixture(np.zeros((2, 2)), 0.2, weights=np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            GaussianMixture(np.zeros((2, 2)), 0.2, weights=np.array([0.0, 0.0]))

    def test_invalid_covariance_rejected(self):
        with pytest.raises(ValueError):
            GaussianMixture(np.zeros((2, 2)), -1.0)
        with pytest.raises(ValueError):
            GaussianMixture(np.zeros((2, 2)), np.ones((3, 2)))

    def test_default_prior_shapes(self):
        prior = GaussianMixture.default_prior(5, num_components=3, rng=0)
        assert prior.num_components == 3
        assert prior.dimension == 5
        # First component always centred at the origin.
        assert np.allclose(prior.means[0], 0.0)

    def test_default_prior_invalid_arguments(self):
        with pytest.raises(ValueError):
            GaussianMixture.default_prior(0)
        with pytest.raises(ValueError):
            GaussianMixture.default_prior(2, num_components=0)
        with pytest.raises(ValueError):
            GaussianMixture.default_prior(2, spread=0.0)

    def test_isotropic_constructor(self):
        mixture = GaussianMixture.isotropic(np.array([0.1, 0.2]), 0.3)
        assert mixture.num_components == 1
        assert np.allclose(mixture.means[0], [0.1, 0.2])


class TestDensity:
    def test_single_component_matches_scipy(self):
        mixture = GaussianMixture(np.zeros((1, 2)), 0.25)
        reference = multivariate_normal(mean=[0, 0], cov=np.eye(2) * 0.25)
        point = np.array([0.3, -0.4])
        assert mixture.pdf(point) == pytest.approx(reference.pdf(point))
        assert mixture.logpdf(point) == pytest.approx(reference.logpdf(point))

    def test_mixture_density_is_weighted_sum(self):
        means = np.array([[0.0, 0.0], [0.5, 0.5]])
        mixture = GaussianMixture(means, 0.1, weights=np.array([0.3, 0.7]))
        point = np.array([0.2, 0.2])
        expected = 0.3 * multivariate_normal(means[0], np.eye(2) * 0.1).pdf(point) + \
            0.7 * multivariate_normal(means[1], np.eye(2) * 0.1).pdf(point)
        assert mixture.pdf(point) == pytest.approx(expected)

    def test_pdf_batched_shape(self):
        mixture = GaussianMixture.default_prior(3, rng=0)
        points = np.zeros((5, 3))
        assert mixture.pdf(points).shape == (5,)
        assert mixture.logpdf(points).shape == (5,)

    def test_logpdf_consistent_with_pdf(self):
        mixture = GaussianMixture.default_prior(2, num_components=2, rng=0)
        points = np.random.default_rng(0).normal(size=(20, 2))
        assert np.allclose(np.exp(mixture.logpdf(points)), mixture.pdf(points))

    def test_responsibilities_sum_to_one(self):
        mixture = GaussianMixture.default_prior(2, num_components=3, rng=0)
        points = np.random.default_rng(1).normal(size=(10, 2))
        responsibilities = mixture.responsibilities(points)
        assert responsibilities.shape == (10, 3)
        assert np.allclose(responsibilities.sum(axis=1), 1.0)


class TestSampling:
    def test_sample_shape(self):
        mixture = GaussianMixture.default_prior(4, rng=0)
        assert mixture.sample(100, rng=0).shape == (100, 4)
        assert mixture.sample(0, rng=0).shape == (0, 4)

    def test_sample_negative_rejected(self):
        with pytest.raises(ValueError):
            GaussianMixture.default_prior(2).sample(-1)

    def test_sample_mean_approximates_mixture_mean(self):
        means = np.array([[0.4, 0.4], [-0.4, -0.4]])
        mixture = GaussianMixture(means, 0.01, weights=np.array([0.5, 0.5]))
        samples = mixture.sample(20_000, rng=0)
        assert np.allclose(samples.mean(axis=0), [0.0, 0.0], atol=0.02)

    def test_sample_reproducible(self):
        mixture = GaussianMixture.default_prior(3, rng=0)
        assert np.array_equal(mixture.sample(10, rng=5), mixture.sample(10, rng=5))
