"""Closed-loop traffic generation against a :class:`RecommendationEngine`.

Where :class:`~repro.simulation.session.ElicitationSession` drives one
recommender with one simulated user, :class:`TrafficSimulator` drives an
*engine* with a whole population: it opens many sessions, serves them in
rounds, feeds every user's click back, and measures throughput and per-round
latency.  Two canonical workloads matter for the serving layer:

* **identical-prefix** — every user shares the same hidden utility and every
  session the same private seed, so all feedback prefixes coincide; this is
  the best case for the shared sample-pool and top-k caches (think: a burst
  of anonymous cold-start users being onboarded with the same script);
* **heterogeneous** — independent utilities and seeds per user, the worst
  case where sharing only helps on the empty-feedback first round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.packages import PackageEvaluator
from repro.core.utility import sample_random_utility
from repro.service.engine import RecommendationEngine
from repro.simulation.user import SimulatedUser
from repro.utils.rng import ensure_rng


@dataclass
class WorkloadSpec:
    """Shape of a simulated traffic run.

    Attributes
    ----------
    num_sessions:
        Number of concurrent sessions opened.
    rounds:
        Recommendation/feedback rounds every session goes through.
    identical_prefix:
        Same hidden utility and session seed for everyone (cache best case)
        versus fully independent users (cache worst case).
    user_seed:
        Seed for the population's hidden utilities.
    session_seed:
        Private seed shared by every session in identical-prefix mode;
        ignored (per-session derived seeds) otherwise.
    batched:
        Serve rounds via :meth:`RecommendationEngine.recommend_many` (pool
        filling batched across sessions) instead of per-session calls.
    """

    num_sessions: int = 50
    rounds: int = 3
    identical_prefix: bool = True
    user_seed: int = 0
    session_seed: int = 0
    batched: bool = True

    def __post_init__(self) -> None:
        if self.num_sessions <= 0:
            raise ValueError(f"num_sessions must be > 0, got {self.num_sessions}")
        if self.rounds <= 0:
            raise ValueError(f"rounds must be > 0, got {self.rounds}")


@dataclass
class LoadReport:
    """Measured outcome of one traffic run."""

    num_sessions: int
    rounds: int
    rounds_served: int
    feedback_events: int
    total_seconds: float
    sessions_per_sec: float
    rounds_per_sec: float
    p50_round_latency_ms: float
    p95_round_latency_ms: float
    engine_stats: dict = field(default_factory=dict)

    def format(self, label: str = "workload") -> str:
        """A compact human-readable summary block."""
        pool = self.engine_stats.get("pool_cache", {})
        topk = self.engine_stats.get("topk_cache", {})
        lines = [
            f"[{label}]",
            f"  sessions={self.num_sessions} rounds={self.rounds} "
            f"rounds_served={self.rounds_served} feedback={self.feedback_events}",
            f"  total={self.total_seconds:.3f}s "
            f"sessions/sec={self.sessions_per_sec:.2f} "
            f"rounds/sec={self.rounds_per_sec:.2f}",
            f"  round latency p50={self.p50_round_latency_ms:.2f}ms "
            f"p95={self.p95_round_latency_ms:.2f}ms",
            f"  pool cache: hits={pool.get('hits', 0)} misses={pool.get('misses', 0)} "
            f"hit_rate={pool.get('hit_rate', 0.0):.2f} "
            f"samples_saved={pool.get('samples_saved', 0)}",
            f"  topk cache: hits={topk.get('hits', 0)} misses={topk.get('misses', 0)} "
            f"hit_rate={topk.get('hit_rate', 0.0):.2f}",
            f"  pools sampled={self.engine_stats.get('pools_sampled', 0)} "
            f"maintained={self.engine_stats.get('pools_maintained', 0)}",
        ]
        return "\n".join(lines)


class TrafficSimulator:
    """Drive an engine with a population of simulated users.

    Parameters
    ----------
    engine:
        The serving engine under load.
    spec:
        Workload shape (sessions, rounds, homogeneity, batching).
    """

    def __init__(self, engine: RecommendationEngine, spec: WorkloadSpec) -> None:
        self.engine = engine
        self.spec = spec
        self.evaluator = PackageEvaluator(
            engine.catalog,
            engine.profile,
            engine.config.elicitation.max_package_size,
        )

    def _build_users(self) -> List[SimulatedUser]:
        spec = self.spec
        rng = ensure_rng(spec.user_seed)
        if spec.identical_prefix:
            utility = sample_random_utility(self.evaluator.num_features, rng)
            return [
                SimulatedUser(utility, self.evaluator, rng=spec.user_seed)
                for _ in range(spec.num_sessions)
            ]
        return [
            SimulatedUser.random(self.evaluator, rng=child)
            for child in np.random.default_rng(spec.user_seed).spawn(spec.num_sessions)
        ]

    def run(self) -> LoadReport:
        """Execute the workload and measure throughput and latency."""
        spec = self.spec
        engine = self.engine
        users = self._build_users()
        start = time.perf_counter()
        session_ids = []
        for index in range(spec.num_sessions):
            seed = (
                spec.session_seed
                if spec.identical_prefix
                else spec.session_seed + 7919 * (index + 1)
            )
            session_ids.append(engine.create_session(seed=seed))

        latencies: List[float] = []
        feedback_events = 0
        rounds_served = 0
        for _round_index in range(spec.rounds):
            if spec.batched:
                tick = time.perf_counter()
                rounds = engine.recommend_many(session_ids)
                elapsed = time.perf_counter() - tick
                # recommend_many amortises pool filling across sessions; the
                # honest per-session figure is the amortised share.
                latencies.extend([elapsed / len(session_ids)] * len(session_ids))
            else:
                rounds = []
                for session_id in session_ids:
                    tick = time.perf_counter()
                    rounds.append(engine.recommend(session_id))
                    latencies.append(time.perf_counter() - tick)
            rounds_served += len(rounds)
            for session_id, user, round_ in zip(session_ids, users, rounds):
                clicked = user.click(round_.presented)
                engine.feedback(session_id, clicked)
                feedback_events += 1
        total_seconds = time.perf_counter() - start

        latency_array = np.asarray(latencies)
        return LoadReport(
            num_sessions=spec.num_sessions,
            rounds=spec.rounds,
            rounds_served=rounds_served,
            feedback_events=feedback_events,
            total_seconds=total_seconds,
            sessions_per_sec=spec.num_sessions / total_seconds,
            rounds_per_sec=rounds_served / total_seconds if total_seconds else 0.0,
            p50_round_latency_ms=float(np.percentile(latency_array, 50) * 1e3),
            p95_round_latency_ms=float(np.percentile(latency_array, 95) * 1e3),
            engine_stats=engine.stats().as_dict(),
        )
