"""Aggregate feature profiles (Definition 1 of the paper).

A profile ``V = (A1, ..., Am)`` assigns one aggregation function to each item
feature; the feature vector of a package is obtained by applying ``Ai`` to the
(non-null) values of feature ``fi`` over the items in the package.  Supported
aggregations are ``min``, ``max``, ``sum``, ``avg`` and ``null`` (ignore the
feature).

The profile also knows how to compute, for a given item catalog and maximum
package size φ, the *maximum achievable aggregate value* per feature, which the
paper uses to normalise package feature values into ``[0, 1]`` (see Example 1:
for a ``sum`` feature the maximum is the sum of the φ largest item values, for
``avg``/``max``/``min`` it is the largest single item value).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.items import ItemCatalog


class Aggregation(enum.Enum):
    """Aggregation functions allowed in an aggregate feature profile."""

    MIN = "min"
    MAX = "max"
    SUM = "sum"
    AVG = "avg"
    NULL = "null"

    @classmethod
    def parse(cls, value) -> "Aggregation":
        """Coerce a string or Aggregation into an Aggregation member."""
        if isinstance(value, Aggregation):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                raise ValueError(
                    f"unknown aggregation {value!r}; expected one of "
                    f"{[m.value for m in cls]}"
                ) from None
        raise TypeError(f"cannot interpret {value!r} as an Aggregation")


class AggregateProfile:
    """An aggregate feature profile ``V = (A1, ..., Am)``.

    Parameters
    ----------
    aggregations:
        One aggregation (or its string name) per feature.
    feature_names:
        Optional names, used only for display.
    """

    def __init__(
        self,
        aggregations: Sequence,
        feature_names: Optional[Sequence[str]] = None,
    ) -> None:
        if len(aggregations) == 0:
            raise ValueError("a profile requires at least one feature")
        self.aggregations: Tuple[Aggregation, ...] = tuple(
            Aggregation.parse(a) for a in aggregations
        )
        if all(a is Aggregation.NULL for a in self.aggregations):
            raise ValueError("a profile cannot ignore every feature")
        if feature_names is not None and len(feature_names) != len(self.aggregations):
            raise ValueError(
                f"expected {len(self.aggregations)} feature names, "
                f"got {len(feature_names)}"
            )
        self.feature_names = list(feature_names) if feature_names is not None else None

    # ------------------------------------------------------------------ basics
    @property
    def num_features(self) -> int:
        """Number of features covered by the profile."""
        return len(self.aggregations)

    def active_features(self) -> List[int]:
        """Indices of features whose aggregation is not ``null``."""
        return [
            i for i, agg in enumerate(self.aggregations) if agg is not Aggregation.NULL
        ]

    def __len__(self) -> int:
        return self.num_features

    def __getitem__(self, index: int) -> Aggregation:
        return self.aggregations[index]

    def __iter__(self):
        return iter(self.aggregations)

    def __eq__(self, other) -> bool:
        if not isinstance(other, AggregateProfile):
            return NotImplemented
        return self.aggregations == other.aggregations

    def __hash__(self) -> int:
        return hash(self.aggregations)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = [agg.value for agg in self.aggregations]
        return f"AggregateProfile({parts})"

    # ------------------------------------------------------------ constructors
    @classmethod
    def uniform(cls, num_features: int, aggregation="avg") -> "AggregateProfile":
        """A profile applying the same aggregation to every feature."""
        return cls([aggregation] * num_features)

    @classmethod
    def from_mapping(
        cls, num_features: int, mapping: dict, default="null"
    ) -> "AggregateProfile":
        """Build a profile from ``{feature_index: aggregation}`` overrides."""
        aggs = [default] * num_features
        for index, aggregation in mapping.items():
            if not 0 <= index < num_features:
                raise ValueError(
                    f"feature index {index} out of range for {num_features} features"
                )
            aggs[index] = aggregation
        return cls(aggs)

    # -------------------------------------------------------------- evaluation
    def aggregate(self, values: np.ndarray, null_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Aggregate the ``(size, m)`` item-value block into a package vector.

        Null (NaN or masked) values are excluded from each feature's
        aggregation, as in Definition 1; a feature with no non-null value in
        the package aggregates to 0.  Features with a ``null`` aggregation
        always produce 0 so they drop out of any linear utility.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != self.num_features:
            raise ValueError(
                f"values must have shape (size, {self.num_features}), "
                f"got {values.shape}"
            )
        if null_mask is None:
            null_mask = np.isnan(values)
        result = np.zeros(self.num_features)
        for j, aggregation in enumerate(self.aggregations):
            if aggregation is Aggregation.NULL:
                continue
            column = values[:, j]
            valid = column[~null_mask[:, j]]
            if valid.size == 0:
                result[j] = 0.0
                continue
            if aggregation is Aggregation.SUM:
                result[j] = valid.sum()
            elif aggregation is Aggregation.AVG:
                # Definition 1: avg_i(p) = sum of non-null values / |p|.
                result[j] = valid.sum() / values.shape[0]
            elif aggregation is Aggregation.MIN:
                result[j] = valid.min()
            elif aggregation is Aggregation.MAX:
                result[j] = valid.max()
        return result

    def max_aggregate_values(
        self, catalog: ItemCatalog, max_package_size: int
    ) -> np.ndarray:
        """Maximum achievable aggregate value per feature (used for normalising).

        For ``sum`` this is the sum of the φ largest item values of the
        feature; for ``min``, ``max`` and ``avg`` it is the single largest item
        value (achieved by a singleton package).  Features aggregated with
        ``null`` get a normaliser of 1 so division is a no-op.
        """
        if max_package_size <= 0:
            raise ValueError(
                f"max_package_size must be > 0, got {max_package_size}"
            )
        normalisers = np.ones(self.num_features)
        maxs = catalog.feature_max()
        for j, aggregation in enumerate(self.aggregations):
            if aggregation is Aggregation.NULL:
                continue
            if aggregation is Aggregation.SUM:
                # Sum of the φ largest values, read through the stored
                # descending order — O(φ) row reads on an mmap-backed
                # catalog instead of sorting the whole column.
                value = float(
                    catalog.feature_top_values(j, max_package_size).sum()
                )
            else:
                value = float(maxs[j])
            normalisers[j] = value if value > 0 else 1.0
        return normalisers

    def describe(self) -> str:
        """Human-readable one-line description of the profile."""
        names = self.feature_names or [
            f"f{i + 1}" for i in range(self.num_features)
        ]
        parts = [
            f"{agg.value}({name})"
            for name, agg in zip(names, self.aggregations)
            if agg is not Aggregation.NULL
        ]
        return ", ".join(parts)
