"""Figure 8: elicitation effectiveness — clicks until the top-k list stabilises.

The paper generates 100 random ground-truth utility functions over the NBA
dataset, runs the full elicitation loop (5 recommended + 5 random packages per
round, MCMC sampling, EXP semantics), assumes the user always clicks the
presented package maximising their true utility, and reports the number of
clicks needed before the system's top-k list becomes stable, as the number of
features varies from 2 to 10.  Only a handful of clicks are needed, growing
mildly with dimensionality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.elicitation import ElicitationConfig, PackageRecommender
from repro.core.items import ItemCatalog
from repro.core.noise import NoiseModel
from repro.data.nba import generate_nba_dataset
from repro.experiments.harness import default_profile
from repro.simulation.session import ElicitationSession
from repro.simulation.user import SimulatedUser
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass
class ElicitationPoint:
    """Aggregated convergence statistics for one feature count.

    Attributes
    ----------
    num_features:
        Dimensionality of the utility function being elicited.
    mean_clicks / median_clicks / max_clicks:
        Statistics of the number of clicks until the top-k list stabilised,
        over the simulated users.
    convergence_rate:
        Fraction of users whose sessions stabilised within the round budget.
    mean_regret:
        Mean final regret against the best packages ever presented (0 = the
        system converged on what the user actually wanted).
    """

    num_features: int
    mean_clicks: float
    median_clicks: float
    max_clicks: float
    convergence_rate: float
    mean_regret: float


def run_elicitation_effectiveness(
    feature_counts: Sequence[int] = (2, 4, 6, 8, 10),
    num_users: int = 20,
    num_players: int = 400,
    k: int = 5,
    num_random: int = 5,
    num_samples: int = 120,
    max_package_size: int = 5,
    max_rounds: int = 15,
    noise_psi: Optional[float] = None,
    search_sample_budget: Optional[int] = 15,
    search_items_cap: Optional[int] = 120,
    seed: int = 0,
) -> List[ElicitationPoint]:
    """Reproduce Figure 8 on the (synthetic) NBA dataset.

    The paper uses 100 ground-truth utility functions over the full 3705-player
    table; the defaults here are scaled down so the experiment runs quickly,
    and can be raised (``num_users=100``, ``num_players=3705``) for a
    full-scale run.
    """
    if num_users <= 0:
        raise ValueError(f"num_users must be > 0, got {num_users}")
    points: List[ElicitationPoint] = []
    master_rng = ensure_rng(seed)
    for num_features in feature_counts:
        data = generate_nba_dataset(num_players, num_features, rng=master_rng)
        catalog = ItemCatalog(data)
        profile = default_profile(num_features)
        user_rngs = spawn_rngs(master_rng, num_users)
        clicks: List[int] = []
        converged: List[bool] = []
        regrets: List[float] = []
        for user_index in range(num_users):
            config = ElicitationConfig(
                k=k,
                num_random=num_random,
                max_package_size=max_package_size,
                num_samples=num_samples,
                sampler="mcmc",
                semantics="exp",
                noise_psi=noise_psi,
                search_sample_budget=search_sample_budget,
                search_items_cap=search_items_cap,
                search_beam_width=500,
                seed=int(user_rngs[user_index].integers(0, 2**31 - 1)),
            )
            recommender = PackageRecommender(catalog, profile, config)
            noise = NoiseModel(noise_psi) if noise_psi is not None else None
            user = SimulatedUser.random(
                recommender.evaluator, rng=user_rngs[user_index], noise=noise
            )
            session = ElicitationSession(recommender, user, max_rounds=max_rounds)
            result = session.run(compute_regret=True)
            clicks.append(result.clicks_to_convergence)
            converged.append(result.converged)
            regrets.append(result.final_regret if result.final_regret is not None else 0.0)
        points.append(
            ElicitationPoint(
                num_features=num_features,
                mean_clicks=float(np.mean(clicks)),
                median_clicks=float(np.median(clicks)),
                max_clicks=float(np.max(clicks)),
                convergence_rate=float(np.mean(converged)),
                mean_regret=float(np.mean(regrets)),
            )
        )
    return points


def summarise(points: List[ElicitationPoint]) -> List[List]:
    """Rows (features, mean clicks, median, max, convergence rate, regret)."""
    return [
        [
            p.num_features,
            p.mean_clicks,
            p.median_clicks,
            p.max_clicks,
            p.convergence_rate,
            p.mean_regret,
        ]
        for p in points
    ]
