"""Tests for Package, AggregationState and PackageEvaluator."""

import numpy as np
import pytest

from repro.core.items import ItemCatalog
from repro.core.packages import AggregationState, Package, PackageEvaluator
from repro.core.profiles import AggregateProfile


class TestPackage:
    def test_of_sorts_and_deduplicates(self):
        package = Package.of([3, 1, 3, 2])
        assert package.items == (1, 2, 3)
        assert package.size == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Package.of([])

    def test_add_is_idempotent(self):
        package = Package.of([1, 2])
        assert package.add(2) is package
        assert package.add(0).items == (0, 1, 2)

    def test_contains_and_iteration(self):
        package = Package.of([4, 7])
        assert package.contains(4)
        assert not package.contains(5)
        assert list(package) == [4, 7]
        assert len(package) == 2

    def test_ordering_is_by_items(self):
        assert Package.of([1, 2]) < Package.of([1, 3])
        assert Package.of([0, 5]) < Package.of([1])

    def test_package_id_equals_items(self):
        assert Package.of([9, 2]).package_id == (2, 9)

    def test_hashable_and_equal(self):
        assert Package.of([1, 2]) == Package.of([2, 1])
        assert len({Package.of([1, 2]), Package.of([2, 1])}) == 1


class TestAggregationState:
    def test_empty_state(self):
        state = AggregationState.empty(3)
        assert state.size == 0
        assert np.all(state.sums == 0)

    def test_add_accumulates(self):
        state = AggregationState.empty(2).add([1.0, 4.0]).add([3.0, 2.0])
        assert state.size == 2
        assert np.allclose(state.sums, [4.0, 6.0])
        assert np.allclose(state.mins, [1.0, 2.0])
        assert np.allclose(state.maxs, [3.0, 4.0])
        assert np.array_equal(state.counts, [2, 2])

    def test_add_is_non_mutating(self):
        empty = AggregationState.empty(1)
        empty.add([5.0])
        assert empty.size == 0

    def test_nan_treated_as_null(self):
        state = AggregationState.empty(2).add([np.nan, 2.0])
        assert state.size == 1
        assert state.counts[0] == 0
        assert state.sums[0] == 0.0

    def test_copy_is_independent(self):
        state = AggregationState.empty(2).add([1.0, 1.0])
        clone = state.copy()
        clone.sums[0] = 99.0
        assert state.sums[0] == 1.0


class TestPackageEvaluatorBasics:
    def test_paper_example_vectors(self, paper_example_evaluator):
        """Example 1: p1 = {t1} has normalised vector (0.6, 0.5)."""
        assert np.allclose(paper_example_evaluator.vector(Package.of([0])), [0.6, 0.5])

    def test_paper_example_utilities(self, paper_example_evaluator):
        """Figure 2(c): utilities of p1..p6 under w1 = (0.5, 0.1)."""
        w1 = np.array([0.5, 0.1])
        packages = [
            Package.of([0]), Package.of([1]), Package.of([2]),
            Package.of([0, 1]), Package.of([1, 2]), Package.of([0, 2]),
        ]
        utilities = [paper_example_evaluator.utility(p, w1) for p in packages]
        assert np.allclose(utilities, [0.35, 0.3, 0.2, 0.575, 0.4, 0.475], atol=1e-9)

    def test_mismatched_profile_rejected(self, small_random_catalog):
        with pytest.raises(ValueError):
            PackageEvaluator(small_random_catalog, AggregateProfile(["sum"]), 2)

    def test_invalid_max_size_rejected(self, small_random_catalog):
        with pytest.raises(ValueError):
            PackageEvaluator(
                small_random_catalog, AggregateProfile.uniform(4), 0
            )

    def test_custom_normalisers_validated(self, small_random_catalog):
        profile = AggregateProfile.uniform(4)
        with pytest.raises(ValueError):
            PackageEvaluator(small_random_catalog, profile, 2, normalisers=np.zeros(4))
        with pytest.raises(ValueError):
            PackageEvaluator(small_random_catalog, profile, 2, normalisers=np.ones(3))

    def test_vectors_stacks_rows(self, small_evaluator):
        packages = [Package.of([0]), Package.of([1, 2])]
        matrix = small_evaluator.vectors(packages)
        assert matrix.shape == (2, 4)
        assert np.allclose(matrix[0], small_evaluator.vector(packages[0]))

    def test_vectors_empty_input(self, small_evaluator):
        assert small_evaluator.vectors([]).shape == (0, 4)

    def test_utilities_matches_individual(self, small_evaluator):
        packages = [Package.of([0, 1]), Package.of([5])]
        weights = np.array([0.2, -0.3, 0.5, 0.1])
        batched = small_evaluator.utilities(packages, weights)
        individual = [small_evaluator.utility(p, weights) for p in packages]
        assert np.allclose(batched, individual)

    def test_normalised_vectors_in_unit_interval(self, small_evaluator):
        rng = np.random.default_rng(0)
        for _ in range(20):
            package = small_evaluator.random_package(rng)
            vector = small_evaluator.vector(package)
            assert np.all(vector >= -1e-12) and np.all(vector <= 1.0 + 1e-12)


class TestIncrementalState:
    def test_state_matches_direct_evaluation(self, small_evaluator):
        rng = np.random.default_rng(1)
        for _ in range(20):
            package = small_evaluator.random_package(rng)
            state = small_evaluator.state_for_package(package)
            assert np.allclose(
                small_evaluator.state_vector(state), small_evaluator.vector(package)
            )

    def test_state_utility_matches_direct(self, small_evaluator):
        weights = np.array([0.5, -0.5, 0.25, 0.1])
        package = Package.of([2, 7, 11])
        state = small_evaluator.state_for_package(package)
        assert small_evaluator.state_utility(state, weights) == pytest.approx(
            small_evaluator.utility(package, weights)
        )

    def test_empty_state_vector_is_zero(self, small_evaluator):
        assert np.allclose(small_evaluator.state_vector(small_evaluator.empty_state()), 0.0)

    def test_state_add_values_hypothetical_item(self, small_evaluator):
        tau = np.array([0.9, 0.9, 0.9, 0.9])
        state = small_evaluator.state_add_values(small_evaluator.empty_state(), tau)
        vector = small_evaluator.state_vector(state)
        assert vector.shape == (4,)
        assert np.all(vector >= 0)


class TestEnumerationAndRandom:
    def test_enumerate_counts(self, paper_example_evaluator):
        packages = list(paper_example_evaluator.enumerate_packages())
        # 3 singletons + 3 pairs = 6 (φ = 2)
        assert len(packages) == 6

    def test_enumerate_respects_max_size_cap(self, paper_example_evaluator):
        packages = list(paper_example_evaluator.enumerate_packages(max_size=1))
        assert all(p.size == 1 for p in packages)

    def test_enumerate_never_exceeds_phi(self, small_evaluator):
        packages = list(
            small_evaluator.enumerate_packages(max_size=10, item_indices=range(5))
        )
        assert max(p.size for p in packages) == small_evaluator.max_package_size

    def test_random_package_within_bounds(self, small_evaluator):
        rng = np.random.default_rng(0)
        for _ in range(50):
            package = small_evaluator.random_package(rng)
            assert 1 <= package.size <= small_evaluator.max_package_size
            assert all(0 <= i < 30 for i in package)

    def test_random_package_fixed_size(self, small_evaluator):
        package = small_evaluator.random_package(0, size=2)
        assert package.size == 2

    def test_random_package_invalid_size(self, small_evaluator):
        with pytest.raises(ValueError):
            small_evaluator.random_package(0, size=99)

    def test_random_packages_distinct(self, small_evaluator):
        packages = small_evaluator.random_packages(25, rng=0)
        assert len({p.items for p in packages}) == 25

    def test_random_packages_too_many_distinct_raises(self):
        catalog = ItemCatalog(np.random.default_rng(0).random((3, 2)))
        evaluator = PackageEvaluator(catalog, AggregateProfile(["sum", "avg"]), 1)
        with pytest.raises(RuntimeError):
            evaluator.random_packages(10, rng=0)  # only 3 singletons exist

    def test_random_packages_negative_count(self, small_evaluator):
        with pytest.raises(ValueError):
            small_evaluator.random_packages(-1)
