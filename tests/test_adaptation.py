"""Tests for the approximate pool-reuse subsystem (repro.service.adaptation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile
from repro.sampling.base import ConstraintSet, SamplePool
from repro.service import (
    AdaptationConfig,
    ConstraintSimilarityIndex,
    EngineConfig,
    MemorySessionStore,
    PoolAdapter,
    PoolUnavailableError,
    RecommendationEngine,
    ShardedPoolRepository,
)


@pytest.fixture
def serving_catalog() -> ItemCatalog:
    rng = np.random.default_rng(11)
    return ItemCatalog(rng.random((30, 3)))


@pytest.fixture
def serving_profile() -> AggregateProfile:
    return AggregateProfile(["sum", "avg", "max"])


def fast_elicitation_config(**overrides) -> ElicitationConfig:
    defaults = dict(
        k=2,
        num_random=0,  # deterministic presentations: clicks are reproducible
        max_package_size=2,
        num_samples=40,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=60,
        search_items_cap=25,
        seed=0,
    )
    defaults.update(overrides)
    return ElicitationConfig(**defaults)


def make_engine(catalog, profile, store=None, **config_overrides):
    config_overrides.setdefault(
        "pool_adaptation", AdaptationConfig(psi=0.9, min_ess_fraction=0.2)
    )
    config = EngineConfig(
        elicitation=config_overrides.pop(
            "elicitation", fast_elicitation_config()
        ),
        seed=1,
        **config_overrides,
    )
    return RecommendationEngine(catalog, profile, config, store=store)


def constraints_of(*rows) -> ConstraintSet:
    return ConstraintSet(np.array(rows, dtype=float))


# =========================================================== AdaptationConfig
class TestAdaptationConfig:
    def test_defaults_are_valid(self):
        config = AdaptationConfig()
        assert 0.0 <= config.psi <= 1.0
        assert 0.0 < config.min_ess_fraction <= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"psi": -0.1},
            {"psi": 1.1},
            {"min_ess_fraction": 0.0},
            {"min_ess_fraction": 1.5},
            {"max_donors": 0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            AdaptationConfig(**kwargs)

    def test_engine_config_requires_a_pool_cache(
        self, serving_catalog, serving_profile
    ):
        with pytest.raises(ValueError, match="pool_adaptation"):
            EngineConfig(pool_cache_size=0, pool_adaptation=AdaptationConfig())


# ==================================================== ConstraintSimilarityIndex
class TestConstraintSimilarityIndex:
    def test_register_contains_forget(self):
        index = ConstraintSimilarityIndex()
        constraints = constraints_of([1.0, 0.0])
        index.register("k1", constraints, 40)
        assert "k1" in index and len(index) == 1
        assert index.forget("k1") and "k1" not in index
        assert not index.forget("k1")

    def test_rows_normalise_order_and_negative_zero(self):
        index = ConstraintSimilarityIndex()
        a = constraints_of([1.0, -0.0], [0.0, 1.0])
        b = constraints_of([0.0, 1.0], [1.0, 0.0])
        assert index.rows_of(a) == index.rows_of(b)

    def test_prefix_donor_ranks_before_sibling_donor(self):
        index = ConstraintSimilarityIndex()
        shared = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]
        target = constraints_of(*shared, [0.0, 0.0, 1.0])
        index.register("prefix", constraints_of(*shared), 40)
        index.register(
            "sibling", constraints_of(*shared, [0.0, 0.0, -1.0]), 40
        )
        candidates = index.candidates(
            target, 40, ["prefix", "sibling"], max_candidates=4
        )
        assert [c.key for c in candidates] == ["prefix", "sibling"]
        assert candidates[0].is_prefix and candidates[0].extra == 0
        assert candidates[1].extra == 1

    def test_count_and_dimension_mismatches_are_excluded(self):
        index = ConstraintSimilarityIndex()
        target = constraints_of([1.0, 0.0])
        index.register("wrong-count", target, 80)
        index.register("wrong-dim", constraints_of([1.0, 0.0, 0.0]), 40)
        assert (
            index.candidates(
                target, 40, ["wrong-count", "wrong-dim"], max_candidates=4
            )
            == []
        )

    def test_mostly_foreign_donors_are_filtered(self):
        """A donor restricted mainly by rows the target never asserted is a
        biased proposal the ESS gate cannot see — it must not be offered."""
        index = ConstraintSimilarityIndex()
        target = constraints_of([1.0, 0.0, 0.0])
        index.register(
            "foreign",
            constraints_of([1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]),
            40,
        )
        assert index.candidates(target, 40, ["foreign"], max_candidates=4) == []

    def test_empty_target_gets_no_donors(self):
        index = ConstraintSimilarityIndex()
        index.register("donor", constraints_of([1.0, 0.0]), 40)
        empty = ConstraintSet.empty(2)
        assert index.candidates(empty, 40, ["donor"], max_candidates=4) == []

    def test_unregistered_live_keys_are_ignored(self):
        index = ConstraintSimilarityIndex()
        target = constraints_of([1.0, 0.0])
        assert index.candidates(target, 40, ["unknown"], max_candidates=4) == []

    def test_max_candidates_truncates(self):
        index = ConstraintSimilarityIndex()
        target = constraints_of([1.0, 0.0], [0.0, 1.0])
        for i in range(5):
            index.register(f"d{i}", constraints_of([1.0, 0.0]), 40)
        found = index.candidates(
            target, 40, [f"d{i}" for i in range(5)], max_candidates=2
        )
        assert len(found) == 2


# ================================================================ PoolAdapter
def build_repository_with(key, pool):
    def fail_spec_factory(key, constraints, count):
        # adaptation must never trigger a fill
        raise AssertionError("spec factory must not be called")

    repository = ShardedPoolRepository(
        spec_factory=fail_spec_factory, num_shards=1, capacity=8
    )
    repository.put(key, pool)
    return repository


class TestPoolAdapter:
    def _adapter(self, repository, index, **config_kwargs):
        config_kwargs.setdefault("psi", 0.9)
        config_kwargs.setdefault("min_ess_fraction", 0.25)
        return PoolAdapter(
            repository, index, AdaptationConfig(**config_kwargs), seed_root=5
        )

    def _donor_setup(self, valid_fraction=1.0, count=40):
        """A donor pool for the half-plane x >= 0, target adds y >= 0."""
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(count, 2))
        samples[:, 0] = np.abs(samples[:, 0])  # donor-valid: x >= 0
        flip = rng.random(count) >= valid_fraction
        samples[flip, 1] = -np.abs(samples[flip, 1])
        samples[~flip, 1] = np.abs(samples[~flip, 1])
        donor_constraints = constraints_of([1.0, 0.0])
        target_constraints = constraints_of([1.0, 0.0], [0.0, 1.0])
        index = ConstraintSimilarityIndex()
        index.register("donor", donor_constraints, count)
        repository = build_repository_with(
            "donor", SamplePool.unweighted(samples)
        )
        return repository, index, target_constraints, count

    def test_adapts_from_a_prefix_donor_and_marks_the_pool(self):
        repository, index, target, count = self._donor_setup()
        adapter = self._adapter(repository, index)
        adapted = adapter.adapt("target-key", target, count)
        assert adapted is not None
        assert adapted.stats["sampler"] == "adapted"
        assert adapted.stats["adapted_from"] == "donor"
        assert adapted.stats["adaptation_psi"] == 0.9
        assert adapted.stats["adaptation_extra"] == 0
        assert adapter.stats.adapted == 1
        assert adapter.stats.prefix_donors == 1
        assert adapter.stats.reuse_rate == 1.0

    def test_low_ess_is_gated_out(self):
        # Every donor sample violates the new target constraint: at psi=0.9
        # all weights collapse to 0.1^1 uniformly... so make the violations
        # heterogeneous by psi=1.0: all-violating -> ESS 0 < floor.
        repository, index, target, count = self._donor_setup(valid_fraction=0.0)
        adapter = self._adapter(repository, index, psi=1.0)
        assert adapter.adapt("target-key", target, count) is None
        assert adapter.stats.low_ess == 1
        assert adapter.stats.adapted == 0

    def test_no_registered_donor_returns_none(self):
        repository, index, target, count = self._donor_setup()
        empty_index = ConstraintSimilarityIndex()
        adapter = self._adapter(repository, empty_index)
        assert adapter.adapt("target-key", target, count) is None
        assert adapter.stats.no_donor == 1

    def test_the_target_key_itself_is_never_a_donor(self):
        repository, index, target, count = self._donor_setup()
        adapter = self._adapter(repository, index)
        assert adapter.adapt("donor", target, count) is None
        assert adapter.stats.no_donor == 1

    def test_resample_serves_uniform_weights_deterministically(self):
        repository, index, target, count = self._donor_setup(valid_fraction=0.8)
        adapter = self._adapter(repository, index, resample=True)
        first = adapter.adapt("target-key", target, count)
        again = self._adapter(repository, index, resample=True).adapt(
            "target-key", target, count
        )
        assert first is not None and again is not None
        assert first.size == count
        np.testing.assert_array_equal(first.weights, np.ones(count))
        assert first.samples.tobytes() == again.samples.tobytes()
        assert adapter.stats.resampled == 1

    def test_donor_pool_in_repository_is_untouched(self):
        repository, index, target, count = self._donor_setup(valid_fraction=0.5)
        before = repository.peek("donor").weights.copy()
        self._adapter(repository, index).adapt("target-key", target, count)
        np.testing.assert_array_equal(repository.peek("donor").weights, before)

    def test_psi_one_identical_set_degenerates_to_reuse(self):
        """Acceptance criterion: ψ=1 + identical constraints = exact reuse."""
        rng = np.random.default_rng(1)
        samples = np.abs(rng.normal(size=(40, 2)))
        donor = SamplePool.unweighted(samples)
        constraints = constraints_of([1.0, 0.0], [0.0, 1.0])
        index = ConstraintSimilarityIndex()
        index.register("donor", constraints, 40)
        repository = build_repository_with("donor", donor)
        adapter = self._adapter(repository, index, psi=1.0)
        adapted = adapter.adapt("other-key", constraints, 40)
        assert adapted is not None
        assert adapted.samples.tobytes() == donor.samples.tobytes()
        assert adapted.weights.tobytes() == donor.weights.tobytes()
        assert adapted.stats["adaptation_ess"] == pytest.approx(40.0)


# ========================================================== engine integration
class TestEngineAdaptation:
    def _drive_divergent_pair(self, engine):
        """Two sessions sharing round 1; the second clicks differently."""
        first = engine.create_session()
        engine.recommend(first)
        engine.feedback(first, 0)
        engine.recommend(first)

        second = engine.create_session()
        engine.recommend(second)
        engine.feedback(second, 1)  # one click apart from the first session
        engine.recommend(second)
        return first, second

    def test_divergent_sessions_adapt_instead_of_sampling(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        baseline = make_engine(
            serving_catalog, serving_profile, pool_adaptation=None
        )
        self._drive_divergent_pair(engine)
        self._drive_divergent_pair(baseline)
        stats = engine.stats()
        baseline_stats = baseline.stats()
        assert stats.pools_adapted >= 2
        assert stats.adaptation["reuse_rate"] > 0.0
        # The adapted engine samples strictly fewer pools than the baseline.
        assert stats.pools_sampled < (
            baseline_stats.pools_sampled + baseline_stats.pools_maintained
        )

    def test_adapted_pools_are_marked_and_distinct_from_fresh_builds(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        _first, second = self._drive_divergent_pair(engine)
        entry = engine.sessions.acquire(second)
        pool = entry.recommender.pending_pool
        assert pool is not None
        assert pool.stats["sampler"] == "adapted"
        assert "adapted_from" in pool.stats
        # The key-deterministic fresh build of the same key has different
        # content, so the content digests can never be confused.
        fresh = engine.pool_repository.fill_one(
            entry.pool_key,
            entry.recommender.constraints,
            entry.recommender.config.num_samples,
        )
        assert engine._pool_digest(pool) != engine._pool_digest(fresh)

    def test_recommend_many_prefetch_adapts(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        ids = [engine.create_session() for _ in range(4)]
        engine.recommend_many(ids)
        for index, sid in enumerate(ids):
            engine.feedback(sid, index % 2)
        engine.recommend_many(ids)
        stats = engine.stats()
        assert stats.pools_adapted >= 1
        assert stats.adaptation["attempts"] >= 1

    def test_adapted_reference_snapshot_round_trips(
        self, serving_catalog, serving_profile
    ):
        store = MemorySessionStore()
        engine = make_engine(serving_catalog, serving_profile, store=store)
        _first, second = self._drive_divergent_pair(engine)
        payload = engine.snapshot(second, embed_pool=False)
        assert "samples" not in payload["pool"]
        restored_engine = make_engine(
            serving_catalog, serving_profile, store=store
        )
        restored_engine.restore(payload)
        entry = restored_engine.sessions.acquire(second)
        pool = entry.recommender.pending_pool
        original = engine.sessions.acquire(second).recommender.pending_pool
        assert pool is not None
        assert pool.samples.tobytes() == original.samples.tobytes()
        assert pool.weights.tobytes() == original.weights.tobytes()

    def test_noise_free_default_engine_never_adapts(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(
            serving_catalog, serving_profile, pool_adaptation=None
        )
        self._drive_divergent_pair(engine)
        stats = engine.stats()
        assert stats.pools_adapted == 0
        assert stats.adaptation == {}
        assert engine.pool_adapter is None


# ============================================================ recommend_cached
class TestRecommendCached:
    def test_serves_when_the_pool_is_materialised(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        sid = engine.create_session()
        engine.recommend(sid)  # materialises the session pool
        round_ = engine.recommend_cached(sid)
        assert round_.recommended

    def test_serves_a_pending_session_from_an_exact_repository_hit(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        warm = engine.create_session()
        engine.recommend(warm)  # builds the empty-prefix pool into the cache
        cold = engine.create_session()
        round_ = engine.recommend_cached(cold)  # pending, but the key is hot
        assert round_.recommended

    def test_refuses_when_serving_would_fill(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        sid = engine.create_session()
        with pytest.raises(PoolUnavailableError):
            engine.recommend_cached(sid)
        # The refusal must not have advanced the session.
        entry = engine.sessions.acquire(sid)
        assert entry.rounds_served == 0

    def test_refuses_without_a_pool_repository(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(
            serving_catalog,
            serving_profile,
            pool_adaptation=None,
            pool_cache_size=0,
            topk_cache_size=0,
            use_batch_sampler=False,
        )
        sid = engine.create_session()
        with pytest.raises(PoolUnavailableError):
            engine.recommend_cached(sid)


# ===================================================== review-driven hardening
class TestIndexBounding:
    def test_capacity_evicts_least_recently_touched(self):
        index = ConstraintSimilarityIndex(capacity=2)
        a = constraints_of([1.0, 0.0])
        index.register("k1", a, 40)
        index.register("k2", a, 40)
        index.register("k1", a, 40)  # refresh k1's recency
        index.register("k3", a, 40)  # evicts k2, the oldest
        assert "k1" in index and "k3" in index
        assert "k2" not in index
        assert len(index) == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ConstraintSimilarityIndex(capacity=0)
        with pytest.raises(ValueError):
            AdaptationConfig(index_capacity=0)

    def test_engine_forwards_index_capacity(self, serving_catalog, serving_profile):
        engine = make_engine(
            serving_catalog,
            serving_profile,
            pool_adaptation=AdaptationConfig(index_capacity=7),
        )
        assert engine.pool_adapter.index.capacity == 7


class TestChainDepthCap:
    def _setup(self, donor_depth, max_chain_depth=2):
        rng = np.random.default_rng(0)
        samples = np.abs(rng.normal(size=(40, 2)))
        donor = SamplePool.unweighted(samples)
        if donor_depth:
            donor.stats["sampler"] = "adapted"
            donor.stats["adaptation_depth"] = donor_depth
        donor_constraints = constraints_of([1.0, 0.0])
        target = constraints_of([1.0, 0.0], [0.0, 1.0])
        index = ConstraintSimilarityIndex()
        index.register("donor", donor_constraints, 40)
        repository = build_repository_with("donor", donor)
        adapter = PoolAdapter(
            repository,
            index,
            AdaptationConfig(
                psi=0.9, min_ess_fraction=0.2, max_chain_depth=max_chain_depth
            ),
        )
        return adapter, target

    def test_fresh_donor_yields_depth_one(self):
        adapter, target = self._setup(donor_depth=0)
        adapted = adapter.adapt("target", target, 40)
        assert adapted is not None
        assert adapted.stats["adaptation_depth"] == 1

    def test_adapted_donor_yields_depth_two(self):
        adapter, target = self._setup(donor_depth=1)
        adapted = adapter.adapt("target", target, 40)
        assert adapted is not None
        assert adapted.stats["adaptation_depth"] == 2

    def test_donor_at_the_cap_is_refused(self):
        adapter, target = self._setup(donor_depth=2)
        assert adapter.adapt("target", target, 40) is None
        assert adapter.stats.chain_capped == 1
        assert adapter.stats.no_donor == 0

    def test_invalid_chain_depth_rejected(self):
        with pytest.raises(ValueError):
            AdaptationConfig(max_chain_depth=0)
