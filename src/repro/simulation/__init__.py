"""Simulated users and closed-loop elicitation sessions.

The paper's effectiveness study (§5.6) generates ground-truth utility
functions that the recommender does not know, presents 5 recommended + 5
random packages per round, and assumes the user always clicks the presented
package maximising the true utility.  :class:`~repro.simulation.user.SimulatedUser`
implements that click model (optionally with the §7 noise model), and
:class:`~repro.simulation.session.ElicitationSession` runs the full loop and
reports how many clicks the system needs before its top-k list stabilises.
"""

from repro.simulation.user import SimulatedUser
from repro.simulation.session import ElicitationSession, SessionResult
from repro.simulation.traffic import LoadReport, TrafficSimulator, WorkloadSpec

__all__ = [
    "SimulatedUser",
    "ElicitationSession",
    "SessionResult",
    "TrafficSimulator",
    "WorkloadSpec",
    "LoadReport",
]
