"""Tests for repro.core.items.ItemCatalog."""

import numpy as np
import pytest

from repro.core.items import ItemCatalog


class TestConstruction:
    def test_basic_shape(self, small_random_catalog):
        assert small_random_catalog.num_items == 30
        assert small_random_catalog.num_features == 4
        assert len(small_random_catalog) == 30

    def test_default_names_and_ids(self):
        catalog = ItemCatalog(np.ones((3, 2)))
        assert catalog.feature_names == ["f1", "f2"]
        assert catalog.item_ids == [0, 1, 2]

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ItemCatalog(np.array([[-1.0, 0.5]]))

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            ItemCatalog(np.zeros((0, 3)))

    def test_mismatched_names_rejected(self):
        with pytest.raises(ValueError):
            ItemCatalog(np.ones((2, 2)), feature_names=["only-one"])

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            ItemCatalog(np.ones((2, 2)), item_ids=[1])

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            ItemCatalog(np.ones(5))


class TestNullHandling:
    @pytest.fixture
    def catalog_with_nulls(self):
        features = np.array([[1.0, np.nan], [0.5, 2.0], [np.nan, 3.0]])
        return ItemCatalog(features)

    def test_null_mask(self, catalog_with_nulls):
        assert catalog_with_nulls.has_nulls()
        assert catalog_with_nulls.null_mask.sum() == 2

    def test_filled_replaces_nulls(self, catalog_with_nulls):
        filled = catalog_with_nulls.filled(0.0)
        assert not np.isnan(filled).any()
        assert filled[0, 1] == 0.0

    def test_feature_column_fills_nulls(self, catalog_with_nulls):
        column = catalog_with_nulls.feature_column(0, fill_null=9.0)
        assert column[2] == 9.0

    def test_feature_max_ignores_nulls(self, catalog_with_nulls):
        assert np.allclose(catalog_with_nulls.feature_max(), [1.0, 3.0])

    def test_feature_min_ignores_nulls(self, catalog_with_nulls):
        assert np.allclose(catalog_with_nulls.feature_min(), [0.5, 2.0])

    def test_argsort_puts_nulls_last(self, catalog_with_nulls):
        descending = catalog_with_nulls.argsort_feature(0, descending=True)
        assert descending[-1] == 2
        ascending = catalog_with_nulls.argsort_feature(0, descending=False)
        assert ascending[-1] == 2


class TestAccessors:
    def test_feature_values_row(self, small_random_catalog):
        row = small_random_catalog.feature_values(3)
        assert row.shape == (4,)
        assert np.array_equal(row, small_random_catalog.features[3])

    def test_argsort_feature_descending(self, small_random_catalog):
        order = small_random_catalog.argsort_feature(1, descending=True)
        values = small_random_catalog.features[order, 1]
        assert np.all(np.diff(values) <= 0)

    def test_argsort_feature_ascending(self, small_random_catalog):
        order = small_random_catalog.argsort_feature(1, descending=False)
        values = small_random_catalog.features[order, 1]
        assert np.all(np.diff(values) >= 0)


class TestSlicing:
    def test_subset_preserves_ids(self):
        catalog = ItemCatalog(np.arange(12.0).reshape(4, 3), item_ids=["a", "b", "c", "d"])
        subset = catalog.subset([1, 3])
        assert subset.num_items == 2
        assert subset.item_ids == ["b", "d"]
        assert np.array_equal(subset.features[0], catalog.features[1])

    def test_select_features(self):
        catalog = ItemCatalog(np.arange(12.0).reshape(4, 3), feature_names=["a", "b", "c"])
        selected = catalog.select_features([2, 0])
        assert selected.num_features == 2
        assert selected.feature_names == ["c", "a"]
        assert np.array_equal(selected.features[:, 0], catalog.features[:, 2])
