"""The end-to-end preference-elicitation package recommender.

:class:`PackageRecommender` ties the pieces of the paper's system together:

1. keep a Gaussian-mixture prior over the hidden utility weights and a pool of
   constrained weight samples representing the current posterior (§2.1, §3);
2. on every round, present the user the current best packages under a chosen
   ranking semantics *plus* a few random packages for exploration (§2.2);
3. interpret the user's click as pairwise preferences "clicked ≻ unclicked",
   store them in the preference DAG, and maintain the sample pool against the
   new constraints instead of resampling from scratch (§3.3–3.4);
4. answer top-k package queries by running ``Top-k-Pkg`` for every weight
   sample — batched through one shared sorted-list walk by default
   (:class:`~repro.topk.batch_search.BatchTopKPackageSearcher`) — and
   aggregating under EXP / TKP / MPO (§4).

Typical usage::

    recommender = PackageRecommender(catalog, profile, ElicitationConfig(k=5))
    round_ = recommender.recommend()
    recommender.feedback(clicked=round_.presented[2])
    best = recommender.current_top_k()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.items import ItemCatalog
from repro.core.noise import NoiseModel
from repro.core.packages import Package, PackageEvaluator
from repro.core.preferences import PreferenceStore
from repro.core.profiles import AggregateProfile
from repro.core.predicates import PredicateSet
from repro.core.ranking import RankingSemantics, rank_from_samples
from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.importance import ImportanceSampler
from repro.sampling.maintenance import (
    HybridMaintenance,
    NaiveMaintenance,
    SampleMaintainer,
    ThresholdMaintenance,
)
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.sampling.rejection import RejectionSampler
from repro.topk.batch_search import BatchTopKPackageSearcher
from repro.topk.package_search import PackageSearchResult, TopKPackageSearcher
from repro.utils.rng import ensure_rng

#: Sampler names accepted by :class:`ElicitationConfig`.
SAMPLER_NAMES = ("rejection", "importance", "mcmc")

#: Maintenance strategy names accepted by :class:`ElicitationConfig`.
MAINTENANCE_NAMES = ("naive", "ta", "hybrid", "resample")

#: External pool source: ``provider(constraints, count, stale_pool) -> pool``.
PoolProvider = Callable[
    [ConstraintSet, int, Optional[SamplePool]], SamplePool
]


def click_constraint_set(
    evaluator: PackageEvaluator,
    clicked: Package,
    presented: Sequence[Package],
    reduced: bool = True,
) -> ConstraintSet:
    """The constraint set one click on ``clicked`` among ``presented`` induces.

    Mirrors what :meth:`PackageRecommender.feedback` does to a *fresh* session
    (an empty preference DAG): the click yields ``clicked ≻ p`` for every
    other presented package, and the (optionally transitively reduced) set of
    half-space directions is the resulting constraint set.  The serving
    layer's :class:`~repro.service.pool_repository.WarmStartPlanner` uses this
    to enumerate the first-click pools a cold session can land on, keyed by
    the same fingerprints real sessions produce.
    """
    store = PreferenceStore(evaluator.catalog.num_features, on_cycle="drop")
    store.add_click_feedback(evaluator, clicked, presented)
    return ConstraintSet.from_store(store, reduced=reduced)


@dataclass
class ElicitationConfig:
    """Configuration of the preference-elicitation recommender.

    Attributes
    ----------
    k:
        Number of "best" packages recommended per round (and returned by
        :meth:`PackageRecommender.current_top_k`).
    num_random:
        Number of additional random exploration packages presented per round.
    max_package_size:
        The system-defined maximum package size φ.
    num_samples:
        Size of the weight-vector sample pool representing the posterior.
    sampler:
        ``"rejection"``, ``"importance"`` or ``"mcmc"``.
    semantics:
        Ranking semantics used to aggregate per-sample results (EXP/TKP/MPO).
    num_prior_components:
        Number of Gaussians in the prior mixture.
    prior_spread:
        Standard deviation of each prior component.
    noise_psi:
        Optional feedback-noise parameter ψ (§7); ``None`` = noise-free.
    maintenance:
        How the sample pool is updated on new feedback: ``"naive"``, ``"ta"``,
        ``"hybrid"`` (Algorithm 1) or ``"resample"`` (regenerate from scratch).
    hybrid_gamma:
        Fall-back parameter γ of the hybrid maintenance strategy.
    search_sample_budget:
        How many of the pooled weight samples are pushed through ``Top-k-Pkg``
        when answering a top-k query (an evenly spaced subset of the pool is
        used).  ``None`` searches for every sample, exactly as §4 describes;
        a finite budget keeps interactive latency bounded for large pools.
    search_beam_width:
        Per-sample beam width passed to the package searchers; ``None``
        keeps the per-sample search exact.  On the batch path the queue is
        shared, so the batch searcher pools the budget — ``beam_width ×
        pool size`` candidates total; when that cap binds, batch results may
        differ from sequential beam search (both are bounded-work anytime
        modes, not exact).
    search_items_cap:
        Cap on items accessed per search; ``None`` means no cap.
    use_batch_search:
        Answer the per-sample top-k queries with the vectorised
        :class:`~repro.topk.batch_search.BatchTopKPackageSearcher` (one
        shared sorted-list walk for the whole pool) instead of N sequential
        searches.  Results are identical to the sequential path in the exact
        configuration (``search_beam_width=None``, ``search_items_cap=None``)
        and may differ only when those bounded-work caps bind.  Disable to
        fall back to per-sample :meth:`TopKPackageSearcher.search_many`.
    seed:
        Seed for all randomness inside the recommender.
    """

    k: int = 5
    num_random: int = 5
    max_package_size: int = 5
    num_samples: int = 200
    sampler: str = "mcmc"
    semantics: RankingSemantics = RankingSemantics.EXP
    num_prior_components: int = 1
    prior_spread: float = 0.5
    noise_psi: Optional[float] = None
    maintenance: str = "hybrid"
    hybrid_gamma: float = 0.025
    search_sample_budget: Optional[int] = None
    search_beam_width: Optional[int] = 2_000
    search_items_cap: Optional[int] = None
    use_batch_search: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be > 0, got {self.k}")
        if self.num_random < 0:
            raise ValueError(f"num_random must be >= 0, got {self.num_random}")
        if self.max_package_size <= 0:
            raise ValueError(
                f"max_package_size must be > 0, got {self.max_package_size}"
            )
        if self.num_samples <= 0:
            raise ValueError(f"num_samples must be > 0, got {self.num_samples}")
        if self.sampler not in SAMPLER_NAMES:
            raise ValueError(
                f"sampler must be one of {SAMPLER_NAMES}, got {self.sampler!r}"
            )
        if self.maintenance not in MAINTENANCE_NAMES:
            raise ValueError(
                f"maintenance must be one of {MAINTENANCE_NAMES}, "
                f"got {self.maintenance!r}"
            )
        if self.search_sample_budget is not None and self.search_sample_budget <= 0:
            raise ValueError(
                f"search_sample_budget must be > 0 or None, "
                f"got {self.search_sample_budget}"
            )
        self.semantics = RankingSemantics.parse(self.semantics)


@dataclass
class RecommendationRound:
    """What the system presented to the user in one round.

    Attributes
    ----------
    recommended:
        The "exploit" packages: current best under the chosen semantics.
    random_packages:
        The "explore" packages: drawn uniformly at random.
    """

    recommended: List[Package]
    random_packages: List[Package] = field(default_factory=list)

    @property
    def presented(self) -> List[Package]:
        """All packages shown to the user, recommended first."""
        return list(self.recommended) + list(self.random_packages)

    def __len__(self) -> int:
        return len(self.recommended) + len(self.random_packages)


class PackageRecommender:
    """Bayesian preference-elicitation recommender for top-k packages.

    Parameters
    ----------
    catalog:
        The item catalog.
    profile:
        The aggregate feature profile ``V``.
    config:
        Elicitation configuration; defaults are reasonable for interactive use.
    prior:
        Optional custom Gaussian-mixture prior over the weight vector; by
        default a zero-centred mixture with ``config.num_prior_components``
        components is used.
    predicates:
        Optional package-schema predicates enforced on recommended packages.
    catalog_predicate:
        Optional item-eligibility predicate
        (:class:`repro.data.columnar.CatalogPredicate`) pushed down into
        both searchers' sorted-list walks and into random-package draws, so
        every presented package contains only eligible items.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        profile: AggregateProfile,
        config: Optional[ElicitationConfig] = None,
        prior: Optional[GaussianMixture] = None,
        predicates: Optional[PredicateSet] = None,
        catalog_predicate=None,
    ) -> None:
        self.config = config if config is not None else ElicitationConfig()
        self.catalog = catalog
        self.profile = profile
        self.evaluator = PackageEvaluator(
            catalog, profile, self.config.max_package_size
        )
        self.rng = ensure_rng(self.config.seed)
        if prior is None:
            prior = GaussianMixture.default_prior(
                catalog.num_features,
                self.config.num_prior_components,
                self.config.prior_spread,
                rng=self.rng,
            )
        if prior.dimension != catalog.num_features:
            raise ValueError(
                f"prior dimension {prior.dimension} does not match the catalog's "
                f"{catalog.num_features} features"
            )
        self.prior = prior
        self.noise = (
            NoiseModel(self.config.noise_psi)
            if self.config.noise_psi is not None
            else None
        )
        self.sampler = self._build_sampler()
        self.preferences = PreferenceStore(catalog.num_features, on_cycle="drop")
        self.catalog_predicate = catalog_predicate
        if catalog_predicate is None:
            self._eligible_items = None
        else:
            mask = catalog_predicate.eligible_mask(catalog)
            self._eligible_items = [int(i) for i in np.flatnonzero(mask)]
            if not self._eligible_items:
                raise ValueError(
                    "catalog_predicate eliminates every item; nothing to recommend"
                )
        self.searcher = TopKPackageSearcher(
            self.evaluator,
            predicates=predicates,
            beam_width=self.config.search_beam_width,
            max_items_accessed=self.config.search_items_cap,
            catalog_predicate=catalog_predicate,
        )
        # The pool-wide top-k queries walk the sorted lists once for all
        # samples; the sequential searcher above remains for single-vector
        # queries and as the use_batch_search=False fallback.
        self.batch_searcher = BatchTopKPackageSearcher(
            self.evaluator,
            predicates=predicates,
            beam_width=self.config.search_beam_width,
            max_items_accessed=self.config.search_items_cap,
            catalog_predicate=catalog_predicate,
        )
        self._maintainer = self._build_maintainer()
        self._pool: Optional[SamplePool] = None
        self._stale_pool: Optional[SamplePool] = None
        self._pool_provider: Optional[PoolProvider] = None
        self._last_round: Optional[RecommendationRound] = None
        self.rounds_presented = 0
        self.clicks_received = 0

    # ---------------------------------------------------------------- plumbing
    def _build_sampler(self) -> Sampler:
        noise_probability = self.config.noise_psi
        if self.config.sampler == "rejection":
            return RejectionSampler(
                self.prior, rng=self.rng, noise_probability=noise_probability
            )
        if self.config.sampler == "importance":
            return ImportanceSampler(
                self.prior, rng=self.rng, noise_probability=noise_probability
            )
        return MetropolisHastingsSampler(
            self.prior, rng=self.rng, noise_probability=noise_probability
        )

    def _build_maintainer(self) -> Optional[SampleMaintainer]:
        if self.config.maintenance == "resample":
            return None
        if self.config.maintenance == "naive":
            strategy = NaiveMaintenance()
        elif self.config.maintenance == "ta":
            strategy = ThresholdMaintenance()
        else:
            strategy = HybridMaintenance(self.config.hybrid_gamma)
        return SampleMaintainer(strategy, self.sampler)

    # ------------------------------------------------------------------ state
    @property
    def constraints(self) -> ConstraintSet:
        """The current feedback constraints (transitively reduced)."""
        return ConstraintSet.from_store(self.preferences, reduced=True)

    @property
    def num_feedback_preferences(self) -> int:
        """Number of pairwise preferences accumulated so far."""
        return len(self.preferences)

    @property
    def last_round(self) -> Optional[RecommendationRound]:
        """The most recently presented round, if any."""
        return self._last_round

    @property
    def pending_pool(self) -> Optional[SamplePool]:
        """The materialised sample pool, or ``None`` when it needs rebuilding."""
        return self._pool

    @property
    def stale_pool(self) -> Optional[SamplePool]:
        """The pre-feedback pool parked for the provider to maintain, if any."""
        return self._stale_pool

    def set_pool_provider(self, provider: Optional["PoolProvider"]) -> None:
        """Delegate sample-pool acquisition to an external provider.

        A serving engine uses this hook to source pools from a shared,
        fingerprint-partitioned repository
        (:class:`~repro.service.pool_repository.PoolRepository`, keyed by the
        constraint-set fingerprint) instead of sampling inside every session.
        The provider is called with ``(constraints, count, stale_pool)``
        where ``stale_pool`` is the pre-feedback pool, if any, that the
        provider may maintain incrementally (§3.4) rather than resampling
        from scratch.
        """
        self._pool_provider = provider

    def set_pool(self, pool: Optional[SamplePool]) -> None:
        """Install an externally generated pool (snapshot restore, testing)."""
        self._pool = pool
        self._stale_pool = None

    def sample_pool(self, refresh: bool = False) -> SamplePool:
        """The current pool of posterior weight samples (generated lazily)."""
        if self._pool is None or refresh:
            if self._pool_provider is not None:
                self._pool = self._pool_provider(
                    self.constraints, self.config.num_samples, self._stale_pool
                )
                self._stale_pool = None
            else:
                self._pool = self.sampler.sample(
                    self.config.num_samples, self.constraints
                )
        return self._pool

    def estimated_weights(self) -> np.ndarray:
        """Point estimate of the user's weight vector (posterior mean)."""
        return self.sample_pool().mean_weight_vector()

    # ------------------------------------------------------------- recommend
    def current_top_k(
        self,
        k: Optional[int] = None,
        semantics=None,
    ) -> List[Package]:
        """Top-k packages under the current posterior and ranking semantics."""
        k = k if k is not None else self.config.k
        semantics = (
            RankingSemantics.parse(semantics)
            if semantics is not None
            else self.config.semantics
        )
        pool = self.sample_pool()
        indices = self.search_sample_indices(pool)
        results = self._per_sample_results(pool, k, indices)
        return rank_from_samples(
            results, k, semantics, sample_weights=pool.weights[indices]
        )

    def search_sample_indices(self, pool: SamplePool) -> np.ndarray:
        """Indices of the pool samples searched per round (evenly spaced subset).

        Exposed so a serving engine answering the top-k query *for* a session
        (e.g. batching the searches of many sessions into one walk) selects
        exactly the rows :meth:`current_top_k` would search itself.
        """
        budget = self.config.search_sample_budget
        if budget is None or budget >= pool.size:
            return np.arange(pool.size)
        return np.linspace(0, pool.size - 1, budget).round().astype(int)

    def _per_sample_results(
        self, pool: SamplePool, k: int, indices: Optional[np.ndarray] = None
    ) -> List[PackageSearchResult]:
        if indices is None:
            indices = np.arange(pool.size)
        if self.config.use_batch_search:
            return self.batch_searcher.search_many(pool.samples[indices], k)
        return self.searcher.search_many(pool.samples[indices], k)

    def recommend(
        self, recommended: Optional[List[Package]] = None
    ) -> RecommendationRound:
        """Produce one round of recommendations: best packages + random packages.

        ``recommended`` lets an engine driving many sessions inject the
        "exploit" packages (e.g. a cached top-k shared by every session with
        the same posterior); by default they are computed here.
        """
        if recommended is None:
            recommended = self.current_top_k()
        exclude = {package.items for package in recommended}
        random_packages: List[Package] = []
        attempts = 0
        while (
            len(random_packages) < self.config.num_random
            and attempts < 50 * max(self.config.num_random, 1)
        ):
            attempts += 1
            candidate = self.evaluator.random_package(
                self.rng, item_indices=self._eligible_items
            )
            if candidate.items in exclude:
                continue
            exclude.add(candidate.items)
            random_packages.append(candidate)
        round_ = RecommendationRound(recommended, random_packages)
        self._last_round = round_
        self.rounds_presented += 1
        return round_

    # --------------------------------------------------------------- feedback
    def feedback(
        self,
        clicked: Package,
        presented: Optional[Sequence[Package]] = None,
    ) -> int:
        """Record a click on ``clicked`` among ``presented`` packages.

        ``presented`` defaults to the packages of the most recent
        :meth:`recommend` round.  Returns the number of pairwise preferences
        added (cycle-conflicting preferences are dropped).
        """
        if presented is None:
            if self._last_round is None:
                raise ValueError(
                    "no presented packages available; call recommend() first or "
                    "pass presented explicitly"
                )
            presented = self._last_round.presented
        if clicked not in presented:
            raise ValueError("the clicked package must be one of the presented packages")
        added = self.preferences.add_click_feedback(self.evaluator, clicked, presented)
        self.clicks_received += 1
        if not added:
            return 0
        self._update_pool(added)
        return len(added)

    def _update_pool(self, new_preferences) -> None:
        """Maintain (or regenerate) the sample pool after new feedback."""
        if self._pool is None:
            return
        if self._pool_provider is not None:
            # The provider owns pool lifecycle: hand it the stale pool so it
            # can maintain the surviving samples (or hit its cache) lazily.
            self._stale_pool = self._pool
            self._pool = None
            return
        if self._maintainer is None:
            self._pool = None  # force full regeneration on next use
            return
        constraints = self.constraints
        pool = self._pool
        for preference in new_preferences:
            pool, _ = self._maintainer.apply_feedback(
                pool, preference.direction, updated_constraints=constraints
            )
        self._pool = pool
