"""Tests for the synthetic benchmark data generators (UNI, PWR, COR, ANT)."""

import numpy as np
import pytest

from repro.data.generators import (
    SyntheticDatasetSpec,
    generate_anticorrelated,
    generate_correlated,
    generate_dataset,
    generate_powerlaw,
    generate_uniform,
)
from repro.data.datasets import BENCHMARK_DATASETS, DatasetCatalog, load_benchmark_dataset


class TestUniform:
    def test_shape_and_range(self):
        data = generate_uniform(500, 6, rng=0)
        assert data.shape == (500, 6)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_reproducible(self):
        assert np.array_equal(generate_uniform(50, 3, rng=1), generate_uniform(50, 3, rng=1))

    def test_roughly_uniform_mean(self):
        data = generate_uniform(20_000, 2, rng=0)
        assert abs(data.mean() - 0.5) < 0.02

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            generate_uniform(0, 3)
        with pytest.raises(ValueError):
            generate_uniform(10, 0)


class TestPowerlaw:
    def test_shape_and_range(self):
        data = generate_powerlaw(500, 4, rng=0)
        assert data.shape == (500, 4)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_right_skewed(self):
        data = generate_powerlaw(20_000, 1, rng=0)
        # Power-law values, rescaled: most mass near the bottom of the range.
        assert np.median(data) < 0.1

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            generate_powerlaw(100, 2, alpha=1.0)


class TestCorrelated:
    def test_positive_feature_correlation(self):
        data = generate_correlated(10_000, 4, rng=0)
        correlations = np.corrcoef(data, rowvar=False)
        off_diagonal = correlations[~np.eye(4, dtype=bool)]
        assert off_diagonal.mean() > 0.4

    def test_range(self):
        data = generate_correlated(1000, 3, rng=0)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_invalid_strength_raises(self):
        with pytest.raises(ValueError):
            generate_correlated(100, 3, correlation_strength=1.5)


class TestAnticorrelated:
    def test_negative_feature_correlation(self):
        data = generate_anticorrelated(10_000, 4, rng=0)
        correlations = np.corrcoef(data, rowvar=False)
        off_diagonal = correlations[~np.eye(4, dtype=bool)]
        assert off_diagonal.mean() < -0.05

    def test_range(self):
        data = generate_anticorrelated(1000, 3, rng=0)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_invalid_spread_raises(self):
        with pytest.raises(ValueError):
            generate_anticorrelated(100, 3, spread=0.0)


class TestGenerateDataset:
    @pytest.mark.parametrize("name", ["UNI", "PWR", "COR", "ANT"])
    def test_dispatch_by_name(self, name):
        data = generate_dataset(name, 100, 5, rng=0)
        assert data.shape == (100, 5)

    def test_case_insensitive(self):
        assert generate_dataset("uni", 10, 2, rng=0).shape == (10, 2)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            generate_dataset("ZIPF", 10, 2)


class TestSyntheticDatasetSpec:
    def test_generate_matches_function(self):
        spec = SyntheticDatasetSpec("UNI", 50, 3, seed=5)
        assert np.array_equal(spec.generate(), generate_uniform(50, 3, rng=5))

    def test_invalid_distribution_raises(self):
        with pytest.raises(ValueError):
            SyntheticDatasetSpec("XYZ", 10, 2)


class TestDatasetCatalog:
    def test_all_benchmark_names_load(self):
        catalog = DatasetCatalog(num_tuples=100, num_features=4, seed=0)
        for name in BENCHMARK_DATASETS:
            data = catalog.get(name)
            assert data.shape == (100, 4)

    def test_caching_returns_same_object(self):
        catalog = DatasetCatalog(num_tuples=50, num_features=3, seed=0)
        assert catalog.get("UNI") is catalog.get("UNI")

    def test_load_benchmark_dataset_nba_default_size(self):
        data = load_benchmark_dataset("NBA", num_tuples=200, num_features=6, rng=0)
        assert data.shape == (200, 6)

    def test_load_unknown_raises(self):
        with pytest.raises(ValueError):
            load_benchmark_dataset("MOVIES")
