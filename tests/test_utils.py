"""Tests for repro.utils (rng, timing, validation)."""

import time

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, TimingRecord
from repro.utils.validation import (
    require_index,
    require_matrix,
    require_positive,
    require_probability,
    require_vector,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_spawns_requested_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        assert not np.array_equal(children[0].random(10), children[1].random(10))

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_deterministic_given_seed(self):
        a = [g.random() for g in spawn_rngs(3, 3)]
        b = [g.random() for g in spawn_rngs(3, 3)]
        assert a == b


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, salt=1) == derive_seed(5, salt=1)

    def test_salt_changes_seed(self):
        assert derive_seed(5, salt=1) != derive_seed(5, salt=2)


class TestTimingRecord:
    def test_accumulates_durations(self):
        record = TimingRecord()
        record.add("phase", 1.0)
        record.add("phase", 0.5)
        assert record.get("phase") == pytest.approx(1.5)
        assert record.mean("phase") == pytest.approx(0.75)

    def test_unknown_phase_is_zero(self):
        assert TimingRecord().get("missing") == 0.0
        assert TimingRecord().mean("missing") == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimingRecord().add("phase", -0.1)

    def test_total_and_phases(self):
        record = TimingRecord()
        record.add("a", 1.0)
        record.add("b", 2.0)
        assert record.total() == pytest.approx(3.0)
        assert record.phases() == ["a", "b"]

    def test_merge_combines_records(self):
        first = TimingRecord()
        first.add("a", 1.0)
        second = TimingRecord()
        second.add("a", 2.0)
        second.add("b", 1.0)
        merged = first.merge(second)
        assert merged.get("a") == pytest.approx(3.0)
        assert merged.get("b") == pytest.approx(1.0)
        # originals untouched
        assert first.get("a") == pytest.approx(1.0)


class TestStopwatch:
    def test_measure_records_elapsed_time(self):
        watch = Stopwatch()
        with watch.measure("sleep"):
            time.sleep(0.01)
        assert watch.record.get("sleep") >= 0.005

    def test_time_call_returns_result(self):
        watch = Stopwatch()
        assert watch.time_call("add", lambda a, b: a + b, 2, 3) == 5
        assert "add" in watch.record.durations

    def test_measure_records_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.measure("boom"):
                raise RuntimeError("boom")
        assert "boom" in watch.record.durations


class TestValidation:
    def test_require_positive(self):
        assert require_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            require_positive(0.0, "x")
        assert require_positive(0.0, "x", allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            require_positive(-1.0, "x", allow_zero=True)

    def test_require_probability(self):
        assert require_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            require_probability(1.5, "p")
        with pytest.raises(ValueError):
            require_probability(-0.1, "p")

    def test_require_vector_checks_shape(self):
        vector = require_vector([1, 2, 3], "v")
        assert vector.shape == (3,)
        with pytest.raises(ValueError):
            require_vector([[1, 2]], "v")
        with pytest.raises(ValueError):
            require_vector([1, 2], "v", length=3)

    def test_require_matrix_checks_shape(self):
        matrix = require_matrix([[1, 2], [3, 4]], "m")
        assert matrix.shape == (2, 2)
        with pytest.raises(ValueError):
            require_matrix([1, 2], "m")
        with pytest.raises(ValueError):
            require_matrix([[1, 2]], "m", columns=3)

    def test_require_index(self):
        assert require_index(3, "i") == 3
        with pytest.raises(ValueError):
            require_index(-1, "i")
        with pytest.raises(ValueError):
            require_index(5, "i", upper=5)
