"""Serving demo: many concurrent elicitation sessions behind one engine.

This example shows the online serving layer built on top of the paper's
single-user machinery:

1. build a catalog and start a :class:`RecommendationEngine` with the shared
   sample-pool cache and batched sampling enabled;
2. drive a burst of identical-prefix sessions (the cache best case) with the
   closed-loop :class:`TrafficSimulator` and print the throughput report;
3. walk one session through the request/response API by hand
   (``create_session`` / ``recommend`` / ``feedback`` / ``close``);
4. snapshot that session, restore it into a brand-new engine, and verify the
   restored session serves the identical next round.

Run with::

    python examples/serving_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregateProfile,
    ElicitationConfig,
    EngineConfig,
    ItemCatalog,
    RecommendationEngine,
    TrafficSimulator,
    WorkloadSpec,
)


def build_engine() -> RecommendationEngine:
    rng = np.random.default_rng(42)
    catalog = ItemCatalog(rng.random((300, 4)),
                          feature_names=["cost", "rating", "stock", "novelty"])
    profile = AggregateProfile(["sum", "avg", "max", "avg"])
    elicitation = ElicitationConfig(
        k=3, num_random=2, max_package_size=3, num_samples=150,
        sampler="mcmc", search_sample_budget=3,
        search_beam_width=150, search_items_cap=60, seed=0,
    )
    return RecommendationEngine(catalog, profile,
                                EngineConfig(elicitation=elicitation, seed=1))


def main() -> None:
    # --- 1-2. A burst of 40 cold-start sessions sharing one feedback prefix.
    engine = build_engine()
    report = TrafficSimulator(
        engine, WorkloadSpec(num_sessions=40, rounds=3, identical_prefix=True)
    ).run()
    print(report.format("identical-prefix burst"))
    print()

    # --- 3. One session through the request/response API by hand. ----------
    engine = build_engine()
    session = engine.create_session(seed=7)
    round_ = engine.recommend(session)
    print(f"presented to {session}:")
    for index, package in enumerate(round_.presented):
        print(f"  [{index}] items={package.items}")
    engine.feedback(session, 0)  # the user clicks the first package
    round_ = engine.recommend(session)
    print(f"after feedback, new best: {round_.recommended[0].items}")

    # --- 4. Snapshot, restore into a fresh engine, compare the next round. --
    # A snapshot captures the session's full state (preferences, pool, RNG
    # stream), so the restored session's next recommendation is identical.
    snapshot = engine.snapshot(session)
    original = engine.recommend(session)
    engine.close(session)

    restored_engine = build_engine()
    restored_engine.restore(snapshot)
    restored = restored_engine.recommend(session)
    same = [p.items for p in original.presented] == [
        p.items for p in restored.presented
    ]
    print(f"snapshot -> restore -> identical next round: {same}")
    # The restored session keeps serving: clicks continue to refine it.
    restored_engine.feedback(session, 0)
    follow_up = restored_engine.recommend(session)
    print(f"restored session keeps serving, next best: {follow_up.recommended[0].items}")


if __name__ == "__main__":
    main()
