"""Simulated users with hidden ground-truth utility functions.

Substitutes for the real users of the paper's user study: a simulated user
holds a ground-truth :class:`~repro.core.utility.LinearUtility` that the
recommender never sees, and clicks on the presented package that maximises
that utility (§5.6).  An optional :class:`~repro.core.noise.NoiseModel`
makes the clicks imperfect, exercising the §7 extension.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.noise import NoiseModel
from repro.core.packages import Package, PackageEvaluator
from repro.core.utility import LinearUtility, sample_random_utility
from repro.utils.rng import RngLike, ensure_rng


class SimulatedUser:
    """A user whose clicks are driven by a hidden linear utility function.

    Parameters
    ----------
    true_utility:
        The ground-truth utility function (hidden from the recommender).
    evaluator:
        Evaluator used to score presented packages under the true utility.
    noise:
        Optional click-noise model; ``None`` means the user always clicks the
        truly best presented package.
    rng:
        Seed or generator for the noisy-click randomness.
    """

    def __init__(
        self,
        true_utility: LinearUtility,
        evaluator: PackageEvaluator,
        noise: Optional[NoiseModel] = None,
        rng: RngLike = None,
    ) -> None:
        if true_utility.num_features != evaluator.num_features:
            raise ValueError(
                f"utility has {true_utility.num_features} features but the "
                f"evaluator expects {evaluator.num_features}"
            )
        self.true_utility = true_utility
        self.evaluator = evaluator
        self.noise = noise
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------ constructors
    @classmethod
    def random(
        cls,
        evaluator: PackageEvaluator,
        rng: RngLike = None,
        noise: Optional[NoiseModel] = None,
        signs: Optional[Sequence[int]] = None,
    ) -> "SimulatedUser":
        """A user with a uniformly random ground-truth weight vector."""
        generator = ensure_rng(rng)
        utility = sample_random_utility(evaluator.num_features, generator, signs=signs)
        return cls(utility, evaluator, noise=noise, rng=generator)

    # ----------------------------------------------------------------- actions
    def true_package_utility(self, package: Package) -> float:
        """The package's utility under the hidden ground-truth weights."""
        return self.evaluator.utility(package, self.true_utility.weights)

    def best_presented_index(self, presented: Sequence[Package]) -> int:
        """Index of the presented package with the highest true utility."""
        if not presented:
            raise ValueError("at least one presented package is required")
        utilities = [self.true_package_utility(p) for p in presented]
        best = 0
        for index in range(1, len(presented)):
            if utilities[index] > utilities[best] or (
                utilities[index] == utilities[best]
                and presented[index].package_id < presented[best].package_id
            ):
                best = index
        return best

    def click(self, presented: Sequence[Package]) -> Package:
        """The package the user clicks (best under true utility, possibly noisy)."""
        best_index = self.best_presented_index(presented)
        if self.noise is None:
            return presented[best_index]
        chosen = self.noise.corrupt_choice(best_index, len(presented), self.rng)
        return presented[chosen]

    # --------------------------------------------------------------- assessing
    def true_top_k(self, candidates: Sequence[Package], k: int) -> List[Package]:
        """The user's true top-k among an explicit candidate list."""
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        scored = sorted(
            candidates,
            key=lambda p: (-self.true_package_utility(p), p.package_id),
        )
        return list(scored[:k])

    def regret(self, recommended: Sequence[Package], ideal: Sequence[Package]) -> float:
        """Difference between the ideal and recommended average true utility.

        Zero regret means the recommended list is as good (under the hidden
        utility) as the ideal list; used by the elicitation-effectiveness
        experiments to quantify convergence.
        """
        if not recommended or not ideal:
            raise ValueError("both package lists must be non-empty")
        rec_value = float(np.mean([self.true_package_utility(p) for p in recommended]))
        ideal_value = float(np.mean([self.true_package_utility(p) for p in ideal]))
        return max(ideal_value - rec_value, 0.0)
