"""Append-only event log: the session store whose source of truth is the log.

Everything downstream of a click is deterministic — key-deterministic pool
fills, canonical constraint derivation, exact batch search — so the only
state worth persisting is the *input* stream: which packages were served and
which one the user clicked.  Following the LogBase design ("the log is both
the write-ahead log and the storage"), this module re-founds session
durability on an append-only event log:

* :class:`EventLog` — CRC-framed, fsync-batched, segmented append-only log
  with torn-tail truncation on open.  A crash mid-append loses at most the
  torn final record; every intact prefix replays.
* :class:`EventLogStore` — a :class:`~repro.service.store.SessionStore`
  whose :meth:`~EventLogStore.save` appends a checkpoint event instead of
  re-serialising a blob, and whose :meth:`~EventLogStore.load` returns a
  *replay payload*: ``(seed, events, checkpoint pool reference)``.  The
  engine restores by replaying the feedback suffix through the same
  deterministic elicitation path a live session took.
* :func:`mine_click_prefixes` — frequency-ranks the constraint-set prefixes
  actually observed in the log, the substrate for warm-starting depth-2+
  pools (enumeration combinatorics do not apply to *observed* prefixes).

Events carry monotonic per-session sequence numbers (``seq``) and a store
clock timestamp (``ts``); a session snapshot degenerates to ``(log offset,
pool reference)``.  Retention is a single :meth:`EventLogStore.compact`
sweep: closed/expired sessions past the horizon are dropped from the log
segments and the pool table is mark-and-swept from the surviving references.
"""

from __future__ import annotations

import json
import os
import re
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core.packages import Package, PackageEvaluator
from ..core.preferences import PreferenceStore
from ..sampling.base import ConstraintSet
from .store import JsonFilePoolTable, SessionStore

# --------------------------------------------------------------------- events
EVENT_SESSION_CREATED = "session_created"
EVENT_RECOMMEND_SERVED = "recommend_served"
EVENT_FEEDBACK = "feedback"
EVENT_SESSION_TOUCHED = "session_touched"
EVENT_SESSION_SWAPPED = "session_swapped"
EVENT_SESSION_CLOSED = "session_closed"

#: The ``kind`` marker of the payload :meth:`EventLogStore.load` returns.
REPLAY_PAYLOAD_KIND = "eventlog-replay"
REPLAY_PAYLOAD_VERSION = 1

#: Frame header preceding every record: ``(payload_length, crc32(payload))``.
_FRAME = struct.Struct("<II")
_SEGMENT_RE = re.compile(r"^(\d{8})\.log$")


class EventLogCorruptionError(RuntimeError):
    """A sealed log segment failed CRC validation mid-stream.

    Torn *tails* (a crash mid-append on the final segment) are repaired
    silently by truncation; corruption anywhere else means the storage
    itself is damaged and replay refuses to guess.
    """


class ReplayDivergenceError(RuntimeError):
    """Replaying the log reproduced different state than the log recorded.

    Raised when a re-drawn exploration package differs from the logged one
    or a logged click is rejected by the rebuilt recommender — either means
    the deterministic path changed (catalog, config, or code) since the
    events were written, and the restored session must not serve.
    """


@dataclass(frozen=True)
class LogPosition:
    """Physical location of a record: ``(segment index, byte offset)``.

    Positions are stable until the next :meth:`EventLog.compact`, which may
    rewrite segments in place.
    """

    segment: int
    offset: int


@dataclass(frozen=True)
class LogCompactionStats:
    """What one :meth:`EventLog.compact` sweep reclaimed."""

    segments_rewritten: int
    segments_deleted: int
    events_dropped: int
    bytes_reclaimed: int


@dataclass(frozen=True)
class RetentionReport:
    """What one :meth:`EventLogStore.compact` retention pass reclaimed."""

    sessions_dropped: int
    events_dropped: int
    segments_rewritten: int
    segments_deleted: int
    bytes_reclaimed: int
    pools_collected: int


class EventLog:
    """Segmented, CRC-framed, fsync-batched append-only log.

    Records are JSON payloads framed by ``(length, crc32)`` headers and
    appended to the active segment through an unbuffered handle, so every
    accepted ``append`` survives a process crash; durability against power
    loss is batched — :meth:`flush` fsyncs every ``fsync_every`` appends.
    The active segment rolls at ``segment_max_bytes``; sealed segments are
    immutable except under :meth:`compact`, which rewrites them atomically.

    On open, the *final* segment is scanned and truncated to its longest
    valid prefix (``truncated_bytes`` records how much tail was torn off);
    an invalid record in a *sealed* segment raises
    :class:`EventLogCorruptionError`.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync_every: int = 64,
        segment_max_bytes: int = 4 << 20,
    ) -> None:
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        if segment_max_bytes < 1:
            raise ValueError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        self.directory = directory
        self.fsync_every = int(fsync_every)
        self.segment_max_bytes = int(segment_max_bytes)
        self.truncated_bytes = 0
        self._appends_since_sync = 0
        os.makedirs(directory, exist_ok=True)
        self._segments = self._discover_segments() or [0]
        self._repair_tail()
        self._active = self._segments[-1]
        # buffering=0: writes reach the OS page cache immediately, so an
        # accepted append survives a process crash even between fsync batches.
        self._handle = open(self._segment_path(self._active), "ab", buffering=0)

    # ------------------------------------------------------------- file layout
    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, f"{index:08d}.log")

    def _discover_segments(self) -> List[int]:
        indices = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match is not None:
                indices.append(int(match.group(1)))
        return sorted(indices)

    # ---------------------------------------------------------------- framing
    @staticmethod
    def _parse(data: bytes) -> Tuple[List[Tuple[dict, int]], int]:
        """Decode ``data`` into ``([(event, offset), ...], valid_prefix_len)``.

        Stops at the first frame whose header is short, whose payload is
        short, whose CRC mismatches, or whose payload is not valid JSON;
        everything before that point is the valid prefix.
        """
        events: List[Tuple[dict, int]] = []
        pos = 0
        size = len(data)
        while pos + _FRAME.size <= size:
            length, crc = _FRAME.unpack_from(data, pos)
            start = pos + _FRAME.size
            end = start + length
            if end > size:
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break
            try:
                event = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            events.append((event, pos))
            pos = end
        return events, pos

    def _read_segment(self, index: int) -> bytes:
        path = self._segment_path(index)
        if not os.path.exists(path):
            return b""
        with open(path, "rb") as handle:
            return handle.read()

    def _repair_tail(self) -> None:
        tail = self._segments[-1]
        data = self._read_segment(tail)
        _, valid = self._parse(data)
        if valid < len(data):
            self.truncated_bytes = len(data) - valid
            with open(self._segment_path(tail), "r+b") as handle:
                handle.truncate(valid)

    # --------------------------------------------------------------- appending
    def append(self, event: dict) -> LogPosition:
        """Frame and append one event; returns its :class:`LogPosition`."""
        payload = json.dumps(event, separators=(",", ":")).encode("utf-8")
        offset = self._handle.tell()
        if offset >= self.segment_max_bytes and offset > 0:
            self.roll()
            offset = 0
        self._handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)) + payload)
        self._appends_since_sync += 1
        if self._appends_since_sync >= self.fsync_every:
            self.flush()
        return LogPosition(self._active, offset)

    def flush(self) -> None:
        """fsync the active segment (called automatically every batch)."""
        os.fsync(self._handle.fileno())
        self._appends_since_sync = 0

    def roll(self) -> None:
        """Seal the active segment and start a new one."""
        self.flush()
        self._handle.close()
        self._active += 1
        self._segments.append(self._active)
        self._handle = open(self._segment_path(self._active), "ab", buffering=0)

    # ----------------------------------------------------------------- reading
    def replay(self) -> Iterator[Tuple[dict, LogPosition]]:
        """Yield every intact event in log order with its position.

        An invalid record in a sealed segment raises
        :class:`EventLogCorruptionError`; the final (active) segment was
        already truncated to its valid prefix on open.
        """
        if self._appends_since_sync:
            self.flush()
        for index in list(self._segments):
            data = self._read_segment(index)
            events, valid = self._parse(data)
            if valid < len(data) and index != self._active:
                raise EventLogCorruptionError(
                    f"sealed segment {self._segment_path(index)} is corrupt at "
                    f"byte {valid} of {len(data)}"
                )
            for event, offset in events:
                yield event, LogPosition(index, offset)

    # -------------------------------------------------------------- compaction
    def compact(self, keep: Callable[[dict], bool]) -> LogCompactionStats:
        """Drop events failing ``keep`` from every segment.

        The active segment is rolled first (when non-empty) so the whole
        backlog is sealed and compactable; each sealed segment is then
        rewritten atomically (temp file + ``os.replace``) when any of its
        events are dropped, and deleted outright when none survive.
        """
        if self._handle.tell() > 0:
            self.roll()
        rewritten = deleted = dropped = 0
        reclaimed = 0
        for index in list(self._segments):
            if index == self._active:
                continue
            data = self._read_segment(index)
            events, _ = self._parse(data)
            kept = [event for event, _ in events if keep(event)]
            if len(kept) == len(events):
                continue
            dropped += len(events) - len(kept)
            path = self._segment_path(index)
            if not kept:
                reclaimed += len(data)
                os.remove(path)
                self._segments.remove(index)
                deleted += 1
                continue
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                for event in kept:
                    payload = json.dumps(event, separators=(",", ":")).encode(
                        "utf-8"
                    )
                    handle.write(
                        _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
                    )
                handle.flush()
                os.fsync(handle.fileno())
            reclaimed += len(data) - os.path.getsize(tmp)
            os.replace(tmp, path)
            rewritten += 1
        return LogCompactionStats(
            segments_rewritten=rewritten,
            segments_deleted=deleted,
            events_dropped=dropped,
            bytes_reclaimed=reclaimed,
        )

    # ------------------------------------------------------------- accounting
    def total_bytes(self) -> int:
        """Bytes held across all segments."""
        return sum(
            os.path.getsize(self._segment_path(index))
            for index in self._segments
            if os.path.exists(self._segment_path(index))
        )

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Flush and close the active segment handle."""
        self.flush()
        self._handle.close()


class _SessionRecord:
    """In-memory index entry for one session id, rebuilt from the log."""

    __slots__ = (
        "created",
        "events",
        "checkpoint",
        "checkpoint_seq",
        "last_access",
        "closed",
        "last_ts",
        "seq",
        "position",
    )

    def __init__(self) -> None:
        self.created: Optional[dict] = None
        self.events: List[dict] = []
        self.checkpoint: Optional[dict] = None
        self.checkpoint_seq = 0
        self.last_access: Optional[float] = None
        self.closed = False
        self.last_ts = 0.0
        self.seq = 0
        self.position: Optional[LogPosition] = None


class EventLogStore(SessionStore):
    """A :class:`SessionStore` whose source of truth is an append-only log.

    Layout under ``directory``: ``events/`` holds the :class:`EventLog`
    segments; ``pools/`` is a :class:`JsonFilePoolTable` for the
    content-addressed shared pools.  The per-session index (created event,
    served/feedback history, latest checkpoint, last access) is rebuilt by
    replaying the log on open — there is no second database to keep in sync.

    ``save`` appends an :data:`EVENT_SESSION_SWAPPED` checkpoint event;
    ``load`` returns a *replay payload* (``kind == "eventlog-replay"``)
    that the engine's restore path replays through the deterministic
    elicitation path.  ``delete`` appends a tombstone.  Ordinary snapshot
    blobs saved through this store (sessions imported via the public
    ``restore``) round-trip unchanged as the payload's ``base``.

    ``clock`` stamps event ``ts`` fields and drives :meth:`compact`
    retention; it is injectable for tests.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync_every: int = 64,
        segment_max_bytes: int = 4 << 20,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.directory = directory
        self.clock = clock
        os.makedirs(directory, exist_ok=True)
        self.log = EventLog(
            os.path.join(directory, "events"),
            fsync_every=fsync_every,
            segment_max_bytes=segment_max_bytes,
        )
        self._pool_table = JsonFilePoolTable(os.path.join(directory, "pools"))
        self._records: Dict[str, _SessionRecord] = {}
        self._append_seconds = None
        for event, position in self.log.replay():
            self._index(event, position)

    def attach_telemetry(self, telemetry) -> None:
        """Record per-append latency in ``telemetry``'s metrics registry."""
        self._append_seconds = telemetry.registry.histogram(
            "repro_eventlog_append_seconds",
            "Wall-clock seconds per event-log append (framing + write + index)",
        )

    # ---------------------------------------------------------------- indexing
    def _index(self, event: dict, position: LogPosition) -> None:
        session_id = event.get("session_id")
        etype = event.get("type")
        if session_id is None or etype is None:
            return
        record = self._records.get(session_id)
        if record is None or (
            record.closed
            and etype in (EVENT_SESSION_CREATED, EVENT_SESSION_SWAPPED)
        ):
            # A closed id seeing a fresh create (id reuse) or a swapped blob
            # (re-imported session) starts a new logical incarnation.
            seq_floor = 0 if record is None else record.seq
            record = _SessionRecord()
            record.seq = seq_floor
            self._records[session_id] = record
        record.seq = int(event.get("seq", record.seq + 1))
        record.last_ts = float(event.get("ts", record.last_ts))
        record.position = position
        if etype == EVENT_SESSION_CREATED:
            record.created = event
        elif etype in (EVENT_RECOMMEND_SERVED, EVENT_FEEDBACK):
            record.events.append(event)
        elif etype == EVENT_SESSION_TOUCHED:
            record.last_access = float(event["last_access"])
        elif etype == EVENT_SESSION_SWAPPED:
            record.checkpoint = event["payload"]
            record.checkpoint_seq = record.seq
            if event.get("last_access") is not None:
                record.last_access = float(event["last_access"])
        elif etype == EVENT_SESSION_CLOSED:
            record.closed = True

    def _append(self, session_id: str, etype: str, **data) -> dict:
        record = self._records.get(session_id)
        seq = 1 if record is None else record.seq + 1
        event = {
            "type": etype,
            "session_id": session_id,
            "seq": seq,
            "ts": self.clock(),
            **data,
        }
        started = time.perf_counter()
        position = self.log.append(event)
        self._index(event, position)
        if self._append_seconds is not None:
            self._append_seconds.observe(time.perf_counter() - started)
        return event

    # ------------------------------------------------------ engine append API
    def log_session_created(
        self, session_id: str, *, seed: int, created_at: float
    ) -> None:
        """Record a session birth (its seed is everything replay needs)."""
        self._append(
            session_id, EVENT_SESSION_CREATED, seed=seed, created_at=created_at
        )

    def log_round_served(
        self,
        session_id: str,
        *,
        recommended: List[List[int]],
        random_packages: List[List[int]],
    ) -> None:
        """Record one served round (top-k + exploration package item lists)."""
        self._append(
            session_id,
            EVENT_RECOMMEND_SERVED,
            recommended=recommended,
            random=random_packages,
        )

    def log_feedback(self, session_id: str, *, clicked: List[int]) -> None:
        """Record a click (the item list of the clicked package)."""
        self._append(session_id, EVENT_FEEDBACK, clicked=clicked)

    def log_touch(self, session_id: str, *, last_access: float) -> None:
        """Record a cheap access-time touch for a clean swap-out.

        This is what lets TTL expiry see the true ``_last_access`` of
        sessions whose dirty flag allowed the snapshot write to be skipped.
        """
        self._append(session_id, EVENT_SESSION_TOUCHED, last_access=last_access)

    # --------------------------------------------------- SessionStore interface
    def save(self, session_id: str, payload: dict) -> None:
        """Append a checkpoint event holding ``payload``.

        The manager's ``_last_access`` stowaway key is lifted into the event
        itself so the index tracks access time without polluting the
        checkpoint. The payload reference is retained by the in-memory index
        (the engine builds a fresh snapshot per swap-out, so no aliasing).
        """
        payload = dict(payload)
        last_access = payload.pop("_last_access", None)
        self._append(
            session_id,
            EVENT_SESSION_SWAPPED,
            last_access=last_access,
            payload=payload,
        )

    def load(self, session_id: str) -> Optional[dict]:
        record = self._records.get(session_id)
        if record is None or record.closed:
            return None
        checkpoint = record.checkpoint
        checkpoint_seq = record.checkpoint_seq
        base: Optional[dict] = None
        if checkpoint is not None and "rng_state" in checkpoint:
            # A full snapshot blob (imported via the public restore): its
            # history predates the log, so it stays the base and only the
            # suffix logged after it is replayed on top.
            base, checkpoint = checkpoint, None
        if record.created is None and base is None:
            return None  # no seed to replay from (e.g. only touch events)
        if base is not None:
            events = [e for e in record.events if e["seq"] > checkpoint_seq]
        else:
            events = list(record.events)
        created = record.created or {}
        payload = {
            "kind": REPLAY_PAYLOAD_KIND,
            "version": REPLAY_PAYLOAD_VERSION,
            "session_id": session_id,
            "seed": created.get("seed", (base or {}).get("seed")),
            "created_at": created.get("created_at", (base or {}).get("created_at")),
            "base": base,
            "checkpoint": checkpoint,
            "checkpoint_seq": checkpoint_seq,
            "events": events,
            "log_position": (
                [record.position.segment, record.position.offset]
                if record.position is not None
                else None
            ),
        }
        if record.last_access is not None:
            payload["_last_access"] = record.last_access
        return json.loads(json.dumps(payload))

    def delete(self, session_id: str) -> bool:
        record = self._records.get(session_id)
        if record is None or record.closed:
            return False
        self._append(session_id, EVENT_SESSION_CLOSED)
        return True

    def list_ids(self) -> List[str]:
        return sorted(
            session_id
            for session_id, record in self._records.items()
            if not record.closed
            and (record.created is not None or record.checkpoint is not None)
        )

    # -------------------------------------------------------------- pool table
    def save_pool(self, pool_key: str, payload: dict) -> None:
        self._pool_table.save(pool_key, payload)

    def load_pool(self, pool_key: str) -> Optional[dict]:
        return self._pool_table.load(pool_key)

    def has_pool(self, pool_key: str) -> bool:
        return self._pool_table.has(pool_key)

    def delete_pool(self, pool_key: str) -> bool:
        return self._pool_table.delete(pool_key)

    def list_pool_keys(self) -> List[str]:
        return self._pool_table.keys()

    def gc_pools(self, live_refs=None) -> int:
        """Mark-and-sweep the pool table from live log references.

        The default mark set is the pool reference of every non-closed
        session's latest checkpoint — derived from the log index, with no
        snapshot loads.
        """
        if live_refs is None:
            live_refs = (
                self.pool_ref_of(record.checkpoint)
                for record in self._records.values()
                if not record.closed
            )
        return super().gc_pools(live_refs)

    # --------------------------------------------------------------- retention
    def compact(
        self,
        retention_seconds: float = 0.0,
        *,
        ttl_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> RetentionReport:
        """One online retention sweep over the log and the pool table.

        Drops every event belonging to (a) closed sessions whose last event
        is older than ``retention_seconds``, and (b) — when ``ttl_seconds``
        is given — open sessions idle (by store clock) for at least that
        long.  Segment compaction and :meth:`gc_pools` run in the same pass,
        so one call replaces the offline mark-and-sweep as the default.
        """
        if now is None:
            now = self.clock()
        dead = set()
        for session_id, record in self._records.items():
            if record.closed:
                if now - record.last_ts >= retention_seconds:
                    dead.add(session_id)
            elif ttl_seconds is not None and now - record.last_ts >= ttl_seconds:
                dead.add(session_id)
        stats = self.log.compact(lambda event: event.get("session_id") not in dead)
        for session_id in dead:
            self._records.pop(session_id, None)
        pools_collected = self.gc_pools()
        return RetentionReport(
            sessions_dropped=len(dead),
            events_dropped=stats.events_dropped,
            segments_rewritten=stats.segments_rewritten,
            segments_deleted=stats.segments_deleted,
            bytes_reclaimed=stats.bytes_reclaimed,
            pools_collected=pools_collected,
        )

    # -------------------------------------------------------------- inspection
    def iter_session_histories(self) -> Iterator[Tuple[str, List[dict]]]:
        """Yield ``(session_id, served/feedback events)`` for every session.

        Closed sessions are included — their click prefixes are exactly the
        observations prefix mining wants.
        """
        for session_id in sorted(self._records):
            yield session_id, list(self._records[session_id].events)

    def describe(self) -> dict:
        """Log-level counters for :class:`EngineStats` / dashboards."""
        live = sum(1 for r in self._records.values() if not r.closed)
        return {
            "segments": self.log.segment_count,
            "log_bytes": self.log.total_bytes(),
            "sessions_live": live,
            "sessions_closed": len(self._records) - live,
            "events_indexed": sum(
                len(r.events) for r in self._records.values()
            ),
            "truncated_bytes_on_open": self.log.truncated_bytes,
        }

    def total_bytes(self) -> int:
        return self.log.total_bytes() + self._pool_table.total_bytes()

    def flush(self) -> None:
        """fsync any batched appends."""
        self.log.flush()

    def close(self) -> None:
        """Flush and close the log."""
        self.log.close()


# ------------------------------------------------------------- prefix mining
@dataclass(frozen=True, eq=False)
class PrefixStat:
    """One observed click-prefix constraint set, frequency-ranked.

    ``sessions`` counts distinct sessions whose feedback passed through this
    fingerprint; ``depth`` is the smallest click depth at which it was
    reached.
    """

    fingerprint: str
    constraints: ConstraintSet
    depth: int
    sessions: int


def mine_click_prefixes(
    store: EventLogStore,
    evaluator: PackageEvaluator,
    *,
    max_depth: Optional[int] = None,
) -> List[PrefixStat]:
    """Frequency-rank the constraint-set prefixes observed in the log.

    Re-derives, for every logged session, the constraint set after each
    click — the same ``PreferenceStore`` → transitive reduction →
    fingerprint path live sessions take — and counts how many sessions
    passed through each fingerprint.  The result is sorted most-frequent
    first (ties: shallower depth, then fingerprint), ready for
    ``WarmStartPlanner.warm_from_log``: observed prefixes sidestep the
    enumeration combinatorics that make exhaustive depth-2+ warming
    intractable.
    """
    mined: Dict[str, dict] = {}
    for _, events in store.iter_session_histories():
        preferences = PreferenceStore(evaluator.num_features, on_cycle="drop")
        presented: List[Package] = []
        depth = 0
        seen: set = set()
        for event in events:
            if event["type"] == EVENT_RECOMMEND_SERVED:
                presented = [
                    Package(tuple(int(i) for i in items))
                    for items in (
                        list(event.get("recommended") or [])
                        + list(event.get("random") or [])
                    )
                ]
            elif event["type"] == EVENT_FEEDBACK:
                if not presented:
                    continue
                clicked = Package(tuple(int(i) for i in event["clicked"]))
                preferences.add_click_feedback(evaluator, clicked, presented)
                depth += 1
                if max_depth is not None and depth > max_depth:
                    break
                constraints = ConstraintSet.from_store(preferences, reduced=True)
                fingerprint = constraints.fingerprint()
                entry = mined.setdefault(
                    fingerprint,
                    {"constraints": constraints, "depth": depth, "sessions": 0},
                )
                entry["depth"] = min(entry["depth"], depth)
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    entry["sessions"] += 1
    stats = [
        PrefixStat(
            fingerprint=fingerprint,
            constraints=entry["constraints"],
            depth=entry["depth"],
            sessions=entry["sessions"],
        )
        for fingerprint, entry in mined.items()
    ]
    stats.sort(key=lambda s: (-s.sessions, s.depth, s.fingerprint))
    return stats
