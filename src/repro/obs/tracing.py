"""Request tracing: span trees, JSON-lines export, slow-request sampling.

A *trace* is the tree of spans covering one request: dispatcher admission →
``recommend``/``recommend_many`` → pool provisioning (adapt / refill /
maintain / fill — including process-shard fills reconstructed from worker
stats) → batched top-k search → event-log append.  Spans carry wall-clock
start, perf-counter duration, free-form attributes, and parent links.

The tracer is deliberately **single-threaded**: the serving path that opens
and closes spans runs on one thread (the engine's synchronous core; the
dispatcher's asyncio loop is also one thread).  Work fanned out to shard
worker threads/processes is not traced in-flight; instead the engine
records *reconstructed* child spans from the stats each fill returns
(worker PID, fill seconds).  That keeps the hot instrumentation free of
locks — the thread-safety burden lives in :mod:`repro.obs.metrics`.

Finished traces go to a :class:`TraceSink` after a tail-based sampling
decision: traces whose root span is slower than ``slow_ms``, errored, or
flagged (``mark_keep`` — alarms do this) are always kept; the rest are
count-sampled (every ``sample_every``-th).  Trace and span ids are
deterministic counters, so identically seeded runs produce identical
trace files.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "InMemoryTraceSink",
    "JsonLinesTraceSink",
    "Span",
    "TraceSink",
    "Tracer",
]


class Span:
    """One timed operation inside a trace."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_unix",
        "start_perf",
        "duration_seconds",
        "attrs",
        "status",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_unix: float,
        start_perf: float,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_unix = start_unix
        self.start_perf = start_perf
        self.duration_seconds: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.status = "ok"

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def as_dict(self, root_start_perf: float) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": round((self.start_perf - root_start_perf) * 1e3, 4),
            "duration_ms": round((self.duration_seconds or 0.0) * 1e3, 4),
            "status": self.status,
            "attrs": self.attrs,
        }


class TraceSink:
    """Destination for finished (sampled-in) traces."""

    def emit(self, trace: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class InMemoryTraceSink(TraceSink):
    """Keep the last ``max_traces`` traces in memory (benches, tests)."""

    def __init__(self, max_traces: int = 256) -> None:
        self.max_traces = max_traces
        self.traces: List[Dict[str, Any]] = []
        self.dropped = 0

    def emit(self, trace: Dict[str, Any]) -> None:
        self.traces.append(trace)
        if len(self.traces) > self.max_traces:
            del self.traces[0]
            self.dropped += 1

    def drain(self) -> List[Dict[str, Any]]:
        drained, self.traces = self.traces, []
        return drained


class JsonLinesTraceSink(TraceSink):
    """Append one JSON object per trace to a file (the export format)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self.emitted = 0

    def emit(self, trace: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(trace, sort_keys=True) + "\n")
        self._handle.flush()
        self.emitted += 1

    def close(self) -> None:
        self._handle.close()


class Tracer:
    """Builds span trees for one request at a time and emits them to a sink.

    ``span(name, **attrs)`` is a context manager; the first span opened when
    the stack is empty becomes the trace root, and closing it finalises the
    trace, applies the sampling decision, and emits.  ``start_span`` /
    ``end_span`` exist for call sites that cannot use ``with`` (backdated
    dispatcher queue spans, reconstructed worker fills).
    """

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        *,
        slow_ms: float = 50.0,
        sample_every: int = 10,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sink = sink or InMemoryTraceSink()
        self.slow_ms = slow_ms
        self.sample_every = sample_every
        self.traces_finished = 0
        self.traces_kept = 0
        self.traces_sampled_out = 0
        self._trace_counter = 0
        self._span_counter = 0
        self._stack: List[Span] = []
        self._finished: List[Span] = []
        self._keep_flag = False

    # -- span lifecycle ----------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, **attrs: Any) -> Span:
        if self._stack:
            root = self._stack[0]
            trace_id = root.trace_id
            parent_id = self._stack[-1].span_id
        else:
            self._trace_counter += 1
            self._span_counter = 0
            self._finished = []
            self._keep_flag = False
            trace_id = f"t-{self._trace_counter:06d}"
            parent_id = None
        self._span_counter += 1
        span = Span(
            name,
            trace_id,
            f"s-{self._span_counter:04d}",
            parent_id,
            time.time(),
            time.perf_counter(),
        )
        if attrs:
            span.attrs.update(attrs)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack.pop()
        if span.duration_seconds is None:
            span.duration_seconds = time.perf_counter() - span.start_perf
        self._finished.append(span)
        if not self._stack:
            self._finish_trace(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = self.start_span(name, **attrs)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            self.end_span(span)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op outside one)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def record_child(
        self,
        name: str,
        duration_seconds: float,
        *,
        start_perf: Optional[float] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Add an already-finished child span under the current span.

        This is how process-shard fills appear in traces: the work ran in a
        worker process, so the engine reconstructs the span from the stats
        the worker returned (duration, PID) after the fact.  Returns the
        span, or ``None`` when no trace is open.
        """
        if not self._stack:
            return None
        parent = self._stack[-1]
        self._span_counter += 1
        now_perf = time.perf_counter()
        started = start_perf if start_perf is not None else (
            now_perf - duration_seconds
        )
        span = Span(
            name,
            parent.trace_id,
            f"s-{self._span_counter:04d}",
            parent.span_id,
            time.time() - duration_seconds,
            started,
        )
        span.duration_seconds = duration_seconds
        span.attrs.update(attrs)
        self._finished.append(span)
        return span

    def mark_keep(self) -> None:
        """Force the open trace past sampling (alarms always keep traces)."""
        self._keep_flag = True

    # -- trace completion --------------------------------------------------

    def _finish_trace(self, root: Span) -> None:
        self.traces_finished += 1
        duration_ms = (root.duration_seconds or 0.0) * 1e3
        if self._keep_flag:
            reason = "alarm"
        elif root.status != "ok" or any(
            span.status != "ok" for span in self._finished
        ):
            reason = "error"
        elif duration_ms >= self.slow_ms:
            reason = "slow"
        elif (self.traces_finished % self.sample_every) == 0:
            reason = "sampled"
        else:
            reason = None
        finished, self._finished = self._finished, []
        self._keep_flag = False
        if reason is None:
            self.traces_sampled_out += 1
            return
        self.traces_kept += 1
        finished.sort(key=lambda span: (span.start_perf, span.span_id))
        self.sink.emit(
            {
                "trace_id": root.trace_id,
                "root": root.name,
                "start_unix": root.start_unix,
                "duration_ms": round(duration_ms, 4),
                "kept_because": reason,
                "spans": [
                    span.as_dict(root.start_perf) for span in finished
                ],
            }
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "traces_finished": self.traces_finished,
            "traces_kept": self.traces_kept,
            "traces_sampled_out": self.traces_sampled_out,
            "slow_ms": self.slow_ms,
            "sample_every": self.sample_every,
            "open_spans": len(self._stack),
        }
