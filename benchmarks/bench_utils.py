"""Helpers shared by the benchmark modules (results persistence)."""

from __future__ import annotations

import os

#: Directory where each figure benchmark writes its regenerated table/series.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def write_results(name: str, text: str) -> str:
    """Persist a regenerated figure table under ``results/`` and return its path.

    The benchmark harness also prints the same text, but pytest captures
    stdout, so the file is the durable record referenced by EXPERIMENTS.md.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path
