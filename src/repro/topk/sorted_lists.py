"""Per-feature sorted item lists with round-robin access (§4, Algorithm 2).

``Top-k-Pkg`` accesses items "in their descending utility order" per feature:
for a feature with a positive weight the list is sorted by decreasing value,
for a negative weight by increasing value (a sorted column can be read in
either direction, so only one physical ordering per feature is kept).  The
*boundary value vector* τ holds, per feature, the value of the last accessed
item of that feature's list — i.e. the best value any *unaccessed* item can
still contribute on that feature.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.items import ItemCatalog
from repro.utils.validation import require_vector


class SortedItemLists:
    """Round-robin access over per-feature desirability-sorted item lists.

    Parameters
    ----------
    catalog:
        The item catalog.
    weights:
        The weight vector ``w``; the sign of each component decides the sort
        direction of the corresponding list.  Features with zero weight do not
        get a list (they cannot influence utility).
    """

    def __init__(self, catalog: ItemCatalog, weights: np.ndarray) -> None:
        weights = require_vector(weights, "weights", length=catalog.num_features)
        self.catalog = catalog
        self.weights = weights
        self.active_features: List[int] = [
            j for j in range(catalog.num_features) if weights[j] != 0.0
        ]
        # One ordering per active feature: best item for that feature first.
        self._orders: Dict[int, np.ndarray] = {}
        for j in self.active_features:
            descending = weights[j] > 0
            self._orders[j] = catalog.argsort_feature(j, descending=descending)
        self._positions: Dict[int, int] = {j: 0 for j in self.active_features}
        self._last_value: Dict[int, Optional[float]] = {j: None for j in self.active_features}
        self._accessed: set = set()
        self._cursor = 0

    # ------------------------------------------------------------------ basics
    @property
    def num_accessed(self) -> int:
        """Number of distinct items accessed so far."""
        return len(self._accessed)

    def accessed_items(self) -> List[int]:
        """Indices of all items accessed so far (unordered)."""
        return list(self._accessed)

    def exhausted(self) -> bool:
        """Whether every list has been fully read."""
        return all(
            self._positions[j] >= self.catalog.num_items for j in self.active_features
        )

    # ------------------------------------------------------------------ access
    def next_item(self) -> Optional[int]:
        """Access the next *new* item in round-robin order over the lists.

        Items already returned from another list are skipped (but still move
        that list's boundary value forward).  Returns ``None`` when all lists
        are exhausted.
        """
        if not self.active_features:
            return None
        while not self.exhausted():
            feature = self.active_features[self._cursor % len(self.active_features)]
            self._cursor += 1
            position = self._positions[feature]
            if position >= self.catalog.num_items:
                continue
            item_index = int(self._orders[feature][position])
            self._positions[feature] = position + 1
            value = self.catalog.features[item_index, feature]
            self._last_value[feature] = 0.0 if np.isnan(value) else float(value)
            if item_index in self._accessed:
                # Already produced via another list; keep scanning.
                continue
            self._accessed.add(item_index)
            return item_index
        return None

    # ---------------------------------------------------------------- boundary
    def boundary_vector(self) -> np.ndarray:
        """The boundary value vector τ.

        For each active feature, τ carries the value of the last accessed item
        in that feature's list (or the best possible value if the list has not
        been read yet); inactive (zero-weight) features are set to 0 since they
        cannot contribute utility either way.  An imaginary item with feature
        vector τ therefore upper-bounds the utility contribution of any
        unaccessed item.
        """
        tau = np.zeros(self.catalog.num_features)
        for j in self.active_features:
            if self._last_value[j] is None:
                order = self._orders[j]
                best_value = self.catalog.features[int(order[0]), j]
                tau[j] = 0.0 if np.isnan(best_value) else float(best_value)
            else:
                tau[j] = self._last_value[j]
        return tau

    def exhausted_boundary_vector(self) -> np.ndarray:
        """τ once all items are accessed: the *worst* value per active feature.

        Used to signal that no unaccessed item remains: extending a package
        with this vector can never look better than extending it with a real
        remaining item (there are none).
        """
        tau = np.zeros(self.catalog.num_features)
        for j in self.active_features:
            column = self.catalog.feature_column(j, fill_null=0.0)
            tau[j] = float(column.min()) if self.weights[j] > 0 else float(column.max())
        return tau
