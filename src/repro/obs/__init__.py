"""Zero-dependency telemetry: metrics registry, request tracing, alarms.

The serving layers (engine, dispatcher, pool repository, event log) grew a
pile of ad-hoc stats dataclasses with no latency distributions, no
per-request causality and no export surface.  This package is the unified
substrate underneath them:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / log-bucketed :class:`Histogram`
  instruments (p50/p95/p99 from geometric buckets), optionally labeled
  into families, with a Prometheus text exposition renderer.
* :mod:`repro.obs.tracing` — a :class:`Tracer` building per-request span
  trees (dispatcher admission → engine → pool fill → batch search →
  event-log append), emitted as JSON-lines with slow-request sampling:
  traces slower than a threshold (or carrying an alarm) are always kept,
  the rest are count-sampled.
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the serving
  code holds: one registry + one tracer + labeled ``alarm()`` events
  (replay divergence, dispatcher shed/degrade, ESS-gate rejections,
  worker restarts).  A disabled instance costs one attribute check per
  instrumentation site, which is what keeps the telemetry-on overhead
  under the CI-gated 5% budget (``benchmarks/test_bench_obs.py``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledFamily,
    MetricsRegistry,
)
from repro.obs.tracing import (
    InMemoryTraceSink,
    JsonLinesTraceSink,
    Span,
    TraceSink,
    Tracer,
)
from repro.obs.telemetry import Telemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemoryTraceSink",
    "JsonLinesTraceSink",
    "LabeledFamily",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "TraceSink",
    "Tracer",
]
