"""Tests for the noise model (§7) and package-schema predicates (§7)."""

import numpy as np
import pytest

from repro.core.items import ItemCatalog
from repro.core.noise import NoiseModel
from repro.core.packages import Package
from repro.core.predicates import (
    CallablePredicate,
    MaxCountPredicate,
    MinCountPredicate,
    PredicateSet,
    SizePredicate,
)


class TestNoiseModel:
    def test_rejection_probability_formula(self):
        noise = NoiseModel(psi=0.8)
        assert noise.rejection_probability(0) == 0.0
        assert noise.rejection_probability(1) == pytest.approx(0.8)
        assert noise.rejection_probability(2) == pytest.approx(1 - 0.2**2)
        assert noise.rejection_probability(5) == pytest.approx(1 - 0.2**5)

    def test_noise_free_model(self):
        noise = NoiseModel(psi=1.0)
        assert noise.is_noise_free
        assert noise.should_reject(1)
        assert not noise.should_reject(0)

    def test_psi_zero_never_rejects(self):
        noise = NoiseModel(psi=0.0)
        assert not noise.should_reject(10, rng=0)

    def test_invalid_psi_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(psi=1.2)
        with pytest.raises(ValueError):
            NoiseModel(psi=-0.1)

    def test_negative_violations_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(0.5).rejection_probability(-1)

    def test_should_reject_statistics(self):
        noise = NoiseModel(psi=0.5)
        rng = np.random.default_rng(0)
        rejections = sum(noise.should_reject(1, rng) for _ in range(5000))
        assert 0.45 < rejections / 5000 < 0.55

    def test_corrupt_choice_noise_free_returns_best(self):
        assert NoiseModel(1.0).corrupt_choice(2, 5, rng=0) == 2

    def test_corrupt_choice_statistics(self):
        noise = NoiseModel(psi=0.6)
        rng = np.random.default_rng(1)
        picks = [noise.corrupt_choice(0, 4, rng) for _ in range(5000)]
        best_rate = picks.count(0) / len(picks)
        # best chosen with probability psi + (1-psi)/4 = 0.7
        assert 0.65 < best_rate < 0.75

    def test_corrupt_choice_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(0.5).corrupt_choice(0, 0)
        with pytest.raises(ValueError):
            NoiseModel(0.5).corrupt_choice(5, 3)


@pytest.fixture
def predicate_catalog():
    # Feature 0 encodes a "genre" score; items 0-2 are "novels" (value >= 0.5).
    features = np.array([[0.9, 0.1], [0.8, 0.2], [0.6, 0.3], [0.1, 0.9], [0.2, 0.8]])
    return ItemCatalog(features)


class TestCountingPredicates:
    def test_min_count_with_item_list(self, predicate_catalog):
        predicate = MinCountPredicate(2, matching_items=[0, 1, 2])
        assert predicate.satisfied_by(Package.of([0, 1, 3]), predicate_catalog)
        assert not predicate.satisfied_by(Package.of([0, 3, 4]), predicate_catalog)

    def test_min_count_with_condition(self, predicate_catalog):
        predicate = MinCountPredicate(1, item_condition=lambda values: values[0] >= 0.5)
        assert predicate.satisfied_by(Package.of([2, 3]), predicate_catalog)
        assert not predicate.satisfied_by(Package.of([3, 4]), predicate_catalog)

    def test_max_count(self, predicate_catalog):
        predicate = MaxCountPredicate(1, matching_items=[0, 1, 2])
        assert predicate.satisfied_by(Package.of([0, 3]), predicate_catalog)
        assert not predicate.satisfied_by(Package.of([0, 1]), predicate_catalog)

    def test_exactly_one_matching_spec_required(self):
        with pytest.raises(ValueError):
            MinCountPredicate(1)
        with pytest.raises(ValueError):
            MinCountPredicate(1, matching_items=[0], item_condition=lambda v: True)

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            MinCountPredicate(-1, matching_items=[0])
        with pytest.raises(ValueError):
            MaxCountPredicate(-1, matching_items=[0])


class TestOtherPredicates:
    def test_size_predicate(self, predicate_catalog):
        predicate = SizePredicate(min_size=2, max_size=3)
        assert not predicate.satisfied_by(Package.of([0]), predicate_catalog)
        assert predicate.satisfied_by(Package.of([0, 1]), predicate_catalog)
        assert not predicate.satisfied_by(Package.of([0, 1, 2, 3]), predicate_catalog)

    def test_size_predicate_validation(self):
        with pytest.raises(ValueError):
            SizePredicate(min_size=0)
        with pytest.raises(ValueError):
            SizePredicate(min_size=3, max_size=2)

    def test_callable_predicate(self, predicate_catalog):
        predicate = CallablePredicate(lambda package, catalog: 4 not in package, "no-item-4")
        assert predicate.satisfied_by(Package.of([0, 1]), predicate_catalog)
        assert not predicate.satisfied_by(Package.of([4]), predicate_catalog)

    def test_predicate_set_conjunction(self, predicate_catalog):
        predicates = PredicateSet([
            MinCountPredicate(1, matching_items=[0, 1, 2]),
            SizePredicate(min_size=2),
        ])
        assert len(predicates) == 2
        assert predicates.satisfied_by(Package.of([0, 3]), predicate_catalog)
        assert not predicates.satisfied_by(Package.of([0]), predicate_catalog)
        assert not predicates.satisfied_by(Package.of([3, 4]), predicate_catalog)

    def test_predicate_set_add_chains(self, predicate_catalog):
        predicates = PredicateSet().add(SizePredicate(min_size=1)).add(
            MaxCountPredicate(5, matching_items=[0])
        )
        assert len(list(predicates)) == 2
        assert predicates.satisfied_by(Package.of([0]), predicate_catalog)

    def test_empty_predicate_set_accepts_everything(self, predicate_catalog):
        assert PredicateSet().satisfied_by(Package.of([4]), predicate_catalog)
