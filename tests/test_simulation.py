"""Tests for simulated users and closed-loop elicitation sessions."""

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig, PackageRecommender
from repro.core.noise import NoiseModel
from repro.core.packages import Package
from repro.core.profiles import AggregateProfile
from repro.core.utility import LinearUtility
from repro.simulation.session import ElicitationSession
from repro.simulation.user import SimulatedUser


class TestSimulatedUser:
    def test_clicks_best_presented_package(self, small_evaluator):
        user = SimulatedUser(LinearUtility([1.0, 0.0, 0.0, 0.0]), small_evaluator)
        presented = [Package.of([0]), Package.of([1]), Package.of([2])]
        best = max(presented, key=lambda p: small_evaluator.utility(p, user.true_utility.weights))
        assert user.click(presented) == best

    def test_best_presented_index_tie_break(self, small_evaluator):
        user = SimulatedUser(LinearUtility([0.0, 0.0, 0.0, 0.0]), small_evaluator)
        presented = [Package.of([5]), Package.of([1])]
        # Equal utility: the package with the smaller id wins.
        assert user.best_presented_index(presented) == 1

    def test_click_requires_candidates(self, small_evaluator):
        user = SimulatedUser.random(small_evaluator, rng=0)
        with pytest.raises(ValueError):
            user.click([])

    def test_dimension_mismatch_rejected(self, small_evaluator):
        with pytest.raises(ValueError):
            SimulatedUser(LinearUtility([1.0]), small_evaluator)

    def test_random_user_reproducible(self, small_evaluator):
        first = SimulatedUser.random(small_evaluator, rng=5)
        second = SimulatedUser.random(small_evaluator, rng=5)
        assert np.allclose(first.true_utility.weights, second.true_utility.weights)

    def test_noisy_user_sometimes_misclicks(self, small_evaluator):
        user = SimulatedUser.random(
            small_evaluator, rng=0, noise=NoiseModel(psi=0.2)
        )
        presented = [Package.of([i]) for i in range(5)]
        best = presented[user.best_presented_index(presented)]
        clicks = [user.click(presented) for _ in range(200)]
        assert any(click != best for click in clicks)

    def test_true_top_k_and_regret(self, small_evaluator):
        user = SimulatedUser(LinearUtility([1.0, 0.0, 0.0, 0.0]), small_evaluator)
        candidates = [Package.of([i]) for i in range(10)]
        ideal = user.true_top_k(candidates, 3)
        assert len(ideal) == 3
        assert user.regret(ideal, ideal) == 0.0
        worst = sorted(candidates, key=user.true_package_utility)[:3]
        assert user.regret(worst, ideal) > 0.0

    def test_regret_requires_non_empty_lists(self, small_evaluator):
        user = SimulatedUser.random(small_evaluator, rng=0)
        with pytest.raises(ValueError):
            user.regret([], [Package.of([0])])
        with pytest.raises(ValueError):
            user.true_top_k([Package.of([0])], 0)


class TestElicitationSession:
    def _make_session(self, catalog, seed=0, max_rounds=8):
        profile = AggregateProfile(["sum", "avg", "max", "min"])
        config = ElicitationConfig(
            k=2, num_random=2, max_package_size=2, num_samples=30,
            sampler="mcmc", seed=seed,
        )
        recommender = PackageRecommender(catalog, profile, config)
        user = SimulatedUser.random(recommender.evaluator, rng=seed)
        return ElicitationSession(recommender, user, max_rounds=max_rounds)

    def test_session_runs_and_reports(self, small_random_catalog):
        session = self._make_session(small_random_catalog)
        result = session.run(compute_regret=True)
        assert result.rounds_run >= 1
        assert result.clicks_to_convergence <= result.rounds_run
        assert len(result.top_k_history) == result.rounds_run
        assert result.final_regret is not None and result.final_regret >= 0.0

    def test_convergence_criterion(self, small_random_catalog):
        session = self._make_session(small_random_catalog, seed=1, max_rounds=12)
        result = session.run()
        if result.converged:
            # The last `stability_rounds + 1` lists must be identical.
            tail = result.top_k_history[-(session.stability_rounds + 1):]
            assert all(entry == tail[0] for entry in tail)
        else:
            assert result.rounds_run == session.max_rounds

    def test_invalid_parameters(self, small_random_catalog):
        session = self._make_session(small_random_catalog)
        with pytest.raises(ValueError):
            ElicitationSession(session.recommender, session.user, stability_rounds=0)
        with pytest.raises(ValueError):
            ElicitationSession(session.recommender, session.user, max_rounds=0)

    def test_noise_free_user_converges_quickly_on_tiny_catalog(self):
        rng = np.random.default_rng(0)
        catalog_matrix = rng.random((15, 3))
        from repro.core.items import ItemCatalog

        catalog = ItemCatalog(catalog_matrix)
        profile = AggregateProfile(["sum", "avg", "max"])
        config = ElicitationConfig(
            k=2, num_random=2, max_package_size=2, num_samples=40,
            sampler="mcmc", seed=0,
        )
        recommender = PackageRecommender(catalog, profile, config)
        user = SimulatedUser.random(recommender.evaluator, rng=3)
        result = ElicitationSession(recommender, user, max_rounds=12).run()
        # The paper's observation: only a few clicks are needed.
        assert result.clicks_to_convergence <= 12


class TestNoisyWorkloads:
    def test_build_user_population_attaches_the_noise_model(self, small_evaluator):
        from repro.simulation.traffic import build_user_population

        users = build_user_population(
            small_evaluator, 4, identical_prefix=True, user_seed=0, noise_psi=0.8
        )
        assert all(user.noise is not None for user in users)
        assert all(user.noise.psi == 0.8 for user in users)
        noise_free = build_user_population(
            small_evaluator, 4, identical_prefix=True, user_seed=0
        )
        assert all(user.noise is None for user in noise_free)

    def test_identical_prefix_noisy_users_fork_independently(self, small_evaluator):
        """Each noisy user needs its own click-noise stream: identical streams
        would corrupt every session identically and never fork a prefix."""
        from repro.simulation.traffic import build_user_population

        users = build_user_population(
            small_evaluator, 2, identical_prefix=True, user_seed=0, noise_psi=0.5
        )
        presented = [Package.of([i]) for i in range(4)]
        first = [users[0].click(presented) for _ in range(20)]
        second = [users[1].click(presented) for _ in range(20)]
        assert first != second

    def test_workload_specs_validate_noise_psi(self):
        from repro.simulation.traffic import AsyncWorkloadSpec, WorkloadSpec

        with pytest.raises(ValueError):
            WorkloadSpec(noise_psi=1.5)
        with pytest.raises(ValueError):
            AsyncWorkloadSpec(noise_psi=-0.1)
        assert WorkloadSpec(noise_psi=0.9).noise_psi == 0.9
        assert AsyncWorkloadSpec(noise_psi=0.9).noise_psi == 0.9
