"""Metropolis–Hastings MCMC sampling inside the valid region (§3.2.2).

Because the valid weight vectors form a single continuous convex region
(Lemma 2), the sampler first finds one valid vector (via rejection sampling)
and then performs a bounded random walk inside the region:

* the proposal ``Q(w' | w)`` is uniform over the ball of radius ``l_max``
  around the current state (symmetric, so it cancels in the acceptance ratio);
* a proposed ``w'`` that violates any feedback constraint is rejected outright
  (a copy of the current state is kept instead), so the chain never leaves the
  valid region;
* otherwise ``w'`` is accepted with probability
  ``α = min(1, Pw(w') / Pw(w))`` (Equation 7);
* following standard practice only every ``thinning``-th state is emitted to
  the final pool, to reduce autocorrelation (the paper's step length δ).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.rejection import RejectionSampler, RejectionSamplingError
from repro.utils.rng import RngLike


class MetropolisHastingsSampler(Sampler):
    """Constrained Metropolis–Hastings sampler over the weight posterior.

    Parameters
    ----------
    prior, rng, noise_probability:
        See :class:`~repro.sampling.base.Sampler`.
    step_length:
        Maximum random-walk step ``l_max`` (Equation 6).
    thinning:
        Keep one state out of every ``thinning`` accepted-or-copied states
        (the paper's step length δ).
    burn_in:
        Number of initial chain states discarded before collecting samples.
    initial_state:
        Optional known-valid starting weight vector; when omitted a rejection
        sampler finds one.
    """

    short_name = "MS"

    def __init__(
        self,
        prior: GaussianMixture,
        rng: RngLike = None,
        noise_probability: Optional[float] = None,
        step_length: float = 0.25,
        thinning: int = 5,
        burn_in: int = 100,
        initial_state: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(prior, rng, noise_probability)
        if step_length <= 0:
            raise ValueError(f"step_length must be > 0, got {step_length}")
        if thinning <= 0:
            raise ValueError(f"thinning must be > 0, got {thinning}")
        if burn_in < 0:
            raise ValueError(f"burn_in must be >= 0, got {burn_in}")
        self.step_length = step_length
        self.thinning = thinning
        self.burn_in = burn_in
        if initial_state is not None:
            initial_state = np.asarray(initial_state, dtype=float)
            if initial_state.shape != (self.num_features,):
                raise ValueError(
                    f"initial_state must have shape ({self.num_features},), "
                    f"got {initial_state.shape}"
                )
        self.initial_state = initial_state

    # ---------------------------------------------------------------- proposal
    def _propose(self, current: np.ndarray) -> np.ndarray:
        """A uniform draw from the ball of radius ``step_length`` around ``current``."""
        direction = self.rng.normal(size=self.num_features)
        norm = np.linalg.norm(direction)
        if norm == 0.0:
            return current.copy()
        direction /= norm
        # Radius with density proportional to the surface measure so the draw
        # is uniform in the ball, not concentrated at the centre.
        radius = self.step_length * self.rng.random() ** (1.0 / self.num_features)
        return current + direction * radius

    def _find_initial_state(self, constraints: ConstraintSet) -> np.ndarray:
        """Find a valid starting point for the chain.

        Rejection sampling from the prior is tried first (a start distributed
        like the prior, as the paper assumes); when the valid region's prior
        mass is below the rejection budget — high dimensionality, many
        accumulated preferences — the Chebyshev interior point of the
        constraint cone seeds the chain instead, and burn-in washes out the
        deterministic start.
        """
        if self.initial_state is not None:
            if self.noise_probability is None and not constraints.is_valid(self.initial_state):
                raise ValueError("the supplied initial_state violates the constraints")
            return self.initial_state
        # A bounded seeding budget: below ~1e-5 acceptance, rejection seeding
        # is hopeless and the interior-point fallback is both faster and sure.
        seeder = RejectionSampler(
            self.prior,
            rng=self.rng,
            noise_probability=self.noise_probability,
            max_attempts=200_000,
        )
        try:
            return seeder.sample_one_valid(constraints)
        except RejectionSamplingError:
            interior = constraints.interior_point()
            if interior is not None:
                return interior
            # Degenerate feedback (e.g. near-identical presented packages)
            # can collapse the cone to an empty-interior wedge.  Its apex —
            # the origin — always satisfies the homogeneous half-spaces
            # w · d >= 0 (with equality), so the chain starts there and the
            # request is served instead of failing.  On a measure-zero wedge
            # the chain may never move, degrading the pool to copies of the
            # apex — the mean of a symmetric degenerate posterior; sampling
            # *within* the wedge's affine hull (facial reduction) is a noted
            # follow-on in ROADMAP.md.
            return np.zeros(self.num_features)

    # ---------------------------------------------------------------- sampling
    def sample(self, count: int, constraints: ConstraintSet) -> SamplePool:
        """Run the chain until ``count`` thinned samples have been collected."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if constraints.num_features != self.num_features:
            raise ValueError(
                f"constraints have {constraints.num_features} features, "
                f"sampler expects {self.num_features}"
            )
        if count == 0:
            return SamplePool.empty(self.num_features)

        current = self._find_initial_state(constraints)
        current_density = float(self.prior.pdf(current))
        collected = np.zeros((count, self.num_features))
        collected_count = 0
        steps = 0
        proposals_rejected_constraint = 0
        proposals_rejected_mh = 0
        proposals_accepted = 0

        total_states_needed = self.burn_in + count * self.thinning
        while collected_count < count:
            steps += 1
            candidate = self._propose(current)
            accepted = False
            if self._accepts(candidate, constraints):
                candidate_density = float(self.prior.pdf(candidate))
                if current_density <= 0:
                    alpha = 1.0
                else:
                    alpha = min(1.0, candidate_density / current_density)
                if self.rng.random() < alpha:
                    current = candidate
                    current_density = candidate_density
                    accepted = True
                else:
                    proposals_rejected_mh += 1
            else:
                proposals_rejected_constraint += 1
            if accepted:
                proposals_accepted += 1
            # Whether accepted or not, the chain emits a state (a copy of the
            # current w on rejection, exactly as in the paper).
            if steps > self.burn_in and (steps - self.burn_in) % self.thinning == 0:
                collected[collected_count] = current
                collected_count += 1
            if steps > 100 * max(total_states_needed, 1):
                raise RuntimeError(
                    "MCMC chain failed to collect the requested samples; "
                    "check that the constraint region is non-empty"
                )
        stats = {
            "sampler": self.short_name,
            "chain_steps": steps,
            "accepted_moves": proposals_accepted,
            "rejected_by_constraints": proposals_rejected_constraint,
            "rejected_by_mh": proposals_rejected_mh,
            "acceptance_rate": proposals_accepted / steps if steps else 1.0,
            "burn_in": self.burn_in,
            "thinning": self.thinning,
        }
        return SamplePool.unweighted(collected, stats)
