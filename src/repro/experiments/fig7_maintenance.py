"""Figure 7: sample-maintenance strategies against new feedback (§3.4).

Figure 7(a): with a pool of previously generated samples, new feedback
preferences are grouped into buckets by how many pool samples they invalidate;
the cost of locating the violating samples is compared for the naive scan, the
pure TA-based search and the hybrid (Algorithm 1).  The expected shape: TA is
the clear winner when few samples violate the feedback, degrades badly as
violations grow, and the hybrid tracks the better of the two with a small
overhead.

The workload is *incremental*, as in the live system: preferences arrive one
at a time (consistent with one hidden utility), and after each preference the
violating samples are replaced by constraint-satisfying ones, so the pool
always reflects the feedback seen so far.  This is what populates the
low-violation buckets — against an unconditioned prior pool, symmetry makes
every preference invalidate about half the samples and Figure 7(a)'s most
interesting region would be empty.

Figure 7(b): the hybrid's fall-back parameter γ is swept; the cost ratio
against the naive scan dips below 1 for small positive γ and degrades back
toward the pure-TA behaviour as γ grows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.harness import (
    ExperimentScale,
    build_evaluator,
    random_package_vectors,
    random_preference_directions,
)
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.maintenance import (
    HybridMaintenance,
    NaiveMaintenance,
    ThresholdMaintenance,
)
from repro.utils.rng import ensure_rng

#: Bucket labels used in Figure 7(a): the maximum number of violating samples.
DEFAULT_BUCKETS: Tuple[int, ...] = (0, 1, 5, 20, 50, 200, 1000)


@dataclass
class MaintenanceBucket:
    """Aggregated maintenance cost for one violation-count bucket.

    Attributes
    ----------
    bucket:
        The bucket label (maximum number of violating samples).
    count:
        Number of feedback preferences that fell into the bucket.
    naive_seconds / ta_seconds / hybrid_seconds:
        Mean per-preference wall-clock cost of each strategy.
    naive_accesses / ta_accesses / hybrid_accesses:
        Mean per-preference number of sample accesses of each strategy.
    """

    bucket: int
    count: int = 0
    naive_seconds: float = 0.0
    ta_seconds: float = 0.0
    hybrid_seconds: float = 0.0
    naive_accesses: float = 0.0
    ta_accesses: float = 0.0
    hybrid_accesses: float = 0.0

    def _finalise(self) -> None:
        if self.count == 0:
            return
        for attr in (
            "naive_seconds", "ta_seconds", "hybrid_seconds",
            "naive_accesses", "ta_accesses", "hybrid_accesses",
        ):
            setattr(self, attr, getattr(self, attr) / self.count)


def _bucket_for(num_violations: int, buckets: Sequence[int]) -> int:
    for label in buckets:
        if num_violations <= label:
            return label
    return buckets[-1]


@dataclass
class MaintenanceStep:
    """One incremental feedback: its direction plus the replacement samples.

    Recording the replacements makes the pool evolution *replayable*: every
    strategy (and every γ of the hybrid sweep) can be measured against the
    exact same sequence of pools.
    """

    direction: np.ndarray
    replacements: np.ndarray


@dataclass
class MaintenanceWorkload:
    """A replayable incremental-feedback workload for the §3.4 benchmarks.

    The original pool is drawn from the prior; each step removes the samples
    violating that step's preference and appends the recorded replacements,
    exactly as sample maintenance does in the live system.  Because feedback
    is applied *incrementally* — the pool always satisfies all earlier
    preferences — later preferences invalidate only a few samples, populating
    the low-violation buckets where the TA strategy shines (the paper's
    Figure 7(a) x-axis spans exactly this range).
    """

    initial_samples: np.ndarray
    steps: List[MaintenanceStep]
    hidden_utility: np.ndarray

    def replay(self):
        """Yield ``(pool_samples, direction)`` per step, evolving the pool."""
        samples = self.initial_samples
        for step in self.steps:
            yield samples, step.direction
            survivors = samples[samples @ step.direction >= 0.0]
            if step.replacements.size:
                samples = np.vstack([survivors, step.replacements])
            else:
                samples = survivors


def _draw_replacements(
    rng: np.random.Generator,
    hidden: np.ndarray,
    constraint_directions: np.ndarray,
    count: int,
    spread: float = 0.35,
    max_rounds: int = 40,
) -> np.ndarray:
    """Draw ``count`` samples valid under every constraint so far.

    Proposals come from a Gaussian around the hidden utility (which satisfies
    every consistent constraint by construction), tightening on failure; any
    remaining deficit is filled with copies of the hidden point itself so the
    pool size stays exactly constant.  The cost benchmarks only need realistic
    violation *geometry*, not an exact posterior, so this cheap feasible
    sampler replaces a full constrained-sampling run.
    """
    dimension = hidden.shape[0]
    if count <= 0:
        return np.zeros((0, dimension))
    accepted: List[np.ndarray] = []
    have = 0
    current_spread = spread
    for _ in range(max_rounds):
        block = rng.normal(
            hidden, current_spread, size=(max(4 * (count - have), 128), dimension)
        )
        mask = np.all(block @ constraint_directions.T >= 0.0, axis=1)
        valid = block[mask][: count - have]
        if valid.shape[0]:
            accepted.append(valid)
            have += valid.shape[0]
        if have >= count:
            break
        current_spread *= 0.7  # tighten toward the known-feasible hidden point
    if have < count:
        accepted.append(np.tile(hidden, (count - have, 1)))
    return np.vstack(accepted)


def _generate_workload(
    num_samples: int,
    num_preferences: int,
    num_features: int,
    num_packages: int,
    scale: ExperimentScale,
    seed: int,
) -> MaintenanceWorkload:
    """Build the replayable incremental maintenance workload.

    Preference directions come from random package pairs oriented to agree
    with one hidden utility (feedback from a consistent user cannot
    contradict itself); the pool starts as prior draws and is conditioned on
    each preference in turn.  Early preferences therefore invalidate many
    samples and late ones only a few — the full bucket range of Figure 7(a).
    """
    rng = ensure_rng(seed)
    evaluator = build_evaluator("UNI", scale, num_features=num_features)
    _, vectors = random_package_vectors(evaluator, num_packages, rng=rng)
    hidden = rng.uniform(-1.0, 1.0, num_features)
    hidden /= max(float(np.linalg.norm(hidden)), 1e-12)
    directions = random_preference_directions(
        vectors, num_preferences, rng=rng, consistent_with=hidden
    )
    prior = GaussianMixture.default_prior(num_features, scale.num_gaussians, rng=rng)
    samples = prior.sample(num_samples, rng=rng)

    steps: List[MaintenanceStep] = []
    current = samples
    for i in range(num_preferences):
        direction = directions[i]
        survivors = current[current @ direction >= 0.0]
        deficit = current.shape[0] - survivors.shape[0]
        replacements = _draw_replacements(
            rng, hidden, directions[: i + 1], deficit
        )
        steps.append(MaintenanceStep(direction=direction, replacements=replacements))
        current = (
            np.vstack([survivors, replacements]) if replacements.size else survivors
        )
    return MaintenanceWorkload(samples, steps, hidden)


def run_maintenance_experiment(
    num_samples: int = 2_000,
    num_preferences: int = 300,
    buckets: Sequence[int] = DEFAULT_BUCKETS,
    gamma: float = 0.025,
    num_features: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[MaintenanceBucket]:
    """Reproduce Figure 7(a): per-bucket maintenance costs of the three strategies.

    The paper uses 10,000 samples and 1,000 preferences; the defaults here are
    scaled down (pass larger values to match).  Buckets follow the paper's
    labels and results are averaged within each bucket.
    """
    scale = scale if scale is not None else ExperimentScale(seed=seed)
    features = num_features if num_features is not None else scale.num_features
    workload = _generate_workload(
        num_samples, num_preferences, features, scale.num_packages, scale, seed
    )
    naive = NaiveMaintenance()
    ta = ThresholdMaintenance()
    hybrid = HybridMaintenance(gamma)

    by_bucket: Dict[int, MaintenanceBucket] = {
        label: MaintenanceBucket(label) for label in buckets
    }
    for samples, direction in workload.replay():
        # The pool changed, so the TA-based strategies re-sort their lists;
        # preparation happens outside the timed sections, mirroring the live
        # system where the lists are maintained alongside the pool.
        ta.prepare(samples)
        hybrid.prepare(samples)
        start = time.perf_counter()
        naive_result = naive.find_violations(samples, direction)
        naive_seconds = time.perf_counter() - start

        start = time.perf_counter()
        ta_result = ta.find_violations(samples, direction)
        ta_seconds = time.perf_counter() - start

        start = time.perf_counter()
        hybrid_result = hybrid.find_violations(samples, direction)
        hybrid_seconds = time.perf_counter() - start

        if not np.array_equal(
            naive_result.violating_indices, ta_result.violating_indices
        ) or not np.array_equal(
            naive_result.violating_indices, hybrid_result.violating_indices
        ):
            raise AssertionError(
                "maintenance strategies disagree on the violating samples; bug"
            )

        bucket = by_bucket[_bucket_for(naive_result.num_violations, buckets)]
        bucket.count += 1
        bucket.naive_seconds += naive_seconds
        bucket.ta_seconds += ta_seconds
        bucket.hybrid_seconds += hybrid_seconds
        bucket.naive_accesses += naive_result.accesses
        bucket.ta_accesses += ta_result.accesses
        bucket.hybrid_accesses += hybrid_result.accesses

    results = []
    for label in buckets:
        bucket = by_bucket[label]
        bucket._finalise()
        results.append(bucket)
    return results


@dataclass
class GammaSweepPoint:
    """One γ value of Figure 7(b): cost ratios of TA and hybrid vs the naive scan."""

    gamma: float
    ta_cost_ratio: float
    hybrid_cost_ratio: float


def run_gamma_sweep(
    gammas: Sequence[float] = (0.0, 0.025, 0.05, 0.075, 0.1),
    num_samples: int = 2_000,
    num_preferences: int = 200,
    num_features: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[GammaSweepPoint]:
    """Reproduce Figure 7(b): hybrid/naive and TA/naive cost ratios as γ varies."""
    scale = scale if scale is not None else ExperimentScale(seed=seed)
    features = num_features if num_features is not None else scale.num_features
    workload = _generate_workload(
        num_samples, num_preferences, features, scale.num_packages, scale, seed
    )
    naive = NaiveMaintenance()
    ta = ThresholdMaintenance()

    naive_total = 0.0
    ta_total = 0.0
    for samples, direction in workload.replay():
        ta.prepare(samples)
        start = time.perf_counter()
        naive.find_violations(samples, direction)
        naive_total += time.perf_counter() - start
        start = time.perf_counter()
        ta.find_violations(samples, direction)
        ta_total += time.perf_counter() - start

    points: List[GammaSweepPoint] = []
    for gamma in gammas:
        hybrid = HybridMaintenance(gamma)
        hybrid_total = 0.0
        for samples, direction in workload.replay():
            hybrid.prepare(samples)
            start = time.perf_counter()
            hybrid.find_violations(samples, direction)
            hybrid_total += time.perf_counter() - start
        points.append(
            GammaSweepPoint(
                gamma=gamma,
                ta_cost_ratio=ta_total / naive_total if naive_total else float("inf"),
                hybrid_cost_ratio=hybrid_total / naive_total if naive_total else float("inf"),
            )
        )
    return points


def summarise(buckets: List[MaintenanceBucket]) -> List[List]:
    """Rows (bucket, count, naive s, TA s, hybrid s) for display."""
    return [
        [b.bucket, b.count, b.naive_seconds, b.ta_seconds, b.hybrid_seconds]
        for b in buckets
    ]
