"""Light-weight timing helpers used by the experiment harness.

The paper reports wall-clock time split into *sample generation* and
*top-k package generation* phases (Figure 6), plus maintenance and
constraint-checking times (Figures 5 and 7).  :class:`Stopwatch` and
:class:`TimingRecord` provide a uniform way to capture those phases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional
from contextlib import contextmanager


@dataclass
class TimingRecord:
    """A named collection of accumulated phase durations (in seconds)."""

    durations: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` under ``phase``."""
        if seconds < 0:
            raise ValueError(f"negative duration for phase {phase!r}: {seconds}")
        self.durations[phase] = self.durations.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def get(self, phase: str) -> float:
        """Total seconds accumulated under ``phase`` (0.0 if never timed)."""
        return self.durations.get(phase, 0.0)

    def mean(self, phase: str) -> float:
        """Mean duration of a single timed occurrence of ``phase``."""
        count = self.counts.get(phase, 0)
        if count == 0:
            return 0.0
        return self.durations[phase] / count

    def total(self) -> float:
        """Sum of all phase durations."""
        return sum(self.durations.values())

    def merge(self, other: "TimingRecord") -> "TimingRecord":
        """Return a new record combining ``self`` and ``other``."""
        merged = TimingRecord(dict(self.durations), dict(self.counts))
        for phase, seconds in other.durations.items():
            merged.durations[phase] = merged.durations.get(phase, 0.0) + seconds
        for phase, count in other.counts.items():
            merged.counts[phase] = merged.counts.get(phase, 0) + count
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Plain ``dict`` copy of the accumulated durations."""
        return dict(self.durations)

    def phases(self) -> List[str]:
        """Names of all phases timed so far, in insertion order."""
        return list(self.durations)


class Stopwatch:
    """Context-manager-based stopwatch writing into a :class:`TimingRecord`."""

    def __init__(self, record: Optional[TimingRecord] = None) -> None:
        self.record = record if record is not None else TimingRecord()

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Time the enclosed block and accumulate it under ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record.add(phase, time.perf_counter() - start)

    def time_call(self, phase: str, func, *args, **kwargs):
        """Call ``func`` while timing it under ``phase``; return its result."""
        with self.measure(phase):
            return func(*args, **kwargs)
