"""Benchmarks for Figure 6: overall time to produce top-k package recommendations.

Figure 6(a-e) varies the number of valid samples, Figure 6(f-j) the number of
features, on the five benchmark datasets (UNI, PWR, COR, ANT, NBA).  The
benchmark prints one row per (dataset, sampler, swept value) — the series the
paper plots — and asserts the headline shapes:

* sample generation dominates (or matches) the top-k search cost;
* rejection sampling is the most expensive sampler once feedback accumulates;
* importance sampling drops out beyond 5 features (grid blow-up), MCMC does not.
"""

import numpy as np
import pytest

from repro.experiments.fig6_overall_time import run_overall_time_experiment, summarise
from repro.experiments.harness import (
    build_evaluator,
    format_table,
    random_package_vectors,
    random_preference_directions,
)
from repro.core.ranking import rank_from_samples
from repro.sampling.base import ConstraintSet
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.sampling.rejection import RejectionSampler
from repro.topk.package_search import TopKPackageSearcher
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def fig6_points(scale):
    from bench_utils import write_results

    points = run_overall_time_experiment(
        datasets=("UNI", "PWR", "COR", "ANT", "NBA"),
        samplers=("RS", "IS", "MS"),
        sample_counts=(50, 100, 150),
        feature_counts=(2, 4, 6, 8, 10),
        k=5,
        num_preferences=15,
        topk_sample_budget=3,
        search_beam_width=200,
        search_items_cap=60,
        scale=scale,
        seed=0,
    )
    table = format_table(
        ["dataset", "sampler", "sweep", "value", "sample_gen_s", "topk_s", "skipped"],
        summarise(points),
    )
    header = "Figure 6 — overall processing time per dataset/sampler"
    print("\n" + header)
    print(table)
    write_results("fig6_overall_time.txt", header + "\n" + table)
    # Core shape assertions (enforced in --benchmark-only runs too).
    high_dim_is = [
        p for p in points
        if p.sampler == "IS" and p.varied == "features" and p.value > 5
    ]
    assert high_dim_is and all(p.skipped for p in high_dim_is)
    assert all(not p.skipped for p in points if p.sampler == "MS")
    return points


def test_fig6_shape_importance_sampling_excluded_beyond_cutoff(fig6_points):
    high_dim_is = [
        p for p in fig6_points
        if p.sampler == "IS" and p.varied == "features" and p.value > 5
    ]
    assert high_dim_is and all(p.skipped for p in high_dim_is)
    low_dim_is = [
        p for p in fig6_points
        if p.sampler == "IS" and p.varied == "features" and p.value <= 4
    ]
    assert low_dim_is and all(not p.skipped for p in low_dim_is)


def test_fig6_shape_mcmc_handles_all_dimensionalities(fig6_points):
    ms_points = [p for p in fig6_points if p.sampler == "MS"]
    assert ms_points and all(not p.skipped for p in ms_points)


def test_fig6_shape_sampling_cost_is_significant(fig6_points):
    """Sample generation should not be negligible next to top-k search."""
    totals = {}
    for p in fig6_points:
        if p.skipped:
            continue
        totals.setdefault(p.sampler, [0.0, 0.0])
        totals[p.sampler][0] += p.sample_generation_seconds
        totals[p.sampler][1] += p.topk_seconds
    for sampler, (gen, topk) in totals.items():
        assert gen > 0
        # Generation is at least a comparable fraction of the per-sample search.
        assert gen >= 0.05 * topk


def test_fig6_shape_sample_cost_grows_with_sample_count(fig6_points):
    for sampler in ("RS", "MS"):
        series = sorted(
            (p.value, p.sample_generation_seconds)
            for p in fig6_points
            if p.sampler == sampler and p.varied == "samples" and p.dataset == "UNI"
        )
        assert series[0][1] <= series[-1][1] * 1.5  # cost does not shrink with more samples


@pytest.fixture(scope="module")
def pipeline_workload(scale):
    rng = ensure_rng(0)
    evaluator = build_evaluator("UNI", scale, num_features=4)
    _, vectors = random_package_vectors(evaluator, scale.num_packages, rng=rng)
    hidden = rng.uniform(-1, 1, 4)
    directions = random_preference_directions(vectors, 15, rng=rng, consistent_with=hidden)
    constraints = ConstraintSet(directions)
    prior = GaussianMixture.default_prior(4, rng=rng)
    return evaluator, constraints, prior


def _bounded_searcher(evaluator):
    """The bounded-work searcher configuration used across the Figure 6 benches."""
    return TopKPackageSearcher(evaluator, beam_width=500, max_items_accessed=150)


def test_bench_fig6_pipeline_rejection(benchmark, pipeline_workload, fig6_points):
    evaluator, constraints, prior = pipeline_workload
    sampler = RejectionSampler(prior, rng=1)
    searcher = _bounded_searcher(evaluator)

    def pipeline():
        pool = sampler.sample(50, constraints)
        results = [searcher.search(pool.samples[i], 5) for i in range(5)]
        return rank_from_samples(results, 5, "exp", sample_weights=pool.weights[:5])

    result = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    assert len(result) == 5


def test_bench_fig6_pipeline_mcmc(benchmark, pipeline_workload):
    evaluator, constraints, prior = pipeline_workload
    sampler = MetropolisHastingsSampler(prior, rng=1)
    searcher = _bounded_searcher(evaluator)

    def pipeline():
        pool = sampler.sample(50, constraints)
        results = [searcher.search(pool.samples[i], 5) for i in range(5)]
        return rank_from_samples(results, 5, "exp", sample_weights=pool.weights[:5])

    result = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    assert len(result) == 5


def test_bench_fig6_topk_package_search(benchmark, pipeline_workload):
    """The Top-k-Pkg half of Figure 6 in isolation."""
    evaluator, _, _ = pipeline_workload
    weights = np.array([0.7, 0.5, -0.4, 0.3])
    searcher = _bounded_searcher(evaluator)
    result = benchmark.pedantic(lambda: searcher.search(weights, 5), rounds=3, iterations=1)
    assert len(result.packages) == 5
