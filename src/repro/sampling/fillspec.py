"""Serializable pool-fill specifications: the process-parallel fill seam.

Every pool fill in the serving stack used to be described by a *closure*:
``engine._fill_sampler`` captured the live engine (its prior, its config,
its seed root) and the repository called ``factory(key)`` wherever the fill
happened to run.  Closures execute anywhere in-process — and nowhere else.
A fill that should run in a worker *process* (or on another host) needs the
transposed representation: a plain-data description of the fill that can be
pickled, shipped, and resolved into a sampler on the far side.  This module
is that representation:

* :class:`FillSpec` — a frozen dataclass that fully describes one pool fill
  with no live objects: the pool key, the constraint rows, the sample count,
  the sampler kind and its parameters, the *derived* RNG seed (engine seed +
  pool key, already folded engine-side so the worker needs no engine state),
  and a digest reference into the shared fill context.
* :class:`FillContext` / :class:`PriorSpec` — the heavy shared state a fill
  needs (today: the Gaussian-mixture prior's parameter arrays) as plain
  data, content-addressed by digest.  A process backend ships the context
  **once per worker** via its pool initializer; workers cache it by digest in
  a module-level registry, so every subsequent spec is just a few hundred
  bytes.
* :func:`build_sampler` / :func:`execute_fill` — module-level resolution:
  ``build_sampler(spec)`` constructs the sampler (kind + parameters + seeded
  RNG) from the spec alone, looking the context up by digest;
  ``execute_fill(spec)`` runs the fill and returns the
  :class:`~repro.sampling.base.SamplePool`.  Because both are module-level
  functions of pure data, the *same* spec resolves identically inline, on a
  thread, or in a worker process — which is what keeps process-sharded
  engines bit-identical to unsharded ones.
* :func:`derive_fill_seed` — the key-deterministic seed derivation
  (blake2b over ``pool-fill:<seed root>:<key>``), factored out of the engine
  so spec construction and the engine's legacy closure share one formula.

Determinism contract: a fill's output is a function of ``(spec, context)``
and nothing else.  The spec carries the derived seed, the context carries
exact float64 prior parameters (tuples round-trip binary-identically), and
the sampler builders below construct exactly what the engine's in-process
closure constructed — so where a fill runs can never change what it returns.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.gaussian_mixture import GaussianMixture

__all__ = [
    "FillContext",
    "FillSpec",
    "PriorSpec",
    "SAMPLER_KINDS",
    "build_sampler",
    "derive_fill_seed",
    "execute_fill",
    "get_fill_context",
    "known_fill_contexts",
    "register_fill_context",
    "register_sampler_builder",
]

#: Sampler kinds a :class:`FillSpec` may name out of the box.  ``"batch"`` is
#: the engine default (vectorised block rejection with per-set MCMC fallback);
#: the other three are the paper's per-session samplers.
SAMPLER_KINDS = ("batch", "rejection", "importance", "mcmc")


def derive_fill_seed(seed_root: int, key: str) -> int:
    """The key-deterministic fill seed: blake2b over the root and the key.

    This is the serving stack's determinism contract in one function: the
    sampler RNG for pool ``key`` depends only on the engine's seed root and
    the key itself, so any worker anywhere — same process, a shard thread, a
    spawned worker, another host — refills the pool bit-identically.
    """
    digest = hashlib.blake2b(
        f"pool-fill:{seed_root}:{key}".encode(), digest_size=16
    ).digest()
    return int.from_bytes(digest, "big")


def _nested_tuple(array: np.ndarray) -> tuple:
    """A nested tuple of Python floats mirroring ``array`` (exact for float64)."""
    if array.ndim == 1:
        return tuple(float(v) for v in array)
    return tuple(_nested_tuple(row) for row in array)


# ================================================================== contexts
@dataclass(frozen=True)
class PriorSpec:
    """The Gaussian-mixture prior ``Pw`` as plain data (no live objects).

    Stores the mixture's parameter arrays as nested tuples of Python floats —
    float64 round-trips through Python floats exactly, so the rebuilt mixture
    is binary-identical to the live one it was captured from.
    """

    means: Tuple[Tuple[float, ...], ...]
    covariances: Tuple[Tuple[Tuple[float, ...], ...], ...]
    weights: Tuple[float, ...]

    @classmethod
    def from_mixture(cls, mixture: GaussianMixture) -> "PriorSpec":
        """Capture a live mixture's parameters."""
        return cls(
            means=_nested_tuple(mixture.means),
            covariances=_nested_tuple(mixture.covariances),
            weights=_nested_tuple(mixture.weights),
        )

    def build(self) -> GaussianMixture:
        """Reconstruct the mixture (bit-identical parameters)."""
        return GaussianMixture(
            np.asarray(self.means, dtype=float),
            np.asarray(self.covariances, dtype=float),
            np.asarray(self.weights, dtype=float),
        )


@dataclass(frozen=True)
class FillContext:
    """The shared state every fill under one engine needs, as plain data.

    The prior rides as an inline payload; a catalog rides as a *reference* —
    ``catalog_digest`` names the content, ``catalog_path`` says where the
    columnar store lives on this host — so shipping a context to a worker
    costs a few hundred bytes however large the catalog is: the worker mmaps
    the store locally instead of receiving feature arrays over a pipe.
    Contexts are content-addressed: the digest is a hash of the payload (the
    catalog contributes its *content* digest, not its path), so a worker
    that already holds a context with the same digest skips re-registration
    no matter which engine shipped it.
    """

    prior: PriorSpec
    catalog_path: Optional[str] = None
    catalog_digest: Optional[str] = None

    @property
    def digest(self) -> str:
        """Content digest used as the registry key (stable across processes)."""
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(repr(self.prior.means).encode())
        hasher.update(repr(self.prior.covariances).encode())
        hasher.update(repr(self.prior.weights).encode())
        if self.catalog_digest is not None:
            hasher.update(f"catalog:{self.catalog_digest}".encode())
        return hasher.hexdigest()


#: Process-local context registry: digest -> context.  The engine registers
#: its context at construction (covering inline and thread fills); a process
#: backend's worker initializer registers it worker-side.
_CONTEXTS: Dict[str, FillContext] = {}

#: Built mixtures cached per context digest, so repeated fills do not pay the
#: scipy frozen-distribution construction on every call.
_MIXTURES: Dict[str, GaussianMixture] = {}


def register_fill_context(context: FillContext) -> str:
    """Register a context in this process's registry; returns its digest.

    Idempotent by content: registering the same payload twice (two engines
    over one prior, or a worker receiving a context it already holds) is a
    no-op beyond the digest lookup.
    """
    digest = context.digest
    _CONTEXTS.setdefault(digest, context)
    if context.catalog_digest is not None and context.catalog_path is not None:
        # Record where the referenced columnar store lives so this process
        # (engine, shard thread, or pool-fill worker — the process backend's
        # initializer funnels through here) can mmap it on demand by digest.
        from repro.data.columnar import register_catalog_location

        register_catalog_location(context.catalog_digest, context.catalog_path)
    return digest


def get_fill_context(digest: str) -> FillContext:
    """The registered context for ``digest``; raises ``KeyError`` if unknown."""
    try:
        return _CONTEXTS[digest]
    except KeyError:
        raise KeyError(
            f"no FillContext registered under digest {digest!r} in this "
            f"process — the engine registers its context at construction, "
            f"and a process backend must ship it via its worker initializer"
        ) from None


def known_fill_contexts() -> Dict[str, FillContext]:
    """A snapshot of every context registered in this process."""
    return dict(_CONTEXTS)


def _mixture_for(digest: str) -> GaussianMixture:
    mixture = _MIXTURES.get(digest)
    if mixture is None:
        mixture = get_fill_context(digest).prior.build()
        _MIXTURES[digest] = mixture
    return mixture


# ===================================================================== specs
@dataclass(frozen=True)
class FillSpec:
    """A complete, picklable description of one pool fill.

    Attributes
    ----------
    key:
        The pool key (``n<count>:<fingerprint>``) the fill is for.
    count:
        Number of samples to draw.
    num_features:
        Dimensionality of the weight space (fixes empty constraint sets).
    constraint_rows:
        The constraint set's half-space normals as a tuple of row tuples —
        plain data, not a live :class:`ConstraintSet`.
    sampler:
        One of :data:`SAMPLER_KINDS` (or a kind added via
        :func:`register_sampler_builder`).
    seed:
        The fully *derived* RNG seed (:func:`derive_fill_seed` applied
        engine-side), so resolving the spec needs no engine state.
    context_digest:
        Digest of the :class:`FillContext` (prior) the fill samples from.
    noise_psi:
        The §7 feedback-noise parameter, or ``None`` for hard constraints.
    block_size / max_blocks:
        Candidate-block parameters of the ``"batch"`` sampler (ignored by
        the per-set kinds).
    """

    key: str
    count: int
    num_features: int
    constraint_rows: Tuple[Tuple[float, ...], ...]
    sampler: str
    seed: int
    context_digest: str
    noise_psi: Optional[float] = None
    block_size: int = 2048
    max_blocks: int = 64

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.num_features <= 0:
            raise ValueError(
                f"num_features must be > 0, got {self.num_features}"
            )
        if self.sampler not in _SAMPLER_BUILDERS:
            raise ValueError(
                f"sampler must be one of {sorted(_SAMPLER_BUILDERS)}, "
                f"got {self.sampler!r}"
            )
        for row in self.constraint_rows:
            if len(row) != self.num_features:
                raise ValueError(
                    f"constraint row has {len(row)} entries, "
                    f"expected {self.num_features}"
                )

    @classmethod
    def for_fill(
        cls,
        key: str,
        constraints: ConstraintSet,
        count: int,
        *,
        sampler: str,
        seed_root: int,
        context_digest: str,
        noise_psi: Optional[float] = None,
        block_size: int = 2048,
        max_blocks: int = 64,
    ) -> "FillSpec":
        """Build a spec from a live constraint set, deriving the seed."""
        return cls(
            key=key,
            count=int(count),
            num_features=constraints.num_features,
            constraint_rows=_nested_tuple(
                np.atleast_2d(constraints.directions)
            )
            if len(constraints)
            else (),
            sampler=sampler,
            seed=derive_fill_seed(seed_root, key),
            context_digest=context_digest,
            noise_psi=noise_psi,
            block_size=int(block_size),
            max_blocks=int(max_blocks),
        )

    def constraint_set(self) -> ConstraintSet:
        """The live :class:`ConstraintSet` the rows describe."""
        if not self.constraint_rows:
            return ConstraintSet.empty(self.num_features)
        return ConstraintSet(np.asarray(self.constraint_rows, dtype=float))


# ================================================================= resolution
#: ``builder(spec, prior, rng) -> Sampler`` — how each sampler kind resolves.
SamplerBuilder = Callable[[FillSpec, GaussianMixture, np.random.Generator], Sampler]


def _build_batch(spec, prior, rng):
    from repro.sampling.batch import BatchRejectionSampler

    return BatchRejectionSampler(
        prior,
        rng=rng,
        noise_probability=spec.noise_psi,
        block_size=spec.block_size,
        max_blocks=spec.max_blocks,
    )


def _build_rejection(spec, prior, rng):
    from repro.sampling.rejection import RejectionSampler

    return RejectionSampler(prior, rng=rng, noise_probability=spec.noise_psi)


def _build_importance(spec, prior, rng):
    from repro.sampling.importance import ImportanceSampler

    return ImportanceSampler(prior, rng=rng, noise_probability=spec.noise_psi)


def _build_mcmc(spec, prior, rng):
    from repro.sampling.mcmc import MetropolisHastingsSampler

    return MetropolisHastingsSampler(
        prior, rng=rng, noise_probability=spec.noise_psi
    )


_SAMPLER_BUILDERS: Dict[str, SamplerBuilder] = {
    "batch": _build_batch,
    "rejection": _build_rejection,
    "importance": _build_importance,
    "mcmc": _build_mcmc,
}


def register_sampler_builder(kind: str, builder: SamplerBuilder) -> None:
    """Register (or override) how a sampler kind resolves from a spec.

    The extension point custom deployments and tests hook: a registered kind
    becomes a valid ``FillSpec.sampler`` value in this process.  With a
    fork-started process backend, kinds registered *before* the worker pool
    spawns are inherited by the workers.
    """
    if not kind:
        raise ValueError("sampler kind must be a non-empty string")
    _SAMPLER_BUILDERS[kind] = builder


def build_sampler(
    spec: FillSpec, context: Optional[FillContext] = None
) -> Sampler:
    """Resolve a spec into a ready sampler (seeded RNG, rebuilt prior).

    ``context`` defaults to the registry entry under ``spec.context_digest``
    — the module-level resolution a shard (or a worker process) performs
    with no engine in sight.
    """
    if context is not None:
        register_fill_context(context)
    prior = _mixture_for(spec.context_digest)
    rng = np.random.default_rng(spec.seed)
    return _SAMPLER_BUILDERS[spec.sampler](spec, prior, rng)


def execute_fill(
    spec: FillSpec, context: Optional[FillContext] = None
) -> SamplePool:
    """Run one fill described by ``spec`` and return its pool.

    When the context references a catalog by digest, the referenced columnar
    store is opened (mmap, cached per process) and stamped into the pool's
    ``stats`` — proof, visible engine-side, that the fill ran against the
    content-addressed catalog rather than a shipped array copy.  Stats never
    influence sampling, so fills stay bit-identical across backings.
    """
    started = time.perf_counter()
    sampler = build_sampler(spec, context)
    pool = sampler.sample(spec.count, spec.constraint_set())
    pool.stats["fill_seconds"] = time.perf_counter() - started
    if context is None:
        context = _CONTEXTS.get(spec.context_digest)
    if context is not None and context.catalog_digest is not None:
        from repro.data.columnar import open_catalog_by_digest

        opened = open_catalog_by_digest(context.catalog_digest)
        pool.stats["catalog_digest"] = context.catalog_digest
        pool.stats["catalog_items"] = opened.num_items
    return pool
