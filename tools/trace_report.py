#!/usr/bin/env python
"""Render exported request traces (JSON-lines) as per-request span trees.

The serving stack's tracer (``repro.obs``) exports one JSON object per
sampled-in trace — see ``JsonLinesTraceSink``.  This tool turns that file
back into something a human can read during an incident: one block per
trace, spans indented under their parents, with per-span start offset,
duration, status, and the interesting attributes inline::

    trace t-000017  root=dispatcher.dispatch  12.41ms  kept=slow
      dispatcher.dispatch                      0.00ms +12.410ms
        dispatcher.queue_wait                 -1.92ms  +1.920ms session_id=sess-000003
        engine.recommend_many                  0.03ms +12.300ms sessions=4
          engine.prefetch_pools                0.05ms  +9.100ms fills=1
            pool.fill                          0.40ms  +8.600ms worker_pid=19865
          engine.prefetch_topk                 9.20ms  +2.100ms
            search.topk                        9.25ms  +2.000ms mode=batched

Negative start offsets are real: backdated spans (queue waits) begin before
the root span opened.  Orphaned spans (parent not in the trace) are listed
at the root level rather than dropped.

Usage::

    python tools/trace_report.py traces.jsonl          # render a trace file
    python tools/trace_report.py --selftest            # CI: emit + render + verify

``--selftest`` builds a representative trace through the real tracer,
renders it, and verifies the tree shape — the docs CI job runs it so this
tool cannot drift from the export format.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Span attributes surfaced inline (everything else stays in the file).
INTERESTING_ATTRS = (
    "session_id",
    "sessions",
    "pool_key",
    "key",
    "path",
    "mode",
    "pools",
    "fills",
    "worker_pid",
    "rows",
    "unique_rows",
    "dedup_rate",
    "items_accessed",
    "batch_size",
    "kind",
)


def format_span(span, depth):
    attrs = span.get("attrs", {})
    shown = " ".join(
        f"{name}={attrs[name]}" for name in INTERESTING_ATTRS if name in attrs
    )
    status = "" if span.get("status") == "ok" else f" [{span.get('status')}]"
    indent = "  " * (depth + 1)
    name = f"{indent}{span['name']}"
    timing = f"{span['start_ms']:>9.2f}ms +{span['duration_ms']:.3f}ms"
    return f"{name:<44}{timing}{status}" + (f"  {shown}" if shown else "")


def render_trace(trace):
    """One formatted block (list of lines) for a single trace object."""
    lines = [
        f"trace {trace['trace_id']}  root={trace['root']}  "
        f"{trace['duration_ms']:.2f}ms  kept={trace['kept_because']}"
    ]
    spans = trace.get("spans", [])
    known = {span["span_id"] for span in spans}
    children = {}
    roots = []
    for span in spans:
        parent = span.get("parent_id")
        if parent in known:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)  # the root span, plus any orphans

    def walk(span, depth):
        lines.append(format_span(span, depth))
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for span in roots:
        walk(span, 0)
    return lines


def render_file(path, out=sys.stdout):
    """Render every trace in a JSON-lines file; returns the trace count."""
    count = 0
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                trace = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"error: {path}:{number} is not valid JSON: {exc}"
                )
            if count:
                print(file=out)
            print("\n".join(render_trace(trace)), file=out)
            count += 1
    return count


def selftest():
    """Emit a representative trace through the real tracer and verify it."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.obs import JsonLinesTraceSink, Tracer

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "traces.jsonl")
        sink = JsonLinesTraceSink(path)
        tracer = Tracer(sink, slow_ms=0.0, sample_every=1)
        with tracer.span("dispatcher.dispatch", batch_size=2):
            tracer.record_child(
                "dispatcher.queue_wait", 0.002, session_id="sess-000001"
            )
            with tracer.span("engine.recommend_many", sessions=2):
                with tracer.span("engine.prefetch_pools"):
                    tracer.record_child("pool.fill", 0.004, worker_pid=4242)
                with tracer.span("search.topk", mode="batched", pools=2):
                    pass
        sink.close()

        import io

        buffer = io.StringIO()
        count = render_file(path, out=buffer)
        text = buffer.getvalue()
        print(text)
        assert count == 1, f"expected 1 trace, rendered {count}"
        for needle in (
            "root=dispatcher.dispatch",
            "dispatcher.queue_wait",
            "engine.recommend_many",
            "pool.fill",
            "worker_pid=4242",
            "mode=batched",
        ):
            assert needle in text, f"selftest output missing {needle!r}"
        # The fill span must be indented under prefetch_pools (depth 3 →
        # 8 leading spaces), proving parent links drive the layout.
        fill_line = next(l for l in text.splitlines() if "pool.fill" in l)
        assert fill_line.startswith(" " * 8), fill_line
    print("trace_report selftest passed")
    return 0


def main(argv):
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if argv else 2
    if argv[0] == "--selftest":
        return selftest()
    path = argv[0]
    if not os.path.exists(path):
        print(f"error: trace file not found: {path}", file=sys.stderr)
        return 2
    count = render_file(path)
    print(f"\n{count} trace(s) rendered from {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
