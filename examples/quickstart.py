"""Quickstart: recommend top-k packages with preference elicitation.

This example walks through the full loop of the paper on a small synthetic
catalog:

1. build an item catalog and an aggregate feature profile (cost = sum,
   quality = avg);
2. create a :class:`PackageRecommender`, which models the unknown utility
   weights with a Gaussian-mixture prior and a pool of constrained samples;
3. simulate a user with a hidden utility function who clicks on the presented
   package they truly like best;
4. watch the recommendations converge toward the user's taste after a handful
   of clicks.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregateProfile,
    ElicitationConfig,
    ItemCatalog,
    LinearUtility,
    PackageRecommender,
    SimulatedUser,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # --- 1. Items: 200 products with (cost, rating, popularity) features. ----
    costs = rng.gamma(2.0, 0.25, 200)
    ratings = np.clip(rng.normal(0.7, 0.15, 200), 0, 1)
    popularity = rng.random(200)
    catalog = ItemCatalog(
        np.column_stack([costs, ratings, popularity]),
        feature_names=["cost", "rating", "popularity"],
    )

    # Packages are scored by total cost (sum), average rating and average
    # popularity; the maximum package size φ is 4.
    profile = AggregateProfile(["sum", "avg", "avg"], feature_names=catalog.feature_names)

    # --- 2. The recommender: 5 best + 3 random packages per round. -----------
    config = ElicitationConfig(
        k=5,
        num_random=3,
        max_package_size=4,
        num_samples=150,
        sampler="mcmc",
        semantics="exp",
        search_sample_budget=25,   # bound per-round latency on larger catalogs
        seed=0,
    )
    recommender = PackageRecommender(catalog, profile, config)

    # --- 3. A simulated user who hates cost and loves ratings. ---------------
    hidden_utility = LinearUtility(np.array([-0.8, 0.9, 0.3]))
    user = SimulatedUser(hidden_utility, recommender.evaluator, rng=rng)

    print("Hidden user utility (unknown to the system):", hidden_utility.weights)
    print()

    for round_number in range(1, 6):
        round_ = recommender.recommend()
        clicked = user.click(round_.presented)
        added = recommender.feedback(clicked, round_.presented)

        best = round_.recommended[0]
        print(f"Round {round_number}:")
        print(f"  presented {len(round_.presented)} packages, user clicked {clicked.items}")
        print(f"  added {added} pairwise preferences "
              f"(total {recommender.num_feedback_preferences})")
        print(f"  current best package {best.items} "
              f"(true utility {user.true_package_utility(best):.3f})")
        print(f"  estimated weights: {np.round(recommender.estimated_weights(), 3)}")
        print()

    final = recommender.current_top_k()
    print("Final top-5 packages (item indices) and their true utility to the user:")
    for package in final:
        print(f"  {package.items}  ->  {user.true_package_utility(package):.3f}")


if __name__ == "__main__":
    main()
