"""Thread-safe metrics: counters, gauges, log-bucketed histograms, families.

Design constraints, in order:

1. **Hot-path cost.**  ``Counter.inc`` and ``Histogram.observe`` run inside
   the serving fast paths (including worker threads of the thread shard
   backend), so each instrument carries its own small lock and does O(1)
   work — a histogram observation is one ``bisect`` into precomputed bucket
   boundaries.  Nothing allocates on the hot path.
2. **Exact, testable percentiles.**  Buckets are geometric
   (``lowest * growth**i``), and ``percentile(q)`` returns the *upper
   boundary* of the bucket where the cumulative count first reaches
   ``ceil(q * N)``.  On a known distribution the answer is a specific
   boundary value, which is what the unit tests pin.
3. **No dependencies.**  Prometheus text exposition is a string format,
   not a client library; :meth:`MetricsRegistry.render_prometheus` emits
   it directly.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledFamily",
    "MetricsRegistry",
]

#: Default histogram geometry: ~1µs to ~100s in 10 buckets per decade
#: (growth 10**0.1 ≈ 1.259), which bounds the relative error of any
#: reported percentile at ~26% while keeping the bucket array tiny.
DEFAULT_LOWEST = 1e-6
DEFAULT_GROWTH = 10.0 ** 0.1
DEFAULT_BUCKETS = 81  # lowest * growth**80 ≈ 100s


def _validate_name(name: str) -> str:
    if not name or not all(ch.isalnum() or ch == "_" for ch in name):
        raise ValueError(f"metric names are [A-Za-z0-9_]+, got {name!r}")
    return name


class Counter:
    """Monotonic counter; ``inc`` is thread-safe."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _validate_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Settable instantaneous value; ``set``/``add`` are thread-safe."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _validate_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Log-bucketed histogram with exact-boundary percentiles.

    Bucket ``i`` covers ``(boundary[i-1], boundary[i]]`` with
    ``boundary[i] = lowest * growth**i``; a first bucket catches values at
    or below ``lowest`` and a final overflow bucket catches everything
    above the last boundary.  ``percentile(q)`` reports the upper boundary
    of the bucket holding the ``ceil(q * N)``-th smallest observation —
    an upper bound on the true quantile, tight to one ``growth`` factor.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        lowest: float = DEFAULT_LOWEST,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        if lowest <= 0 or growth <= 1 or buckets < 1:
            raise ValueError("need lowest > 0, growth > 1, buckets >= 1")
        self.name = _validate_name(name)
        self.help = help
        self.boundaries: Tuple[float, ...] = tuple(
            lowest * growth**i for i in range(buckets)
        )
        self._lock = threading.Lock()
        # One slot per boundary plus the overflow bucket.
        self._counts = [0] * (buckets + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bucket boundary covering quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q * total))
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.boundaries):
                    return self.boundaries[index]
                return math.inf  # overflow bucket has no upper bound
        return math.inf  # unreachable: cumulative reaches total

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            total = self._count
            sum_ = self._sum
        return {
            "count": total,
            "sum": sum_,
            "mean": (sum_ / total) if total else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_boundary, count)`` pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        pairs: List[Tuple[float, int]] = []
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            upper = (
                self.boundaries[index]
                if index < len(self.boundaries)
                else math.inf
            )
            pairs.append((upper, cumulative))
        return pairs


class LabeledFamily:
    """A family of instruments keyed by label values (one label set each).

    ``family.labels(kind="shed")`` returns the child instrument for that
    label combination, creating it on first use; children are cached, so
    hot paths resolve labels once and hold the child.
    """

    def __init__(self, name, help, label_names, factory) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        if not self.label_names:
            raise ValueError("a labeled family needs at least one label name")
        self._factory = factory
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        self.kind = factory("_probe").kind

    def labels(self, **labels: str):
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._factory(self.name)
                child.help = self.help
                self._children[key] = child
        return child

    def items(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def snapshot(self) -> Dict[str, object]:
        return {
            ",".join(
                f"{name}={value}"
                for name, value in zip(self.label_names, key)
            ): child.snapshot()
            for key, child in self.items()
        }


class MetricsRegistry:
    """Named instruments; registration is idempotent per (name, kind).

    ``registry.counter("repro_requests_total")`` returns the same counter
    every call, so instrumentation sites never coordinate about who
    creates what.  Re-registering a name as a different kind is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name, kind, labeled, factory):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind or (
                    isinstance(existing, LabeledFamily) != labeled
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__} ({existing.kind})"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ):
        labels = tuple(labels)
        if labels:
            return self._get_or_create(
                name, "counter", True,
                lambda: LabeledFamily(
                    name, help, labels, lambda n: Counter(n, help)
                ),
            )
        return self._get_or_create(
            name, "counter", False, lambda: Counter(name, help)
        )

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()):
        labels = tuple(labels)
        if labels:
            return self._get_or_create(
                name, "gauge", True,
                lambda: LabeledFamily(
                    name, help, labels, lambda n: Gauge(n, help)
                ),
            )
        return self._get_or_create(
            name, "gauge", False, lambda: Gauge(name, help)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        *,
        lowest: float = DEFAULT_LOWEST,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ):
        labels = tuple(labels)

        def _make(n: str = None) -> Histogram:
            return Histogram(
                n or name, help, lowest=lowest, growth=growth, buckets=buckets
            )

        if labels:
            return self._get_or_create(
                name, "histogram", True,
                lambda: LabeledFamily(name, help, labels, _make),
            )
        return self._get_or_create(name, "histogram", False, _make)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, object]:
        """Nested plain-data view of every instrument (JSON-serialisable)."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in instruments}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, one block per instrument."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: List[str] = []
        for name, instrument in instruments:
            lines.append(f"# HELP {name} {instrument.help or name}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, LabeledFamily):
                for key, child in instrument.items():
                    labels = _format_labels(instrument.label_names, key)
                    _render_one(lines, name, child, labels)
            else:
                _render_one(lines, name, instrument, "")
        return "\n".join(lines) + "\n"


def _format_labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _merge_labels(labels: str, extra: str) -> str:
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def _render_one(lines: List[str], name: str, instrument, labels: str) -> None:
    if isinstance(instrument, Histogram):
        previous = 0
        for upper, cumulative in instrument.bucket_counts():
            if cumulative == previous and not math.isinf(upper):
                continue  # keep the exposition small: skip empty buckets
            previous = cumulative
            le = "+Inf" if math.isinf(upper) else repr(upper)
            le_label = 'le="' + le + '"'
            lines.append(
                f"{name}_bucket{_merge_labels(labels, le_label)} {cumulative}"
            )
        lines.append(f"{name}_sum{labels} {instrument.sum}")
        lines.append(f"{name}_count{labels} {instrument.count}")
    else:
        lines.append(f"{name}{labels} {instrument.value}")
