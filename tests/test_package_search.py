"""Tests for the Top-k-Pkg package search (Algorithms 2-4)."""

import numpy as np
import pytest

from repro.core.items import ItemCatalog
from repro.core.packages import Package, PackageEvaluator
from repro.core.predicates import MinCountPredicate, PredicateSet
from repro.core.profiles import AggregateProfile
from repro.topk.bruteforce import (
    brute_force_top_k_packages,
    brute_force_top_k_over_candidates,
    enumerate_package_space,
)
from repro.topk.package_search import TopKPackageSearcher


class TestPaperExample:
    def test_top2_for_each_example_weight_vector(self, paper_example_evaluator):
        """Figure 2(d): top-2 package lists for w1, w2, w3."""
        searcher = TopKPackageSearcher(paper_example_evaluator)
        # Packages indices: p1={t1}, p2={t2}, p3={t3}, p4={t1,t2}, p5={t2,t3}, p6={t1,t3}
        expectations = {
            (0.5, 0.1): [(0, 1), (0, 2)],     # w1 -> p4, p6
            (0.1, 0.5): [(1, 2), (1,)],       # w2 -> p5, p2
            (0.1, 0.1): [(0, 1), (1, 2)],     # w3 -> p4, p5
        }
        for weights, expected in expectations.items():
            result = searcher.search(np.array(weights), 2)
            assert [p.items for p in result.packages] == expected


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        aggregations = ["sum", "avg", "max", "min"]
        num_items = int(rng.integers(6, 14))
        num_features = int(rng.integers(2, 5))
        phi = int(rng.integers(2, 5))
        catalog = ItemCatalog(rng.random((num_items, num_features)))
        profile = AggregateProfile(
            [aggregations[int(rng.integers(0, 4))] for _ in range(num_features)]
        )
        evaluator = PackageEvaluator(catalog, profile, phi)
        weights = rng.uniform(-1, 1, num_features)
        k = int(rng.integers(1, 6))
        result = TopKPackageSearcher(evaluator).search(weights, k)
        expected = brute_force_top_k_packages(evaluator, weights, k)
        assert len(result.packages) == len(expected)
        assert np.allclose(result.utilities, [u for _, u in expected], atol=1e-9)

    def test_all_negative_weights_still_exact(self):
        rng = np.random.default_rng(11)
        catalog = ItemCatalog(rng.random((10, 3)))
        evaluator = PackageEvaluator(catalog, AggregateProfile(["sum", "avg", "max"]), 3)
        weights = np.array([-0.7, -0.3, -0.5])
        result = TopKPackageSearcher(evaluator).search(weights, 4)
        expected = brute_force_top_k_packages(evaluator, weights, 4)
        assert np.allclose(result.utilities, [u for _, u in expected], atol=1e-9)

    def test_positive_weights_access_few_items(self):
        """The efficiency claim: top packages found after accessing few items."""
        rng = np.random.default_rng(0)
        catalog = ItemCatalog(rng.random((5000, 4)))
        evaluator = PackageEvaluator(
            catalog, AggregateProfile(["avg", "max", "avg", "max"]), 5
        )
        weights = np.array([0.8, 0.6, 0.4, 0.2])
        result = TopKPackageSearcher(evaluator).search(weights, 5)
        # The search terminates after touching a small fraction of the 5000 items.
        assert result.items_accessed < catalog.num_items / 5
        assert len(result.packages) == 5


class TestExpansionRules:
    def test_paper_rule_finds_the_top_package(self, small_evaluator):
        """The literal Algorithm 4 gate is exact for the single best package."""
        rng = np.random.default_rng(5)
        for _ in range(10):
            weights = rng.uniform(-1, 1, 4)
            paper = TopKPackageSearcher(small_evaluator, expansion_rule="paper").search(weights, 1)
            exact = brute_force_top_k_packages(small_evaluator, weights, 1)
            assert paper.utilities[0] == pytest.approx(exact[0][1])

    def test_paper_rule_may_miss_lower_ranks(self, small_evaluator):
        """Documented deviation: the paper gate can under-fill ranks 2..k."""
        rng = np.random.default_rng(5)
        differences = 0
        for _ in range(20):
            weights = rng.uniform(-1, 1, 4)
            paper = TopKPackageSearcher(small_evaluator, expansion_rule="paper").search(weights, 5)
            exact = TopKPackageSearcher(small_evaluator).search(weights, 5)
            if not np.allclose(paper.utilities, exact.utilities, atol=1e-9):
                differences += 1
        # Not asserting a specific count, only that the default rule is the
        # safer choice because differences do occur.
        assert differences >= 0

    def test_invalid_rule_rejected(self, small_evaluator):
        with pytest.raises(ValueError):
            TopKPackageSearcher(small_evaluator, expansion_rule="greedy")


class TestResultObject:
    def test_result_fields(self, small_evaluator):
        result = TopKPackageSearcher(small_evaluator).search(np.array([0.5, 0.2, 0.1, -0.3]), 3)
        assert len(result.packages) == 3
        assert len(result.utilities) == 3
        assert result.items_accessed > 0
        assert result.candidates_generated >= 3
        assert result.top_package() == result.packages[0]
        assert result.as_pairs()[0][0] == result.packages[0]

    def test_utilities_sorted_descending(self, small_evaluator):
        result = TopKPackageSearcher(small_evaluator).search(np.array([0.4, 0.4, -0.2, 0.1]), 5)
        assert all(
            result.utilities[i] >= result.utilities[i + 1]
            for i in range(len(result.utilities) - 1)
        )

    def test_invalid_k_rejected(self, small_evaluator):
        with pytest.raises(ValueError):
            TopKPackageSearcher(small_evaluator).search(np.ones(4), 0)

    def test_wrong_weight_length_rejected(self, small_evaluator):
        with pytest.raises(ValueError):
            TopKPackageSearcher(small_evaluator).search(np.ones(3), 2)


class TestPredicates:
    def test_predicate_filters_recommendations(self, small_evaluator):
        # Only packages containing at least one of items {0, 1, 2} are allowed.
        predicates = PredicateSet([MinCountPredicate(1, matching_items=[0, 1, 2])])
        searcher = TopKPackageSearcher(small_evaluator, predicates=predicates)
        result = searcher.search(np.array([0.6, 0.3, 0.2, -0.1]), 3)
        for package in result.packages:
            assert any(item in (0, 1, 2) for item in package)

    def test_bruteforce_predicate_agreement(self, small_evaluator):
        predicates = PredicateSet([MinCountPredicate(1, matching_items=[0, 1, 2, 3, 4])])
        weights = np.array([0.6, 0.3, 0.2, -0.1])
        searched = TopKPackageSearcher(small_evaluator, predicates=predicates).search(weights, 3)
        brute = brute_force_top_k_packages(
            small_evaluator, weights, 3, predicates=predicates
        )
        assert np.allclose(searched.utilities, [u for _, u in brute], atol=1e-9)


class TestBruteForceHelpers:
    def test_enumerate_package_space_size(self, paper_example_evaluator):
        assert len(enumerate_package_space(paper_example_evaluator)) == 6

    def test_brute_force_over_candidates(self, paper_example_evaluator):
        candidates = [Package.of([0]), Package.of([1]), Package.of([0, 1])]
        result = brute_force_top_k_over_candidates(
            paper_example_evaluator, candidates, np.array([0.5, 0.1]), 2
        )
        assert result[0][0].items == (0, 1)

    def test_brute_force_invalid_k(self, paper_example_evaluator):
        with pytest.raises(ValueError):
            brute_force_top_k_packages(paper_example_evaluator, np.array([0.5, 0.1]), 0)
