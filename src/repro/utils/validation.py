"""Argument-validation helpers shared across the library.

These helpers keep error messages consistent and raise early with actionable
context, which matters because most public entry points accept raw numpy
arrays coming straight from user code or data loaders.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def require_positive(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is positive (or non-negative if ``allow_zero``)."""
    value = float(value)
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    else:
        if value <= 0:
            raise ValueError(f"{name} must be > 0, got {value}")
    return value


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")
    return value


def require_vector(
    array: np.ndarray,
    name: str,
    *,
    length: Optional[int] = None,
    dtype=float,
) -> np.ndarray:
    """Coerce ``array`` to a 1-D numpy array, optionally checking its length."""
    arr = np.asarray(array, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a 1-D array, got shape {arr.shape}")
    if length is not None and arr.shape[0] != length:
        raise ValueError(
            f"{name} must have length {length}, got length {arr.shape[0]}"
        )
    return arr


def require_matrix(
    array: np.ndarray,
    name: str,
    *,
    columns: Optional[int] = None,
    dtype=float,
) -> np.ndarray:
    """Coerce ``array`` to a 2-D numpy array, optionally checking column count."""
    arr = np.asarray(array, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got shape {arr.shape}")
    if columns is not None and arr.shape[1] != columns:
        raise ValueError(
            f"{name} must have {columns} columns, got {arr.shape[1]}"
        )
    return arr


def require_index(value: int, name: str, *, upper: Optional[int] = None) -> int:
    """Validate that ``value`` is a non-negative index, optionally below ``upper``."""
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be a non-negative index, got {value}")
    if upper is not None and value >= upper:
        raise ValueError(f"{name} must be < {upper}, got {value}")
    return value
