"""Bounded table of live elicitation sessions with TTL and LRU eviction.

The manager owns session *lifecycle*, not session semantics: the engine
supplies callbacks that snapshot an active session to a JSON payload and
rebuild one from a payload.  With a :class:`~repro.service.store.SessionStore`
configured, sessions evicted for capacity are swapped out to the store and
transparently restored on their next request — the request/response API never
observes the eviction.  Sessions idle past the TTL are expired for good.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Set

from repro.core.elicitation import PackageRecommender
from repro.service.store import SessionStore


class SessionNotFoundError(KeyError):
    """The session id is not active and has no stored snapshot."""


class SessionExpiredError(SessionNotFoundError):
    """The session existed but sat idle past the configured TTL."""


@dataclass
class SessionEntry:
    """One live session: the per-user recommender plus serving metadata.

    ``dirty`` tracks whether the session's state has diverged from its last
    stored snapshot: new sessions start dirty, serving a round or applying
    feedback dirties an entry, and a restore (or a swap-out write) cleans it.
    Swap-out skips the snapshot + store write for clean entries.
    """

    session_id: str
    recommender: PackageRecommender
    seed: int
    created_at: float
    last_access: float
    pool_key: Optional[str] = None
    rounds_served: int = 0
    feedback_events: int = 0
    dirty: bool = True
    #: Pool key of the last round this session gave feedback on — the batch
    #: searcher's carryover cache seeds the post-click search from the
    #: candidates discovered under this key.  A pure hint: never persisted,
    #: rebuilt organically after a swap-in, and always exact (carried
    #: candidates are re-validated against the new pool's bounds).
    carry_key: Optional[str] = None
    #: Whether the session's full history is reconstructable from the
    #: engine's event log.  Sessions imported from a snapshot blob (public
    #: ``restore``) carry history the log never saw and must keep writing
    #: full blobs on swap-out.
    replayable: bool = True


#: Engine-supplied (de)hydration callbacks.
SnapshotFn = Callable[[SessionEntry], dict]
RestoreFn = Callable[[dict], SessionEntry]


class SessionManager:
    """TTL + LRU session table with swap-out to a session store.

    Parameters
    ----------
    max_active:
        Maximum number of sessions held in memory; the least recently used
        session beyond this is swapped out (with a store) or dropped.
    ttl_seconds:
        Idle time after which a session expires permanently; ``None`` never
        expires.
    store:
        Optional durable store for swapped-out sessions.
    snapshot_fn / restore_fn:
        Callbacks that serialise/deserialise a session; required when a store
        is configured.
    touch_fn:
        Optional callback invoked when a *clean* entry is swapped out without
        a snapshot write; log-backed stores use it to append a cheap touch
        record so TTL expiry still sees the true ``_last_access``.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_active: int,
        ttl_seconds: Optional[float] = None,
        store: Optional[SessionStore] = None,
        snapshot_fn: Optional[SnapshotFn] = None,
        restore_fn: Optional[RestoreFn] = None,
        touch_fn: Optional[Callable[[SessionEntry], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_active <= 0:
            raise ValueError(f"max_active must be > 0, got {max_active}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0 or None, got {ttl_seconds}")
        if store is not None and (snapshot_fn is None or restore_fn is None):
            raise ValueError("snapshot_fn and restore_fn are required with a store")
        self.max_active = int(max_active)
        self.ttl_seconds = ttl_seconds
        self.store = store
        self.snapshot_fn = snapshot_fn
        self.restore_fn = restore_fn
        self.touch_fn = touch_fn
        self.clock = clock
        self._active: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._pinned: Set[str] = set()
        self.sessions_expired = 0
        self.sessions_swapped_out = 0
        self.sessions_restored = 0
        self.swap_writes_skipped = 0

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._active)

    def __contains__(self, session_id: str) -> bool:
        """Whether the id names a *live* session (active or restorable).

        A swapped-out snapshot idle past the TTL does not count: it is
        reclaimed from the store on the spot, so its id becomes reusable and
        expired snapshots cannot accumulate behind ids nobody acquires.
        """
        if session_id in self._active:
            return True
        if self.store is None:
            return False
        payload = self.store.load(session_id)
        if payload is None:
            return False
        last_access = payload.get("_last_access", self.clock())
        if self._expired(last_access, self.clock()):
            self.store.delete(session_id)
            self.sessions_expired += 1
            return False
        return True

    def active_ids(self) -> List[str]:
        """Active session ids, least recently used first."""
        return list(self._active.keys())

    # ------------------------------------------------------------------ expiry
    def _expired(self, last_access: float, now: float) -> bool:
        return self.ttl_seconds is not None and now - last_access > self.ttl_seconds

    def sweep_expired(self) -> int:
        """Expire every active session idle past the TTL; returns the count."""
        if self.ttl_seconds is None:
            return 0
        now = self.clock()
        expired = [
            sid
            for sid, entry in self._active.items()
            if self._expired(entry.last_access, now)
        ]
        for sid in expired:
            self._active.pop(sid)
            if self.store is not None:
                self.store.delete(sid)
            self.sessions_expired += 1
        return len(expired)

    # ---------------------------------------------------------------- capacity
    def pin(self, session_id: str) -> None:
        """Protect an active session from capacity eviction until unpinned.

        A batched serve acquires many entries before serving any of them;
        without pinning, acquiring a later session could swap out an earlier
        one mid-batch, and its round would be served onto a detached entry
        whose pre-serve snapshot is what later requests restore.
        """
        self._pinned.add(session_id)

    def unpin(self, session_ids: Iterable[str]) -> None:
        """Release pins and enforce capacity with the sessions' final state."""
        self._pinned.difference_update(session_ids)
        self._enforce_capacity()

    def _enforce_capacity(self) -> None:
        while len(self._active) > self.max_active:
            session_id = next(
                (sid for sid in self._active if sid not in self._pinned), None
            )
            if session_id is None:
                # Everything over capacity is pinned by an in-flight batch;
                # unpin() re-enforces once the batch completes.
                return
            entry = self._active.pop(session_id)
            if self.store is not None:
                if entry.dirty:
                    payload = self.snapshot_fn(entry)
                    payload["_last_access"] = entry.last_access
                    self.store.save(session_id, payload)
                    entry.dirty = False
                else:
                    # The entry is byte-for-byte what its last stored snapshot
                    # restores to (it was restored and never served a round or
                    # fed back since), so re-serialising it — which would also
                    # re-materialise its pool — buys nothing.  Without a
                    # touch_fn the skipped write leaves the *older*
                    # `_last_access` in the store, so TTL expiry of a clean
                    # swap-out is conservative (it may expire up to one idle
                    # period earlier, never later); a touch_fn closes even
                    # that gap with a cheap access-time record.
                    if self.touch_fn is not None:
                        self.touch_fn(entry)
                    self.swap_writes_skipped += 1
                self.sessions_swapped_out += 1
            # Without a store the LRU session is simply dropped; its id will
            # raise SessionNotFoundError on the next request.

    # --------------------------------------------------------------- lifecycle
    def add(self, entry: SessionEntry) -> None:
        """Register a new session (evicting LRU sessions beyond capacity)."""
        self._active[entry.session_id] = entry
        self._active.move_to_end(entry.session_id)
        self._enforce_capacity()

    def acquire(self, session_id: str) -> SessionEntry:
        """Fetch a session for a request, touching its recency and TTL clock.

        Swapped-out sessions are restored from the store; expired sessions
        raise :class:`SessionExpiredError` and unknown ids
        :class:`SessionNotFoundError`.
        """
        now = self.clock()
        entry = self._active.get(session_id)
        if entry is not None:
            if self._expired(entry.last_access, now):
                self._active.pop(session_id)
                if self.store is not None:
                    self.store.delete(session_id)
                self.sessions_expired += 1
                raise SessionExpiredError(session_id)
            entry.last_access = now
            self._active.move_to_end(session_id)
            return entry
        if self.store is not None:
            payload = self.store.load(session_id)
            if payload is not None:
                last_access = payload.pop("_last_access", now)
                if self._expired(last_access, now):
                    self.store.delete(session_id)
                    self.sessions_expired += 1
                    raise SessionExpiredError(session_id)
                entry = self.restore_fn(payload)
                entry.last_access = now
                entry.dirty = False  # identical to the snapshot it came from
                self.sessions_restored += 1
                self._active[session_id] = entry
                self._active.move_to_end(session_id)
                self._enforce_capacity()
                return entry
        raise SessionNotFoundError(session_id)

    def peek(self, session_id: str) -> Optional[SessionEntry]:
        """The in-memory entry for ``session_id``, or ``None`` — no side effects.

        Unlike :meth:`acquire`, peeking never touches recency or the TTL
        clock, never restores a swapped-out session, and never raises: it is
        for planning passes (e.g. the dispatcher asking which shard owns a
        session's next fill) that must not perturb session lifecycle.
        """
        return self._active.get(session_id)

    def remove(self, session_id: str, drop_snapshot: bool = True) -> bool:
        """Close a session; returns whether anything was removed."""
        removed = self._active.pop(session_id, None) is not None
        if self.store is not None and drop_snapshot:
            removed = self.store.delete(session_id) or removed
        return removed
