"""Item model: the set ``T`` of items with ``m`` numeric features.

The paper's problem setting (§2) assumes a set ``T`` of ``n`` items, each
represented by an ``m``-dimensional non-negative feature vector; individual
feature values may be ``null`` (the item does not carry that feature).
:class:`ItemCatalog` wraps the item–feature matrix, tracks nulls with a mask,
and exposes the per-feature statistics the rest of the system needs (maximum
values for normalisation, per-feature sorted orderings for the top-k search).

Storage is pluggable: the catalog delegates all data access to a *backing*
object.  :class:`MaterializedBacking` (this module) holds the matrix in
memory — the construction path every caller has always used — and caches the
per-feature desirability sort orders in a shared :class:`SortedOrderCache`
so building many :class:`~repro.topk.sorted_lists.SortedItemLists` cursors
over one catalog argsorts each feature at most once.
``repro.data.columnar.MmapBacking`` implements the same interface over a
persistent columnar store opened with ``np.memmap``: the sort orders are
*read* rather than computed, and the per-column summaries come from the store
header, so a cold process attaches in milliseconds and only the rows a search
actually touches are ever paged in.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import require_matrix


def compute_feature_order(column: np.ndarray, descending: bool = True) -> np.ndarray:
    """Stable desirability argsort of one feature column (nulls sort last).

    The single definition both backings share: the materialized backing runs
    it on demand, the columnar store writer runs it once at write time — so a
    stored order is bit-identical to the order a live argsort would produce,
    including the placement of ties (stable) and of nulls (always last,
    whichever direction is asked for).
    """
    column = np.asarray(column, dtype=float).copy()
    if descending:
        column[np.isnan(column)] = -np.inf
        return np.argsort(-column, kind="stable")
    column[np.isnan(column)] = np.inf
    return np.argsort(column, kind="stable")


def catalog_content_digest(features: np.ndarray, null_mask: np.ndarray) -> str:
    """Content digest of a catalog's data, independent of how it is stored.

    Hashes the raw float64 bytes column by column plus the null mask, so a
    materialized catalog and a columnar store written from it (or opened via
    mmap) report the same digest — the property that lets pool-fill contexts
    and worker processes reference a catalog by content instead of by object.
    """
    features = np.asarray(features)
    hasher = hashlib.blake2b(digest_size=16)
    n, m = features.shape
    hasher.update(f"repro-catalog:{n}:{m}:".encode())
    for j in range(m):
        hasher.update(
            np.ascontiguousarray(features[:, j], dtype=np.float64).tobytes()
        )
    hasher.update(
        np.ascontiguousarray(np.asarray(null_mask).T, dtype=np.uint8).tobytes()
    )
    return hasher.hexdigest()


class ColumnSummary(NamedTuple):
    """Per-column statistics used for normalisation and predicate pruning.

    ``vmin`` / ``vmax`` are over the *non-null* values (``nan`` when the
    column is entirely null); ``null_count`` is the number of null entries.
    """

    vmin: float
    vmax: float
    null_count: int


class SortedOrderCache:
    """Thread-safe cache of per-feature sort orders, shared across cursors.

    Every :class:`~repro.topk.sorted_lists.SortedItemLists` cursor needs one
    ordering per active feature; before this cache each cursor re-argsorted
    its columns — O(F·N log N) per cursor, paid once per weight vector per
    search.  The cache keys orders by ``(feature, descending)`` so inline and
    thread-backed engines compute each order at most once per catalog.

    Returned arrays are shared — callers must treat them as read-only.
    """

    def __init__(self) -> None:
        self._orders: Dict[Tuple[int, bool], np.ndarray] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._orders)

    def get(
        self, key: Tuple[int, bool], compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        order = self._orders.get(key)
        if order is None:
            with self._lock:
                order = self._orders.get(key)
                if order is None:
                    order = compute()
                    self._orders[key] = order
        return order

    def clear(self) -> None:
        with self._lock:
            self._orders.clear()


class MaterializedBacking:
    """In-memory catalog storage: the feature matrix held as one ndarray.

    Implements the backing interface the catalog delegates to (``features``,
    ``null_mask``, ``feature_column``, ``argsort_feature``,
    ``column_summary``, ``feature_top_values``, ``content_digest``).  Sort
    orders are cached in a :class:`SortedOrderCache`; column summaries and
    the content digest are computed lazily and cached.
    """

    kind = "materialized"

    def __init__(
        self, features: np.ndarray, null_mask: Optional[np.ndarray] = None
    ) -> None:
        self._features = features
        self._null_mask = (
            np.isnan(features) if null_mask is None else null_mask
        )
        self.order_cache = SortedOrderCache()
        self._summaries: Dict[int, ColumnSummary] = {}
        self._digest: Optional[str] = None

    @property
    def features(self) -> np.ndarray:
        return self._features

    @property
    def null_mask(self) -> np.ndarray:
        return self._null_mask

    @property
    def num_items(self) -> int:
        return self._features.shape[0]

    @property
    def num_features(self) -> int:
        return self._features.shape[1]

    def feature_column(self, feature_index: int, fill_null: float = 0.0) -> np.ndarray:
        column = self._features[:, feature_index].copy()
        column[np.isnan(column)] = fill_null
        return column

    def argsort_feature(self, feature_index: int, descending: bool = True) -> np.ndarray:
        return self.order_cache.get(
            (feature_index, bool(descending)),
            lambda: compute_feature_order(
                self._features[:, feature_index], descending
            ),
        )

    def column_summary(self, feature_index: int) -> ColumnSummary:
        summary = self._summaries.get(feature_index)
        if summary is None:
            column = self._features[:, feature_index]
            null = np.isnan(column)
            valid = column[~null]
            summary = ColumnSummary(
                vmin=float(valid.min()) if valid.size else float("nan"),
                vmax=float(valid.max()) if valid.size else float("nan"),
                null_count=int(null.sum()),
            )
            self._summaries[feature_index] = summary
        return summary

    def feature_top_values(self, feature_index: int, count: int) -> np.ndarray:
        order = self.argsort_feature(feature_index, descending=True)[:count]
        values = self._features[np.asarray(order, dtype=int), feature_index]
        return np.where(np.isnan(values), 0.0, values)

    def content_digest(self) -> str:
        if self._digest is None:
            self._digest = catalog_content_digest(self._features, self._null_mask)
        return self._digest


class ItemCatalog:
    """A collection of items described by a numeric feature matrix.

    Parameters
    ----------
    features:
        ``(n, m)`` matrix of feature values.  Values must be non-negative
        (the paper assumes non-negative feature values w.l.o.g.); ``NaN``
        entries are interpreted as ``null`` (feature absent for that item).
    feature_names:
        Optional human-readable feature names; defaults to ``f1..fm``.
    item_ids:
        Optional external identifiers; defaults to ``0..n-1``.
    """

    def __init__(
        self,
        features: np.ndarray,
        feature_names: Optional[Sequence[str]] = None,
        item_ids: Optional[Sequence] = None,
    ) -> None:
        matrix = require_matrix(features, "features")
        if matrix.shape[0] == 0:
            raise ValueError("an ItemCatalog requires at least one item")
        finite = matrix[~np.isnan(matrix)]
        if finite.size and (finite < 0).any():
            raise ValueError(
                "feature values must be non-negative (the paper assumes "
                "non-negative values w.l.o.g.); found negative entries"
            )
        self._backing = MaterializedBacking(matrix)
        self._init_labels(feature_names, item_ids)

    def _init_labels(
        self,
        feature_names: Optional[Sequence[str]],
        item_ids: Optional[Sequence],
    ) -> None:
        n, m = self._backing.num_items, self._backing.num_features
        if feature_names is None:
            feature_names = [f"f{i + 1}" for i in range(m)]
        if len(feature_names) != m:
            raise ValueError(
                f"expected {m} feature names, got {len(feature_names)}"
            )
        self.feature_names: List[str] = list(feature_names)
        if item_ids is None:
            item_ids = list(range(n))
        if len(item_ids) != n:
            raise ValueError(f"expected {n} item ids, got {len(item_ids)}")
        self.item_ids = list(item_ids)

    @classmethod
    def from_backing(
        cls,
        backing,
        feature_names: Optional[Sequence[str]] = None,
        item_ids: Optional[Sequence] = None,
    ) -> "ItemCatalog":
        """Wrap an already-validated storage backing (no data scan).

        Used by ``repro.data.columnar.open_catalog_store``: the non-negativity
        validation ran when the store was written, so opening skips it — the
        whole point of the mmap path is that attaching does not read the data.
        """
        catalog = cls.__new__(cls)
        catalog._backing = backing
        catalog._init_labels(feature_names, item_ids)
        return catalog

    # ----------------------------------------------------------------- backing
    @property
    def backing(self):
        """The storage backing (``MaterializedBacking`` or ``MmapBacking``)."""
        return self._backing

    @property
    def backing_kind(self) -> str:
        """``"materialized"`` or ``"mmap"``."""
        return self._backing.kind

    @property
    def store_path(self) -> Optional[str]:
        """Path of the columnar store backing this catalog, if any."""
        return getattr(self._backing, "path", None)

    def content_digest(self) -> str:
        """Digest of the catalog's data — equal across storage backings."""
        return self._backing.content_digest()

    # ------------------------------------------------------------------ shape
    @property
    def num_items(self) -> int:
        """Number of items ``n``."""
        return self._backing.num_items

    @property
    def num_features(self) -> int:
        """Number of features ``m``."""
        return self._backing.num_features

    def __len__(self) -> int:
        return self.num_items

    # ------------------------------------------------------------------ access
    @property
    def features(self) -> np.ndarray:
        """The raw ``(n, m)`` feature matrix (NaN marks null values).

        For an mmap-backed catalog this is a lazy transposed view of the
        column-major store: indexing it reads only the touched rows/columns
        from the page cache, never the whole table.
        """
        return self._backing.features

    @property
    def null_mask(self) -> np.ndarray:
        """Boolean ``(n, m)`` mask; ``True`` where the feature value is null."""
        return self._backing.null_mask

    def feature_values(self, item_index: int) -> np.ndarray:
        """Feature vector of one item (may contain NaN for null features)."""
        return self._backing.features[item_index]

    def feature_column(self, feature_index: int, fill_null: float = 0.0) -> np.ndarray:
        """Values of one feature across all items, with nulls filled."""
        return self._backing.feature_column(feature_index, fill_null)

    def filled(self, fill_null: float = 0.0) -> np.ndarray:
        """Copy of the feature matrix with null values replaced by ``fill_null``.

        Materialises the full table — avoid on large mmap-backed catalogs
        (the package-search path never calls it; only the item-level
        threshold/skyline baselines do).
        """
        matrix = np.array(self._backing.features, dtype=float)
        matrix[np.isnan(matrix)] = fill_null
        return matrix

    def has_nulls(self) -> bool:
        """Whether any item has a null feature value."""
        return any(
            self._backing.column_summary(j).null_count > 0
            for j in range(self.num_features)
        )

    # ------------------------------------------------------------------ stats
    def column_summary(self, feature_index: int) -> ColumnSummary:
        """Per-column min/max over non-null values plus the null count."""
        return self._backing.column_summary(feature_index)

    def feature_max(self) -> np.ndarray:
        """Per-feature maximum value over items (nulls ignored, 0 if all null)."""
        values = np.zeros(self.num_features)
        for j in range(self.num_features):
            summary = self._backing.column_summary(j)
            values[j] = 0.0 if np.isnan(summary.vmax) else summary.vmax
        return values

    def feature_min(self) -> np.ndarray:
        """Per-feature minimum value over non-null items (0 if all null)."""
        values = np.zeros(self.num_features)
        for j in range(self.num_features):
            summary = self._backing.column_summary(j)
            values[j] = 0.0 if np.isnan(summary.vmin) else summary.vmin
        return values

    def feature_top_values(self, feature_index: int, count: int) -> np.ndarray:
        """The ``count`` largest values of one feature, descending, nulls as 0.

        Read through the stored/cached descending sort order, so an
        mmap-backed catalog touches only ``count`` entries.  Bit-identical to
        ``np.sort(feature_column(j))[::-1][:count]`` (same multiset, same
        non-increasing order), which is what the normaliser computation used
        to re-sort the column for.
        """
        return self._backing.feature_top_values(feature_index, count)

    def argsort_feature(self, feature_index: int, descending: bool = True) -> np.ndarray:
        """Indices of items sorted by one feature (nulls sort last).

        Returns the cached (materialized backing) or stored (mmap backing)
        order — shared, so callers must not mutate the returned array.
        """
        return self._backing.argsort_feature(feature_index, descending)

    # ------------------------------------------------------------------ slicing
    def subset(self, indices: Iterable[int]) -> "ItemCatalog":
        """A new catalog restricted to ``indices`` (keeps ids and names).

        The subset is always materialized, whatever the source backing.
        """
        idx = np.asarray(list(indices), dtype=int)
        return ItemCatalog(
            np.array(self._backing.features[idx], dtype=float),
            feature_names=self.feature_names,
            item_ids=[self.item_ids[i] for i in idx],
        )

    def select_features(self, feature_indices: Iterable[int]) -> "ItemCatalog":
        """A new catalog restricted to the given feature columns."""
        idx = list(feature_indices)
        return ItemCatalog(
            np.array(self._backing.features[:, idx], dtype=float),
            feature_names=[self.feature_names[i] for i in idx],
            item_ids=self.item_ids,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ItemCatalog(num_items={self.num_items}, "
            f"num_features={self.num_features}, backing={self.backing_kind!r})"
        )
