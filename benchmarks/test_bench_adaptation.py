"""Benchmark: approximate pool reuse (noise-model importance reweighting).

Not a paper figure — this measures the approximate-pool-reuse tentpole along
its acceptance axes.  The workload is the repository's worst case made
realistic: sessions share one hidden utility but present private exploration
packages (``num_random > 0``), so *every* post-click constraint set is a
fresh fingerprint — a guaranteed pool-repository miss whose nearest donor
(the session's own previous pool, live under its old key) overlaps it almost
completely.  Two identically seeded engines serve the same click streams:

* **adapted** — ``EngineConfig(pool_adaptation=AdaptationConfig(...))``: each
  miss is served by importance-reweighting the donor pool with the §7
  noise-model likelihood ratio, ESS-gated (low-ESS misses still fill fresh);
* **resampled** — adaptation off (and ``maintain_on_miss=False``): each miss
  pays the full key-deterministic sampling fill, the pre-adaptation cold
  path.

The timed quantity is the **miss path itself**: the pool-provisioning call a
serve makes when its pool is pending (``recommender.sample_pool()``, i.e.
the engine's ``_provide_pool`` → adapt-or-fill).  The top-k search that
follows is identical in both configurations (same budgets, same caps), so
isolating provisioning compares exactly what the subsystem changes.  Two
headline metrics are asserted and recorded for the CI gate:

* ``adaptation_miss_speedup`` — median resampled-miss latency over median
  adapted-miss latency, floor 3x (measured ~9x: a reweight is one
  ``(N, m) @ (m, c)`` pass; a fill is a constrained sampling run);
* ``adaptation_reuse_rate`` — fraction of adaptation attempts that served an
  adapted pool (the rest fell back to fills via the ESS gate), floor 0.5.

The regenerated table lands in ``results/bench_adaptation.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.experiments.harness import build_evaluator
from repro.service import AdaptationConfig, EngineConfig, RecommendationEngine
from repro.simulation.traffic import build_user_population, session_seed_for

#: Acceptance floors (pinned in tools/bench_gate.py).
MIN_MISS_SPEEDUP = 3.0
MIN_REUSE_RATE = 0.5

NUM_SESSIONS = 8
NUM_ROUNDS = 4  # one cold round + three post-click miss rounds per session
NUM_SAMPLES = 1_000
ADAPTATION_PSI = 0.85
MIN_ESS_FRACTION = 0.15
CLICK_NOISE_PSI = 0.9


def _engine(scale, adapted: bool) -> RecommendationEngine:
    evaluator = build_evaluator("UNI", scale, num_features=4)
    elicitation = ElicitationConfig(
        k=3,
        num_random=2,  # private exploration: every post-click key is fresh
        max_package_size=3,
        num_samples=NUM_SAMPLES,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=150,
        search_items_cap=60,
        seed=0,
    )
    config = EngineConfig(
        elicitation=elicitation,
        seed=1,
        # Both engines compare the *miss* paths: adaptation vs full resample
        # (maintenance would blur the baseline into a partial fill).
        maintain_on_miss=False,
        pool_adaptation=(
            AdaptationConfig(
                psi=ADAPTATION_PSI, min_ess_fraction=MIN_ESS_FRACTION
            )
            if adapted
            else None
        ),
    )
    return RecommendationEngine(evaluator.catalog, evaluator.profile, config)


def _run_miss_workload(engine):
    """Drive the shared-utility / private-exploration workload.

    Returns the per-miss pool-provisioning latencies (seconds) and the final
    engine stats.  The provisioning call is made explicitly after each click
    — it is exactly the work the subsequent ``recommend`` would trigger
    lazily, timed in isolation from the (identical) top-k search.
    """
    users = build_user_population(
        engine.evaluator,
        NUM_SESSIONS,
        identical_prefix=True,  # one shared utility: high constraint overlap
        user_seed=0,
        noise_psi=CLICK_NOISE_PSI,
    )
    ids = [
        engine.create_session(
            seed=session_seed_for(0, index, identical_prefix=False)
        )
        for index in range(NUM_SESSIONS)
    ]
    rounds = {sid: engine.recommend(sid) for sid in ids}
    provisioning = []
    for _round in range(1, NUM_ROUNDS):
        for index, sid in enumerate(ids):
            engine.feedback(sid, users[index].click(rounds[sid].presented))
            entry = engine.sessions.acquire(sid)
            tick = time.perf_counter()
            entry.recommender.sample_pool()  # the miss path: adapt or fill
            provisioning.append(time.perf_counter() - tick)
            rounds[sid] = engine.recommend(sid)
    return np.asarray(provisioning), engine.stats()


@pytest.fixture(scope="module")
def adaptation_report(scale):
    from bench_utils import record_ci_metric, write_results

    adapted_times, adapted_stats = _run_miss_workload(_engine(scale, True))
    resampled_times, resampled_stats = _run_miss_workload(_engine(scale, False))

    p50_adapted = float(np.median(adapted_times))
    p50_resampled = float(np.median(resampled_times))
    speedup = p50_resampled / p50_adapted if p50_adapted else 0.0
    adaptation = adapted_stats.adaptation
    reuse_rate = adaptation.get("reuse_rate", 0.0)

    header = (
        "Approximate pool reuse — noise-model importance reweighting\n"
        f"{NUM_SESSIONS} shared-utility sessions x {NUM_ROUNDS} rounds, "
        f"private exploration packages (every post-click key is a miss), "
        f"{NUM_SAMPLES}-sample pools, psi={ADAPTATION_PSI}: "
        f"adapted misses {speedup:.1f}x faster than resampled "
        f"(floor {MIN_MISS_SPEEDUP}x), reuse rate {reuse_rate:.2f} "
        f"(floor {MIN_REUSE_RATE})"
    )
    body = "\n".join(
        [
            "[miss-path provisioning latency (asserted)]",
            f"  adapted engine:   p50={p50_adapted * 1e3:.3f}ms "
            f"mean={adapted_times.mean() * 1e3:.3f}ms over "
            f"{adapted_times.size} misses",
            f"  resampled engine: p50={p50_resampled * 1e3:.3f}ms "
            f"mean={resampled_times.mean() * 1e3:.3f}ms over "
            f"{resampled_times.size} misses",
            f"  p50 speedup: {speedup:.2f}x "
            f"(sum ratio {resampled_times.sum() / adapted_times.sum():.2f}x, "
            f"informational)",
            "",
            "[adaptation accounting (asserted)]",
            f"  attempts={adaptation.get('attempts', 0)} "
            f"adapted={adaptation.get('adapted', 0)} "
            f"low_ess={adaptation.get('low_ess', 0)} "
            f"no_donor={adaptation.get('no_donor', 0)}",
            f"  reuse_rate={reuse_rate:.3f} "
            f"prefix_donors={adaptation.get('prefix_donors', 0)} "
            f"mean_served_ess={adaptation.get('mean_served_ess', 0.0):.1f} "
            f"(of {NUM_SAMPLES})",
            f"  pools: adapted engine sampled="
            f"{adapted_stats.pools_sampled} adapted="
            f"{adapted_stats.pools_adapted}; resampled engine sampled="
            f"{resampled_stats.pools_sampled}",
        ]
    )
    print("\n" + header + "\n\n" + body)
    write_results("bench_adaptation.txt", header + "\n\n" + body)
    record_ci_metric(
        "adaptation_miss_speedup",
        speedup,
        MIN_MISS_SPEEDUP,
        source="benchmarks/test_bench_adaptation.py",
        description=(
            f"Median resampled-miss pool-provisioning latency over median "
            f"adapted-miss latency, {NUM_SESSIONS} shared-utility sessions x "
            f"{NUM_ROUNDS} rounds with private exploration packages"
        ),
    )
    record_ci_metric(
        "adaptation_reuse_rate",
        reuse_rate,
        MIN_REUSE_RATE,
        source="benchmarks/test_bench_adaptation.py",
        description=(
            "Fraction of pool-repository misses served by an ESS-gated "
            "reweighted donor pool instead of a fresh sampling fill"
        ),
        unit="",
    )
    return {
        "speedup": speedup,
        "reuse_rate": reuse_rate,
        "adapted_stats": adapted_stats,
        "resampled_stats": resampled_stats,
        "adapted_times": adapted_times,
        "resampled_times": resampled_times,
    }


def test_adapted_misses_beat_resampled_misses(adaptation_report):
    """The acceptance headline: >= 3x p50 miss-path latency win."""
    assert adaptation_report["speedup"] >= MIN_MISS_SPEEDUP, (
        f"adapted-miss speedup {adaptation_report['speedup']:.2f}x below the "
        f"{MIN_MISS_SPEEDUP}x floor"
    )


def test_most_misses_are_served_by_reuse(adaptation_report):
    """The ESS gate must pass most of the high-overlap misses through."""
    assert adaptation_report["reuse_rate"] >= MIN_REUSE_RATE


def test_every_miss_was_a_real_miss_in_the_baseline(adaptation_report):
    """Private exploration keys must defeat exact sharing: the baseline
    engine sampled one pool per measured miss (plus the shared cold pool)."""
    stats = adaptation_report["resampled_stats"]
    assert stats.pools_sampled >= adaptation_report["resampled_times"].size

    adapted = adaptation_report["adapted_stats"]
    assert adapted.pools_adapted + adapted.pools_sampled >= (
        adaptation_report["adapted_times"].size
    )


def test_adapted_engine_samples_strictly_fewer_pools(adaptation_report):
    adapted = adaptation_report["adapted_stats"]
    resampled = adaptation_report["resampled_stats"]
    assert adapted.pools_sampled < resampled.pools_sampled
    assert adapted.pools_adapted > 0
